"""Serve-layer load benchmark: mixed query/update traffic, SLO + soundness.

Drives a :mod:`repro.serve` server with C concurrent clients (several
concurrency levels per run) issuing a mixed workload — PRSQ reads with
varied query points/alphas plus a writer client cycling inserts, updates
and deletes through the single-writer queue — and reports, per level:

* client-observed **p50/p99 latency** and **throughput** (requests/s);
* **error envelopes** (must be zero: the workload is constructed so
  every request is valid — any failure is a server bug);
* **replay soundness**: every read response echoes its
  ``session_version``; after the run, each unique ``(version, spec)``
  observation is re-executed on a fresh local session built from the
  initial objects plus exactly the deltas acknowledged at or before that
  version, and the payloads must match bit-for-bit (probabilities
  compared via ``float.hex``).

A final **overload injection** phase (always in-process) shrinks the
server to one admission slot and zero queue, fires a volley of
concurrent reads, and asserts every shed request came back as a
structured ``overloaded`` envelope with a retry hint — never a dropped
connection — while the connection stays usable.

Runs standalone (the CI smoke job), self-hosting an in-process server by
default; ``--connect HOST:PORT`` targets an externally started server
instead (pass the same ``--data`` CSV the server was started with so the
replay check has the initial contents):

    PYTHONPATH=src python benchmarks/bench_serve_load.py
    PYTHONPATH=src python benchmarks/bench_serve_load.py \\
        --clients 4,16,32 --requests 12 --report BENCH_serve_load.json
    PYTHONPATH=src python benchmarks/bench_serve_load.py \\
        --connect 127.0.0.1:7733 --data objects.csv
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.remote import RemoteClient
from repro.api.results import QueryResult
from repro.bench.reporting import print_figure, write_json_report
from repro.engine import Session
from repro.engine.executor import _execute_captured
from repro.engine.spec import PRSQSpec
from repro.exceptions import OverloadedError
from repro.serve import ReproServer, ServeConfig
from repro.uncertain import UncertainDataset, UncertainObject
from repro.uncertain.delta import DatasetDelta

WANTS = ("answers", "non_answers", "probabilities")


def _initial_objects(n: int, dims: int, seed: int) -> List[UncertainObject]:
    rng = np.random.default_rng(seed)
    return [
        UncertainObject(
            f"o{i}",
            rng.uniform(0.0, 10.0, size=(int(rng.integers(1, 4)), dims)),
        )
        for i in range(n)
    ]


def _fresh_dataset(objects: List[UncertainObject]) -> UncertainDataset:
    return UncertainDataset(
        [
            UncertainObject(
                o.oid,
                np.asarray(o.samples).copy(),
                np.asarray(o.probabilities).copy(),
                name=o.name,
            )
            for o in objects
        ]
    )


def _read_spec(rng, dims: int) -> PRSQSpec:
    q = tuple(float(v) for v in rng.uniform(2.0, 8.0, size=dims))
    return PRSQSpec(
        q=q,
        alpha=float(rng.uniform(0.1, 0.9)),
        want=WANTS[int(rng.integers(len(WANTS)))],
    )


def _semantic(envelope: QueryResult):
    if not envelope.ok:
        return ("error", envelope.error.code)
    value = envelope.value
    if value.probabilities is not None:
        return tuple(sorted(
            (repr(oid), p.hex()) for oid, p in value.probabilities.items()
        ))
    return tuple(sorted(repr(oid) for oid in value.ids))


async def _writer_client(
    port: int, tag: str, requests: int, dims: int, seed: int,
    deltas_by_version: Dict[int, DatasetDelta],
    latencies: List[float], errors: List[str],
) -> None:
    """Cycle insert -> update -> delete over a private id namespace."""
    rng = np.random.default_rng(seed)
    mine: List[str] = []
    serial = 0
    async with await RemoteClient.connect(port=port) as client:
        for i in range(requests):
            kind = ("insert", "update", "delete")[i % 3]
            if kind != "insert" and not mine:
                kind = "insert"
            if kind == "insert":
                obj = UncertainObject(
                    f"{tag}-{serial}",
                    rng.uniform(0.0, 10.0, size=(2, dims)),
                )
                serial += 1
                delta = DatasetDelta.insertion(obj)
                mine.append(obj.oid)
            elif kind == "update":
                oid = mine[int(rng.integers(len(mine)))]
                delta = DatasetDelta.replacement(UncertainObject(
                    oid, rng.uniform(0.0, 10.0, size=(2, dims))
                ))
            else:
                oid = mine.pop(int(rng.integers(len(mine))))
                delta = DatasetDelta.deletion(oid)
            started = time.perf_counter()
            envelope = await client.apply(delta)
            latencies.append(time.perf_counter() - started)
            if not envelope.ok:
                errors.append(f"write {kind}: {envelope.error.code}")
            else:
                deltas_by_version[client.session_version] = delta


async def _reader_client(
    port: int, requests: int, dims: int, seed: int,
    observations: List[Tuple[PRSQSpec, int]],
    semantics: Dict[Tuple[int, PRSQSpec], object],
    latencies: List[float], errors: List[str],
) -> None:
    rng = np.random.default_rng(seed)
    async with await RemoteClient.connect(port=port) as client:
        for _ in range(requests):
            spec = _read_spec(rng, dims)
            started = time.perf_counter()
            envelope, version = await client.query_envelope(spec)
            latencies.append(time.perf_counter() - started)
            if not envelope.ok:
                errors.append(f"read: {envelope.error.code}")
                continue
            observations.append((spec, version))
            semantics[(version, spec)] = _semantic(envelope)


def _quantile_ms(latencies: List[float], q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index] * 1e3


def _verify_replay(
    initial: List[UncertainObject],
    deltas_by_version: Dict[int, DatasetDelta],
    semantics: Dict[Tuple[int, PRSQSpec], object],
) -> Tuple[int, int]:
    """Walk versions in order, applying deltas incrementally, re-running
    each observed spec on the local session; returns (checked, mismatches).
    """
    session = Session(_fresh_dataset(initial))
    by_version: Dict[int, List[PRSQSpec]] = {}
    for (version, spec) in semantics:
        by_version.setdefault(version, []).append(spec)
    checked = mismatches = 0
    current = 0
    for version in sorted(by_version):
        while current < version:
            current += 1
            delta = deltas_by_version.get(current)
            if delta is None:
                raise AssertionError(
                    f"observed version {version} but no delta was "
                    f"acknowledged at version {current}"
                )
            session.apply(delta)
        for spec in by_version[version]:
            outcome = _execute_captured(session, spec)
            envelope = QueryResult.from_outcome(
                outcome, fingerprint=session.fingerprint
            )
            checked += 1
            if _semantic(envelope) != semantics[(version, spec)]:
                mismatches += 1
    return checked, mismatches


async def _run_level(
    port: int, clients: int, requests: int, dims: int, seed: int,
    deltas_by_version: Dict[int, DatasetDelta],
    semantics: Dict[Tuple[int, PRSQSpec], object],
) -> Dict:
    latencies: List[float] = []
    errors: List[str] = []
    observations: List[Tuple[PRSQSpec, int]] = []
    readers = max(1, clients - 1)
    started = time.perf_counter()
    await asyncio.gather(
        _writer_client(
            port, f"c{clients}", requests, dims, seed + 1,
            deltas_by_version, latencies, errors,
        ),
        *[
            _reader_client(
                port, requests, dims, seed + 100 + i,
                observations, semantics, latencies, errors,
            )
            for i in range(readers)
        ],
    )
    wall = max(time.perf_counter() - started, 1e-9)
    total = len(latencies)
    return {
        "clients": clients,
        "requests": total,
        "wall_s": round(wall, 4),
        "throughput_rps": round(total / wall, 1),
        "p50_ms": round(_quantile_ms(latencies, 0.50), 3),
        "p99_ms": round(_quantile_ms(latencies, 0.99), 3),
        "error_envelopes": len(errors),
        "errors": errors[:5],
    }


async def _overload_phase(objects: List[UncertainObject], volleys: int) -> Dict:
    """One admission slot, no queue: shedding must be structured."""
    config = ServeConfig(
        port=0, threads=2, max_inflight=1, max_queue=0, cache_size=0
    )
    shed = served = dropped = 0
    min_hint = None
    async with ReproServer({"default": _fresh_dataset(objects)}, config) as srv:
        async with await RemoteClient.connect(port=srv.port) as client:
            spec = PRSQSpec(q=(5.0, 5.0), alpha=0.4, want="probabilities")

            async def one():
                nonlocal shed, served, dropped, min_hint
                try:
                    envelope, _v = await client.query_envelope(spec)
                    served += not (not envelope.ok)
                except OverloadedError as exc:
                    shed += 1
                    hint = exc.retry_after_s
                    min_hint = hint if min_hint is None else min(min_hint, hint)
                except Exception:
                    dropped += 1

            await asyncio.gather(*[one() for _ in range(volleys)])
            # the connection must remain fully usable after the storm
            envelope, _v = await client.query_envelope(spec)
            usable = envelope.ok
    return {
        "clients": volleys,
        "served": served,
        "shed": shed,
        "dropped_connections": dropped,
        "min_retry_after_s": min_hint,
        "usable_after": usable,
    }


async def _main_async(args: argparse.Namespace) -> int:
    if args.data:
        from repro.io.csvio import load_uncertain_csv

        initial = list(load_uncertain_csv(args.data).objects())
    else:
        initial = _initial_objects(args.objects, args.dims, args.seed)
    dims = (
        np.asarray(initial[0].samples).shape[1] if args.data else args.dims
    )

    deltas_by_version: Dict[int, DatasetDelta] = {}
    semantics: Dict[Tuple[int, PRSQSpec], object] = {}
    levels = [int(c) for c in args.clients.split(",")]

    server: Optional[ReproServer] = None
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        port = int(port_text)
        assert host in ("", "127.0.0.1", "localhost"), (
            "replay verification needs the local dataset; only local "
            "servers are supported"
        )
    else:
        server = ReproServer(
            {"default": _fresh_dataset(initial)},
            ServeConfig(port=0, threads=args.threads),
        )
        await server.start()
        port = server.port

    rows = []
    per_family = {}
    try:
        for clients in levels:
            rows.append(await _run_level(
                port, clients, args.requests, dims, args.seed,
                deltas_by_version, semantics,
            ))
        # server-side per-query-family latency quantiles over the whole run
        async with await RemoteClient.connect(port=port) as client:
            per_family = (await client.stats()).get("slo", {})
    finally:
        if server is not None:
            await server.stop()

    checked, mismatches = _verify_replay(
        initial, deltas_by_version, semantics
    )
    overload = await _overload_phase(initial, volleys=16)

    for row in rows:
        if not row["error_envelopes"]:
            row.pop("errors", None)
    print_figure(
        "serve load: mixed query/update traffic",
        rows,
        columns=[
            "clients", "requests", "wall_s", "throughput_rps",
            "p50_ms", "p99_ms", "error_envelopes",
        ],
    )
    print_figure(
        "serve overload injection (1 slot, 0 queue)",
        [overload],
        columns=[
            "clients", "served", "shed", "dropped_connections",
            "min_retry_after_s", "usable_after",
        ],
    )
    family_rows = [
        {
            "metric": metric,
            "p50_ms": quantiles["p50_ms"],
            "p99_ms": quantiles["p99_ms"],
        }
        for metric, quantiles in sorted(per_family.items())
    ]
    if family_rows:
        print_figure(
            "server-side latency per query family",
            family_rows,
            columns=["metric", "p50_ms", "p99_ms"],
        )
    print(
        f"\nreplay verification: {checked} unique (version, spec) "
        f"observations re-executed, {mismatches} mismatch(es); "
        f"{len(deltas_by_version)} acknowledged write(s)"
    )

    report_rows = (
        rows
        + [dict(row, phase="per_family") for row in family_rows]
        + [dict(overload, phase="overload")]
    )
    write_json_report(
        args.report,
        "serve_load",
        report_rows,
        meta={
            "objects": len(initial),
            "dims": dims,
            "seed": args.seed,
            "levels": levels,
            "requests_per_client": args.requests,
            "threads": args.threads,
            "replay_checked": checked,
            "replay_mismatches": mismatches,
            "connect": args.connect or "in-process",
        },
        workload={
            "n": len(initial),
            "d": dims,
            "s_max": max(obj.num_samples for obj in initial),
            "shards": 1,
        },
    )
    print(f"wrote {args.report}")

    failures = []
    total_errors = sum(row["error_envelopes"] for row in rows)
    if total_errors:
        failures.append(f"{total_errors} error envelope(s) under load")
    if mismatches:
        failures.append(f"{mismatches} replay mismatch(es)")
    if checked == 0:
        failures.append("replay verified nothing")
    if overload["dropped_connections"]:
        failures.append("overload dropped connections")
    if overload["shed"] == 0:
        failures.append("overload phase shed nothing (injection broken)")
    if not overload["usable_after"]:
        failures.append("connection unusable after overload")
    if args.p99_budget_ms is not None:
        worst = max(row["p99_ms"] for row in rows)
        if worst > args.p99_budget_ms:
            failures.append(
                f"p99 {worst:.1f} ms over budget {args.p99_budget_ms} ms"
            )
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK: zero error envelopes, replay bit-identical, "
          "overload structurally shed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--objects", type=int, default=300)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--clients", default="4,16,32",
        help="comma-separated concurrency levels (default 4,16,32)",
    )
    parser.add_argument(
        "--requests", type=int, default=12,
        help="requests per client per level (default 12)",
    )
    parser.add_argument("--threads", type=int, default=4,
                        help="server threads (in-process mode)")
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="target an externally started local server instead of "
        "self-hosting (pass the server's --data CSV too)",
    )
    parser.add_argument(
        "--data", default=None,
        help="uncertain CSV of the initial contents (required with "
        "--connect; optional otherwise)",
    )
    parser.add_argument(
        "--report", default="BENCH_serve_load.json",
        help="JSON report path (default BENCH_serve_load.json)",
    )
    parser.add_argument(
        "--p99-budget-ms", type=float, default=None,
        help="fail if any level's client-observed p99 exceeds this",
    )
    args = parser.parse_args(argv)
    if args.connect and not args.data:
        parser.error("--connect requires --data (for replay verification)")
    return asyncio.run(_main_async(args))


if __name__ == "__main__":
    raise SystemExit(main())
