"""Extension — CP under the continuous pdf model (Section 3.2).

The paper extends CP to pdf-described uncertain objects: region-derived
filter rectangles plus probability integration.  This bench runs the pdf
front-end (Monte-Carlo integration via discretization) on uniform-box and
truncated-Gaussian populations and reports cost versus the integration
resolution.
"""

import numpy as np
import pytest

from conftest import SCALE, register_report
from repro.core.cp import compute_causality_pdf
from repro.geometry.rectangle import Rect
from repro.uncertain.pdf import TruncatedGaussianObject, UniformBoxObject

N_OBJECTS = 400 if SCALE == "paper" else 150
RESOLUTIONS = [16, 32, 64]

_ROWS = []


def build_population(kind: str):
    rng = np.random.default_rng(31)
    centers = rng.uniform(0, 1_000, size=(N_OBJECTS, 2))
    extents = rng.uniform(2, 10, size=(N_OBJECTS, 2))
    objects = []
    for i in range(N_OBJECTS):
        region = Rect(centers[i] - extents[i], centers[i] + extents[i])
        if kind == "uniform":
            objects.append(UniformBoxObject(i, region))
        else:
            objects.append(TruncatedGaussianObject(i, region))
    q = np.array([500.0, 500.0])
    # Choose the object closest to q as the case-study non-answer; nudge a
    # couple of neighbours toward q so it has causes.
    an = int(np.argmin(np.abs(centers - q).sum(axis=1)))
    an_center = centers[an]
    toward_q = an_center + 0.35 * (q - an_center)
    for k, oid in enumerate(o for o in range(N_OBJECTS) if o != an):
        if k >= 3:
            break
        objects[oid].region = Rect(toward_q - extents[oid], toward_q + extents[oid])
    return objects, an, q


@pytest.mark.parametrize("kind", ["uniform", "gaussian"])
@pytest.mark.parametrize("resolution", RESOLUTIONS)
def test_ext_pdf_model(once, kind, resolution):
    objects, an, q = build_population(kind)
    result, _dataset = once(
        lambda: compute_causality_pdf(
            objects,
            an,
            q,
            alpha=0.5,
            samples_per_object=resolution,
            rng=np.random.default_rng(7),
        )
    )
    assert len(result) >= 1
    row = {"pdf": kind, "samples/object": resolution}
    row.update(
        {
            "io": result.stats.node_accesses,
            "cpu_ms": round(result.stats.cpu_time_s * 1e3, 3),
            "causes": len(result),
        }
    )
    _ROWS.append(row)


def test_ext_pdf_report(once):
    once(lambda: None)
    assert _ROWS
    register_report("Extension: CP under the continuous pdf model", _ROWS)
