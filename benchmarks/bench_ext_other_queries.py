"""Extension — CRP on other queries (the paper's Section-7 future work).

Reverse k-skyband, bichromatic reverse skyline, and reverse top-k all
admit Lemma-7-style closed forms, so their causality cost is one filter
pass.  This bench reports the cost of each against the certain-data
baseline CR.
"""

import numpy as np
import pytest

from conftest import CERTAIN_N, RUNS, register_report, rsq_workload
from repro.bench.metrics import Aggregate
from repro.core.cr import compute_causality_certain
from repro.exceptions import NotANonAnswerError
from repro.rtopk.causality import compute_causality_rtopk
from repro.rtopk.query import WeightSet, rank_of_query
from repro.skyline.bichromatic import compute_causality_bichromatic
from repro.skyline.skyband import compute_causality_k_skyband
from repro.uncertain.dataset import CertainDataset

_ROWS = []


def _row(label, aggregate):
    row = {"query": label}
    row.update(aggregate.as_row())
    _ROWS.append(row)


@pytest.mark.parametrize("k", [1, 2, 4])
def test_ext_k_skyband(once, k):
    dataset, q, picks = rsq_workload(max_candidates=64, min_candidates=4)

    def run():
        aggregate = Aggregate()
        for an in picks:
            try:
                result = compute_causality_k_skyband(dataset, an, q, k=k)
            except NotANonAnswerError:
                continue
            aggregate.add(result.stats)
        return aggregate

    aggregate = once(run)
    assert aggregate.count > 0
    _row(f"reverse {k}-skyband", aggregate)


def test_ext_bichromatic(once):
    customers, q, picks = rsq_workload(max_candidates=64, min_candidates=1)
    rng = np.random.default_rng(41)
    products = CertainDataset(
        rng.uniform(0, 10_000, size=(CERTAIN_N // 2, customers.dims)),
        ids=[f"prod-{i}" for i in range(CERTAIN_N // 2)],
    )

    def run():
        aggregate = Aggregate()
        for customer in picks:
            try:
                result = compute_causality_bichromatic(
                    customers, products, customer, q
                )
            except NotANonAnswerError:
                continue
            aggregate.add(result.stats)
        return aggregate

    aggregate = once(run)
    _row("bichromatic reverse skyline", aggregate)


def test_ext_rtopk(once):
    rng = np.random.default_rng(43)
    products = CertainDataset(
        rng.uniform(0, 10_000, size=(CERTAIN_N, 2)),
        ids=[f"prod-{i}" for i in range(CERTAIN_N)],
    )
    users = WeightSet(rng.dirichlet([2.0, 2.0], size=8 * RUNS))
    # A competitive product: ranks land in the tens, the regime a vendor
    # would actually analyze (rank-thousands non-answers are hopeless).
    q = rng.uniform(200, 700, size=2)
    k = 10
    non_answers = [
        user for user in users.ids
        if k < rank_of_query(products, users.vector(user), q) <= 150
    ][:RUNS]

    def run():
        aggregate = Aggregate()
        for user in non_answers:
            result = compute_causality_rtopk(products, users, user, q, k)
            aggregate.add(result.stats)
        return aggregate

    aggregate = once(run)
    assert aggregate.count == len(non_answers)
    _row(f"reverse top-{k}", aggregate)


def test_ext_cr_baseline_and_report(once):
    dataset, q, picks = rsq_workload(max_candidates=64, min_candidates=4)

    def run():
        aggregate = Aggregate()
        for an in picks:
            aggregate.add(compute_causality_certain(dataset, an, q).stats)
        return aggregate

    aggregate = once(run)
    _row("reverse skyline (CR)", aggregate)
    register_report(
        "Extension: CRP on other queries (Sec. 7 future work)", _ROWS
    )
