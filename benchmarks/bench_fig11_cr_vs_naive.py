"""Figure 11 — CR versus Naive-II on IND / COR / CLU / ANT and CarDB.

Paper finding: identical I/O (same window-query filter); CR's CPU is lower
because Lemma 7 removes the verification step entirely.  The subset-count
assertion captures that mechanism deterministically.
"""

import pytest

from conftest import CERTAIN_N, RUNS, register_report, rsq_workload
from repro.bench.harness import run_cr_batch, run_naive_ii_batch
from repro.bench.workloads import select_rsq_non_answers
from repro.datasets.cardb import generate_cardb

DISTRIBUTIONS = [
    ("independent", "IND"),
    ("correlated", "COR"),
    ("clustered", "CLU"),
    ("anticorrelated", "ANT"),
]

_ROWS = []


def cardb_workload():
    dataset = generate_cardb(n=min(CERTAIN_N, 45_311), seed=23)
    q = (11_580.0, 49_000.0)
    picks = select_rsq_non_answers(
        dataset, q, count=RUNS, max_candidates=16, min_candidates=6,
        seed=23, max_probes=6_000,
    )
    return dataset, q, picks


@pytest.mark.parametrize("distribution,label", DISTRIBUTIONS)
def test_fig11_synthetic(once, distribution, label):
    dataset, q, picks = rsq_workload(
        distribution=distribution, max_candidates=16
    )
    naive = run_naive_ii_batch(dataset, q, picks)
    cr = once(lambda: run_cr_batch(dataset, q, picks))
    for a, b in zip(cr.results, naive.results):
        assert a.stats.node_accesses == b.stats.node_accesses  # same filter
        assert a.same_causality(b)
        assert a.stats.subsets_examined == 0  # Lemma 7: no verification
        assert b.stats.subsets_examined > 0
    for batch in (cr, naive):
        row = {"dataset": label}
        row.update(batch.row())
        _ROWS.append(row)


def test_fig11_cardb(once):
    dataset, q, picks = cardb_workload()
    naive = run_naive_ii_batch(dataset, q, picks)
    cr = once(lambda: run_cr_batch(dataset, q, picks))
    for a, b in zip(cr.results, naive.results):
        assert a.same_causality(b)
    for batch in (cr, naive):
        row = {"dataset": "CarDB"}
        row.update(batch.row())
        _ROWS.append(row)
    register_report("Fig. 11: CR vs Naive-II", _ROWS)
