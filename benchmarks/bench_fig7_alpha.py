"""Figure 7 — CP cost versus the probability threshold alpha.

Paper finding: node accesses are flat in alpha (the filter step does not
depend on it); CPU time grows with alpha (larger minimum contingency sets)
and then drops sharply at alpha = 1 (the refinement step is skipped).
"""

import pytest

from conftest import ALPHAS, prsq_workload, register_report
from repro.bench.harness import run_cp_batch
from repro.core.cp import CPConfig

_ROWS = []

# The paper's trend (CPU rising with alpha, then dropping at alpha = 1)
# stems from the ascending-cardinality enumeration reaching larger minimal
# contingency sets; our size-level bound prune (an addition on top of the
# paper) flattens it, so both configurations are reported.
SERIES = [
    ("CP", CPConfig()),
    ("CP (paper, no bound prune)", CPConfig(use_bound_prune=False)),
]


def workload():
    # Select at the smallest alpha so the same picks are non-answers at all.
    return prsq_workload(alpha=min(ALPHAS))


@pytest.mark.parametrize("label,config", SERIES, ids=[s[0] for s in SERIES])
@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig7_cp_alpha(once, alpha, label, config):
    dataset, q, picks = workload()
    batch = once(
        lambda: run_cp_batch(dataset, q, alpha, picks, config=config, label=label)
    )
    assert batch.aggregate.count == len(picks)
    row = {"alpha": alpha}
    row.update(batch.row())
    _ROWS.append(row)


def test_fig7_io_flat_in_alpha(once):
    dataset, q, picks = workload()
    io_per_alpha = once(
        lambda: [
            run_cp_batch(dataset, q, alpha, picks).aggregate.mean_node_accesses
            for alpha in ALPHAS
        ]
    )
    # Filter I/O is alpha-independent (Sec. 5.3 discussion of Fig. 7).
    assert len(set(io_per_alpha)) == 1
    register_report("Fig. 7: CP cost vs alpha (lUrU)", _ROWS)
