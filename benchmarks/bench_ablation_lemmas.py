"""Ablation A — CP's refinement strategies switched off one at a time.

Not a paper figure, but the paper's Section 3.1 claims each lemma "boosts
efficiency"; this bench quantifies every switch on the default workload.
All configurations must produce identical causality (that is the lemmas'
correctness claim), differing only in subsets examined / CPU time.
"""

import pytest

from conftest import DEFAULT_ALPHA, NAIVE_MAX_CANDIDATES, prsq_workload, register_report
from repro.bench.harness import run_cp_batch
from repro.core.cp import CPConfig

CONFIGS = [
    ("full CP", CPConfig()),
    ("no Lemma 4 (Γ₁)", CPConfig(use_lemma4=False)),
    ("no Lemma 5 (counterfactual excl.)", CPConfig(use_lemma5=False)),
    ("no Lemma 6 (set reuse)", CPConfig(use_lemma6=False)),
    ("no bound prune", CPConfig(use_bound_prune=False)),
    ("refinement lemmas all off", CPConfig.naive_refinement()),
]

_ROWS = []
_BATCHES = {}


def workload():
    return prsq_workload(max_candidates=NAIVE_MAX_CANDIDATES)


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_ablation_lemmas(once, label, config):
    dataset, q, picks = workload()
    batch = once(
        lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks, config=config, label=label)
    )
    _BATCHES[label] = batch
    _ROWS.append(batch.row())


def test_ablation_output_identical_and_report(once):
    once(lambda: None)
    reference = _BATCHES["full CP"]
    for label, batch in _BATCHES.items():
        for a, b in zip(reference.results, batch.results):
            assert a.same_causality(b), label
        # No ablation may *reduce* the enumeration work below full CP.
        assert (
            batch.aggregate.mean_subsets >= reference.aggregate.mean_subsets - 1e-9
        ), label
    register_report("Ablation A: CP refinement strategies", _ROWS)
