"""Figure 8 — CP cost versus the uncertain-region radius range [r_min, r_max].

Paper finding: both I/O and CPU degrade as regions grow — larger regions
enlarge the non-answer's filter rectangles and admit more (and more
partial) candidate causes.  Radii are scaled to the quick-scale object
density (see conftest / EXPERIMENTS.md).
"""

import pytest

from conftest import DEFAULT_ALPHA, RADIUS_SWEEP, prsq_workload, register_report
from repro.bench.harness import run_cp_batch
from repro.bench.reporting import is_non_decreasing

_ROWS = []


@pytest.mark.parametrize("radius", RADIUS_SWEEP, ids=[f"r{hi}" for _lo, hi in RADIUS_SWEEP])
def test_fig8_cp_radius(once, radius):
    dataset, q, picks = prsq_workload(radius=radius)
    batch = once(lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks))
    assert batch.aggregate.count == len(picks)
    row = {"radius": f"[{radius[0]}, {radius[1]}]"}
    row.update(batch.row())
    _ROWS.append(row)


def test_fig8_report(once):
    assert len(_ROWS) == len(RADIUS_SWEEP)
    register_report("Fig. 8: CP cost vs radius range (lUrU)", _ROWS)

    # Candidate counts are capped by workload selection; the uncapped trend
    # is visible through the mean MBR size of the datasets themselves.
    def mean_mbr_margins():
        sizes = []
        for radius in RADIUS_SWEEP:
            dataset, _q, _picks = prsq_workload(radius=radius)
            sizes.append(sum(obj.mbr.margin() for obj in dataset) / len(dataset))
        return sizes

    assert is_non_decreasing(once(mean_mbr_margins))
