"""Shared configuration for the paper-reproduction benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's Section 5.  Each parameter point is a pytest-benchmark test whose
measured body is the full batch over the selected non-answers; the
paper-shaped result tables (x-axis value, mean node accesses, mean CPU
time per algorithm) are accumulated here and printed after the run in the
terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits both the
timing table and the figure tables.

Scaling: the paper runs 10K-1000K objects with 50 non-answers per point on
a C++ testbed.  Pure Python cannot sweep that in minutes, so the default
``quick`` scale shrinks cardinalities and the batch size while keeping
every trend measurable.  Set ``REPRO_BENCH_SCALE=paper`` for paper-scale
parameters.  EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Sequence

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import (
    random_query,
    select_prsq_non_answers,
    select_rsq_non_answers,
)
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_named

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

if SCALE == "paper":
    UNCERTAIN_N = 100_000
    CERTAIN_N = 100_000
    CARDINALITIES = [10_000, 50_000, 100_000, 500_000, 1_000_000]
    RUNS = 50
    RADIUS_SWEEP = [(0, 2), (0, 3), (0, 5), (0, 8), (0, 10)]
    DEFAULT_RADIUS = (0, 5)
else:
    UNCERTAIN_N = 4_000
    CERTAIN_N = 8_000
    CARDINALITIES = [1_000, 2_000, 4_000, 8_000]
    RUNS = 8
    # Radii scaled by ~x15 to keep radius/object-spacing comparable to the
    # paper's 100K-object density (see EXPERIMENTS.md).
    RADIUS_SWEEP = [(0, 30), (0, 45), (0, 75), (0, 120), (0, 150)]
    DEFAULT_RADIUS = (0, 75)

DEFAULT_DIMS = 3
DEFAULT_ALPHA = 0.6
ALPHAS = [0.2, 0.4, 0.6, 0.8, 1.0]
DIMENSIONS = [2, 3, 4, 5]
MAX_CANDIDATES = 12
NAIVE_MAX_CANDIDATES = 10

_REPORTS: List[str] = []


def register_report(title: str, rows: Sequence[Dict], columns=None) -> None:
    """Queue a paper-figure table for the terminal summary."""
    _REPORTS.append(f"\n== {title} ==\n{format_table(list(rows), columns)}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper figure/table reproductions")
    for report in _REPORTS:
        terminalreporter.write_line(report)


# ---------------------------------------------------------------------------
# cached dataset / workload builders (shared across benchmark modules)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=32)
def uncertain_dataset(
    name: str = "lUrU",
    n: int = UNCERTAIN_N,
    dims: int = DEFAULT_DIMS,
    radius: tuple = DEFAULT_RADIUS,
    seed: int = 17,
):
    return generate_named(name, n, dims, radius_range=radius, seed=seed)


@lru_cache(maxsize=32)
def certain_dataset(
    distribution: str = "independent",
    n: int = CERTAIN_N,
    dims: int = 2,
    seed: int = 19,
):
    return generate_certain_dataset(n, dims, distribution=distribution, seed=seed)


@lru_cache(maxsize=64)
def prsq_workload(
    name: str = "lUrU",
    n: int = UNCERTAIN_N,
    dims: int = DEFAULT_DIMS,
    radius: tuple = DEFAULT_RADIUS,
    alpha: float = DEFAULT_ALPHA,
    runs: int = RUNS,
    max_candidates: int = MAX_CANDIDATES,
    seed: int = 17,
):
    """(dataset, q, non_answers) for one uncertain configuration."""
    dataset = uncertain_dataset(name, n, dims, radius, seed)
    q = random_query(dims, seed=seed)
    picks = select_prsq_non_answers(
        dataset,
        q,
        alpha=alpha,
        count=runs,
        max_candidates=max_candidates,
        seed=seed,
        max_probes=max(4_000, 100 * runs),
    )
    return dataset, q, picks


@lru_cache(maxsize=64)
def rsq_workload(
    distribution: str = "independent",
    n: int = CERTAIN_N,
    dims: int = 2,
    runs: int = RUNS,
    max_candidates: int = 16,
    min_candidates: int = 1,
    seed: int = 19,
):
    """(dataset, q, non_answers) for one certain configuration."""
    dataset = certain_dataset(distribution, n, dims, seed)
    q = random_query(dims, seed=seed)
    picks = select_rsq_non_answers(
        dataset,
        q,
        count=runs,
        max_candidates=max_candidates,
        min_candidates=min_candidates,
        seed=seed,
        max_probes=max(4_000, 100 * runs),
    )
    return dataset, q, picks


@pytest.fixture
def once(benchmark):
    """Run the measured body exactly once under pytest-benchmark timing.

    Batches are expensive (tens of causality computations); a single round
    per parameter point keeps the suite minutes-scale while still putting
    every point into the benchmark table.
    """

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
