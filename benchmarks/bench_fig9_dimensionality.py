"""Figure 9 — CP cost versus dimensionality (2-5).

Paper finding: both metrics improve as dimensionality grows — in higher
dimensions an object is dynamically dominated by fewer objects, so
non-answers have fewer actual causes.  We report the sweep and assert the
paper's mechanism directly: the number of causes found per non-answer
trends down with dimensionality.
"""

import pytest

from conftest import DEFAULT_ALPHA, DIMENSIONS, prsq_workload, register_report
from repro.bench.harness import run_cp_batch

_ROWS = []
_MEAN_CAUSES = {}


def workload(dims):
    try:
        return prsq_workload(dims=dims, max_candidates=14)
    except ValueError:
        return None


@pytest.mark.parametrize("dims", DIMENSIONS)
def test_fig9_cp_dimensionality(once, dims):
    wl = workload(dims)
    if wl is None:
        pytest.skip(f"not enough bounded non-answers at d={dims}")
    dataset, q, picks = wl
    batch = once(lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks))
    assert batch.aggregate.count == len(picks)
    row = {"d": dims}
    row.update(batch.row())
    _ROWS.append(row)
    _MEAN_CAUSES[dims] = sum(len(r) for r in batch.results) / max(
        len(batch.results), 1
    )


def test_fig9_report(once):
    once(lambda: None)
    assert _ROWS, "every dimensionality point failed workload selection"
    register_report("Fig. 9: CP cost vs dimensionality (lUrU)", _ROWS)
    if len(_MEAN_CAUSES) >= 3:
        dims = sorted(_MEAN_CAUSES)
        # Mechanism check, high vs low end (not strictly monotone per point).
        assert _MEAN_CAUSES[dims[-1]] <= _MEAN_CAUSES[dims[0]] * 1.5
