"""Figure 6 — CP versus Naive-I.

Paper finding: identical I/O (both algorithms share the filter step); CP's
CPU time beats Naive-I's thanks to the refinement-step lemmas.  We assert
the structural half (identical node accesses, never more subsets examined)
and report the measured CPU times.
"""

import pytest

from conftest import (
    DEFAULT_ALPHA,
    NAIVE_MAX_CANDIDATES,
    RUNS,
    prsq_workload,
    register_report,
)
from repro.bench.harness import run_cp_batch, run_naive_i_batch

_ROWS = []


def workload():
    return prsq_workload(max_candidates=NAIVE_MAX_CANDIDATES)


@pytest.mark.parametrize("algorithm", ["CP", "Naive-I"])
def test_fig6_cp_vs_naive(once, algorithm):
    dataset, q, picks = workload()
    if algorithm == "CP":
        batch = once(lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks))
    else:
        batch = once(lambda: run_naive_i_batch(dataset, q, DEFAULT_ALPHA, picks))
    assert batch.aggregate.count == len(picks)
    _ROWS.append(batch.row())


def test_fig6_io_identical_and_cp_examines_fewer_subsets(once):
    dataset, q, picks = workload()
    cp, naive = once(
        lambda: (
            run_cp_batch(dataset, q, DEFAULT_ALPHA, picks),
            run_naive_i_batch(dataset, q, DEFAULT_ALPHA, picks),
        )
    )
    # Same filter -> same node accesses, run by run.
    for a, b in zip(cp.results, naive.results):
        assert a.stats.node_accesses == b.stats.node_accesses
        assert a.same_causality(b)
        assert a.stats.subsets_examined <= b.stats.subsets_examined
    register_report(f"Fig. 6: CP vs Naive-I (lUrU, {RUNS} non-answers)", _ROWS)
