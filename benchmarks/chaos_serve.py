"""CI chaos runner: seeded fault schedules against a **real** server process.

For each seed this script

1. generates a :class:`FaultPlan` over the serve-reachable seams,
2. starts an actual ``python -m repro serve`` subprocess with
   ``--fault-plan`` carrying that schedule (parsing the announce line for
   the ephemeral port),
3. drives the same deterministic mixed workload the in-process chaos
   suite uses (reads, idempotency-keyed mutations, one streamed batch)
   through a retrying :class:`RemoteClient`,
4. replays every acknowledged delta on a local session and verifies the
   observed reads bit-identically,
5. appends one NDJSON line — seed, schedule, verdict, failures — to the
   artifact file, then SIGINTs the server and waits for a clean exit.

Any violated invariant prints the failing seed and its full schedule
(``FaultPlan.from_dict`` reproduces the run) and exits nonzero:

    PYTHONPATH=src python benchmarks/chaos_serve.py \\
        --seeds 12 --artifact chaos_schedules.ndjson
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.faults.chaos import (
    SERVE_SEAMS,
    _build_ops,
    _chaos_objects,
    _drive_workload,
    _fresh_dataset,
    _verify_replay,
)
from repro.faults.plan import FaultPlan
from repro.io import save_uncertain_csv

_DATASET_SEED = 4242
_N_OBJECTS = 24
_DIMS = 2


def _start_server(csv_path: str, plan: FaultPlan) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data", csv_path, "--port", "0",
            "--fault-plan", plan.to_json(),
        ],
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_port(proc: subprocess.Popen, timeout_s: float = 30.0) -> int:
    """Parse the announce line (``# serving ... on HOST:PORT [...``)."""
    deadline = time.monotonic() + timeout_s
    assert proc.stderr is not None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            raise RuntimeError(
                f"server exited before announcing (rc={proc.poll()})"
            )
        if line.startswith("# serving"):
            address = line.split(" on ", 1)[1].split()[0]
            return int(address.rsplit(":", 1)[1])
    raise RuntimeError("server never announced its port")


def _stop_server(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    if proc.stderr is not None:
        proc.stderr.close()
    return proc.returncode


def _run_seed(seed: int, csv_path: str, objects, n_ops: int) -> dict:
    plan = FaultPlan.generate(seed, seams=SERVE_SEAMS)
    rng = random.Random(seed)
    ops = _build_ops(rng, _DIMS, n_ops, seed)
    proc = _start_server(csv_path, plan)
    try:
        port = _wait_for_port(proc)
        run = asyncio.run(_drive_workload(port, ops, seed))
    finally:
        returncode = _stop_server(proc)
    checked, mismatches = _verify_replay(
        objects, run["deltas_by_version"], run["semantics"]
    )
    failures: List[str] = []
    if len(run["outcomes"]) != len(ops):
        failures.append(
            f"{len(ops)} requests but {len(run['outcomes'])} outcomes"
        )
    if mismatches:
        failures.append(
            f"{mismatches}/{checked} replayed reads diverged"
        )
    if len(run["deltas_by_version"]) != len(run["acked_inserts"]):
        failures.append("acked mutations and versions disagree")
    if run["degraded_seen"] and "default" not in run["ping"].get("degraded", []):
        failures.append("degraded writes but dataset not advertised degraded")
    if returncode not in (0, 130):
        failures.append(f"server exited rc={returncode} (not a clean stop)")
    return {
        "seed": seed,
        "plan": plan.to_dict(),
        "requests": len(ops),
        "replayed_reads": checked,
        "acked_mutations": len(run["acked_inserts"]),
        "degraded": run["degraded_seen"],
        "failures": failures,
        "ok": not failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=12,
                        help="number of seeded schedules (seeds 0..N-1)")
    parser.add_argument("--ops", type=int, default=14,
                        help="workload length per schedule")
    parser.add_argument("--artifact", default="chaos_schedules.ndjson",
                        help="NDJSON fault-schedule artifact path")
    args = parser.parse_args(argv)

    objects = _chaos_objects(random.Random(_DATASET_SEED), _N_OBJECTS, _DIMS)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = str(Path(tmp) / "chaos-data.csv")
        save_uncertain_csv(_fresh_dataset(objects), csv_path)
        reports = [
            _run_seed(seed, csv_path, objects, args.ops)
            for seed in range(args.seeds)
        ]

    with open(args.artifact, "w") as sink:
        for report in reports:
            sink.write(json.dumps(report, sort_keys=True) + "\n")

    failed = [r for r in reports if not r["ok"]]
    mutations = sum(r["acked_mutations"] for r in reports)
    replayed = sum(r["replayed_reads"] for r in reports)
    print(
        f"chaos_serve: {len(reports)} schedules against a real serve "
        f"process — {len(reports) - len(failed)} ok, {len(failed)} failed "
        f"({replayed} reads replayed bit-identically, {mutations} "
        f"exactly-once mutations); schedules -> {args.artifact}"
    )
    for report in failed:
        print(
            f"  FAILING SEED {report['seed']}: {report['failures']}\n"
            f"    schedule: {json.dumps(report['plan'], sort_keys=True)}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
