"""Figure 12 — CR cost versus dimensionality (2-5) on the four certain
distributions.

Paper finding: performance improves with dimensionality — objects are
dominated by fewer objects in higher dimensions, so non-answers have fewer
causes.
"""

import pytest

from conftest import DIMENSIONS, register_report, rsq_workload
from repro.bench.harness import run_cr_batch

DISTRIBUTIONS = ["independent", "correlated", "clustered", "anticorrelated"]

_ROWS = []
_CAUSES = {}


def workload(distribution, dims):
    try:
        # CR is linear in the candidate count, so the workload is uncapped —
        # unlike the Naive-II comparisons — which lets the paper's
        # fewer-causes-in-higher-dimensions mechanism show through.
        return rsq_workload(
            distribution=distribution, dims=dims, max_candidates=1_000_000
        )
    except ValueError:
        return None


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("dims", DIMENSIONS)
def test_fig12_cr_dimensionality(once, distribution, dims):
    wl = workload(distribution, dims)
    if wl is None:
        pytest.skip(f"not enough bounded non-answers ({distribution}, d={dims})")
    dataset, q, picks = wl
    batch = once(lambda: run_cr_batch(dataset, q, picks))
    assert batch.aggregate.count == len(picks)
    row = {"dataset": distribution, "d": dims}
    row.update(batch.row())
    _ROWS.append(row)
    _CAUSES[(distribution, dims)] = batch.aggregate.mean_candidates


def test_fig12_report(once):
    once(lambda: None)
    assert _ROWS
    register_report("Fig. 12: CR cost vs dimensionality", _ROWS)
