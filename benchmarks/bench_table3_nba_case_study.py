"""Table 3 — the NBA case study.

The paper runs CP on the NBA dataset with q = (3500, 1500, 600, 800),
alpha = 0.5, and the non-answer "Steve John", finding 26 causes (famous
players) with responsibilities between 1/16 and 1/24.  We run the same
query on the synthetic NBA substitute (see DESIGN.md for the substitution)
and print the full causality & responsibility table.
"""

from fractions import Fraction

from conftest import SCALE, register_report
from repro.core.cp import compute_causality
from repro.datasets.nba import DEFAULT_QUERY, STEVE_JOHN, generate_nba, legend_names

N_PLAYERS = 3_542 if SCALE == "paper" else 1_200


def test_table3_nba_case_study(once):
    dataset = generate_nba(n_players=N_PLAYERS)
    result = once(
        lambda: compute_causality(dataset, STEVE_JOHN, DEFAULT_QUERY, alpha=0.5)
    )

    causes = set(result.cause_ids())
    legends = set(legend_names())
    # The paper finds 26 causes, all star players.
    assert legends <= causes
    assert len(causes) >= 26
    # Responsibilities vary (paper: 1/16 .. 1/24 across the roster).
    assert len({round(r, 12) for r in result.responsibilities().values()}) >= 2

    rows = [
        {
            "causality": oid,
            "responsibility": str(
                Fraction(1, int(round(1.0 / resp)))
            ),
        }
        for oid, resp in result.ranked()
    ]
    register_report(
        f"Table 3: causality & responsibility for {STEVE_JOHN} "
        f"(NBA-like, n={N_PLAYERS}, alpha=0.5)",
        rows,
    )
