"""Engine throughput — batched/cached execution vs. the naive per-query loop.

The scenario the engine exists for: a 64-query PRSQ batch shaped like
multi-user traffic — 16 distinct query points, each asked at 4 different
alpha thresholds.  Three execution paths are measured:

* **naive-loop** — what the seed entry points do: rebuild the dataset
  (and therefore the R-tree) and re-evaluate every PRSQ probability from
  scratch for each single query;
* **engine-serial** — one :class:`repro.engine.Session`: the R-tree is
  bulk-loaded once and the alpha-independent probability maps are cached
  per query point, so 64 queries cost 16 evaluations;
* **engine-parallel** — the same batch through the multiprocess
  :class:`repro.engine.ParallelExecutor` (reported for reference; on a
  single-core box the win comes from the cache, not the fan-out).

Asserted: identical answers on all paths, and the engine batch beating
the naive loop wall-clock on the 64-query batch.
"""

import time

from conftest import register_report
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import ParallelExecutor, PRSQSpec, Session
from repro.prsq.query import probabilistic_reverse_skyline
from repro.uncertain.dataset import UncertainDataset

N_OBJECTS = 256
DIMS = 2
N_POINTS = 16
ALPHAS = [0.2, 0.4, 0.6, 0.8]

_ROWS = []


def _workload():
    dataset = generate_uncertain_dataset(N_OBJECTS, DIMS, seed=23)
    qs = [(4000.0 + 125.0 * i, 6000.0 - 125.0 * i) for i in range(N_POINTS)]
    specs = [
        PRSQSpec(q=q, alpha=alpha, want="answers")
        for q in qs
        for alpha in ALPHAS
    ]
    assert len(specs) == 64
    return dataset, specs


def _naive_loop(dataset, specs):
    """Seed behaviour: fresh dataset + index + probabilities per query."""
    objects = dataset.objects()
    answers = []
    for spec in specs:
        fresh = UncertainDataset(objects, page_size=dataset.page_size)
        answers.append(
            probabilistic_reverse_skyline(fresh, spec.q, spec.alpha)
        )
    return answers


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_engine_batch_beats_naive_loop(once):
    dataset, specs = _workload()

    def run_all():
        naive, naive_s = _timed(lambda: _naive_loop(dataset, specs))

        session = Session(dataset)
        serial, serial_s = _timed(lambda: session.execute_batch(specs))

        parallel, parallel_s = _timed(
            lambda: session.execute_batch(
                specs, executor=ParallelExecutor(workers=2)
            )
        )
        return naive, naive_s, session, serial, serial_s, parallel, parallel_s

    naive, naive_s, session, serial, serial_s, parallel, parallel_s = once(
        run_all
    )

    # Parity: every path returns the same answer sets in the same order.
    for naive_answers, outcome, par_outcome in zip(naive, serial, parallel):
        assert naive_answers == outcome.value
        assert naive_answers == par_outcome.value

    stats = session.cache_stats()
    assert stats["hits"] > 0, "repeated query points must hit the cache"

    # The acceptance bar: the engine batch beats the naive per-query loop.
    assert serial_s < naive_s, (
        f"engine batch ({serial_s:.3f}s) should beat the naive loop "
        f"({naive_s:.3f}s) on a {len(specs)}-query batch"
    )

    def row(label, seconds):
        return {
            "path": label,
            "seconds": round(seconds, 3),
            "queries_per_s": round(len(specs) / seconds, 2),
            "speedup_vs_naive": round(naive_s / seconds, 2),
        }

    _ROWS.extend(
        [
            row("naive-loop", naive_s),
            row("engine-serial (cached)", serial_s),
            row("engine-parallel (2 workers)", parallel_s),
        ]
    )
    register_report(
        f"Engine throughput: {len(specs)}-query PRSQ batch "
        f"({N_POINTS} points x {len(ALPHAS)} alphas, n={N_OBJECTS}, "
        f"cache hits={int(stats['hits'])})",
        _ROWS,
    )
