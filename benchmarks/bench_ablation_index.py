"""Ablation B — R-tree filter versus linear-scan filter.

Lemma 1's discussion: candidates can be found in O(|P|^2) by scanning, but
the paper prefers the R-tree range query (Lemma 2).  This bench measures
the filter either way; the causality output must be identical.
"""

import pytest

from conftest import DEFAULT_ALPHA, prsq_workload, register_report
from repro.bench.harness import run_cp_batch
from repro.core.cp import CPConfig

_ROWS = []
_BATCHES = {}

CONFIGS = [
    ("R-tree filter", CPConfig(use_index=True)),
    ("linear-scan filter", CPConfig(use_index=False)),
]


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_ablation_index(once, label, config):
    dataset, q, picks = prsq_workload()
    batch = once(
        lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks, config=config, label=label)
    )
    _BATCHES[label] = batch
    _ROWS.append(batch.row())


def test_ablation_index_report(once):
    once(lambda: None)
    indexed = _BATCHES["R-tree filter"]
    scanned = _BATCHES["linear-scan filter"]
    for a, b in zip(indexed.results, scanned.results):
        assert a.same_causality(b)
    assert indexed.aggregate.mean_node_accesses > 0
    assert scanned.aggregate.mean_node_accesses == 0
    register_report("Ablation B: filter implementation", _ROWS)
