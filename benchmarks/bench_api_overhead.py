"""API v2 envelope overhead — typed facade vs. raw engine access.

The redesign wraps every result in a typed, schema-versioned
:class:`~repro.api.QueryResult` envelope and routes dispatch through the
query registry.  This benchmark pins down what that costs on the hot
path: a cache-hot 64-query PRSQ batch executed three ways —

* **engine-raw** — ``Session._execute_outcome`` per spec (the v1 path
  minus the deprecation shim, i.e. the engine floor);
* **client-envelopes** — the same batch through
  ``client.batch().run()``, paying registry dispatch + envelope
  construction per query;
* **client-stream+json** — ``.stream()`` with full ``to_dict`` +
  ``json.dumps`` serialization per envelope (the CLI NDJSON path).

Asserted: identical payloads on all paths, and the envelope overhead
staying under 5x the raw engine cost on cache hits (it is far below that
in practice; the bound only guards against a pathological regression —
an envelope costing more than the query it wraps).
"""

import json
import time

from conftest import register_report
from repro.api import connect
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import PRSQSpec

N_OBJECTS = 256
DIMS = 2
N_POINTS = 16
ALPHAS = [0.2, 0.4, 0.6, 0.8]

_ROWS = []


def _workload():
    dataset = generate_uncertain_dataset(N_OBJECTS, DIMS, seed=23)
    qs = [(4000.0 + 125.0 * i, 6000.0 - 125.0 * i) for i in range(N_POINTS)]
    specs = [
        PRSQSpec(q=q, alpha=alpha, want="answers")
        for q in qs
        for alpha in ALPHAS
    ]
    return dataset, specs


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def test_envelope_overhead_is_bounded(once):
    dataset, specs = _workload()
    client = connect(dataset)
    client.batch().extend(specs).run()  # warm the cache: measure envelope
    # cost, not probability evaluation

    def run_all():
        session = client.session
        raw, raw_s = _timed(
            lambda: [session._execute_outcome(spec).value for spec in specs]
        )
        envelopes, env_s = _timed(lambda: client.batch().extend(specs).run())
        ndjson, ndjson_s = _timed(
            lambda: [
                json.dumps(e.to_dict())
                for e in client.batch().extend(specs).stream()
            ]
        )
        return raw, raw_s, envelopes, env_s, ndjson, ndjson_s

    raw, raw_s, envelopes, env_s, ndjson, ndjson_s = once(run_all)

    # Parity: the typed payloads carry exactly the raw values.
    assert [e.to_raw() for e in envelopes] == raw
    assert all(e.run.cached for e in envelopes)
    assert len(ndjson) == len(specs)

    assert env_s < raw_s * 5.0, (
        f"envelope path ({env_s * 1e3:.1f} ms) should stay within 5x the "
        f"raw engine path ({raw_s * 1e3:.1f} ms) on cache hits"
    )

    def row(label, seconds):
        return {
            "path": label,
            "ms_per_64_queries": round(seconds * 1e3, 2),
            "overhead_vs_raw": round(seconds / raw_s, 2),
        }

    _ROWS.extend(
        [
            row("engine-raw (cache hits)", raw_s),
            row("client-envelopes", env_s),
            row("client-stream+json (NDJSON)", ndjson_s),
        ]
    )
    register_report(
        f"API v2 envelope overhead: cache-hot {len(specs)}-query PRSQ batch "
        f"(n={N_OBJECTS})",
        _ROWS,
    )
