"""Incremental ``Session.apply`` vs. ``replace_dataset`` full rebuild.

Replays the same churn workload — single-object inserts, updates and
deletes against a 1,000-object 2-d dataset — down both update paths:

* **incremental** — ``Session.apply(delta)`` patches the R-tree, the
  cached tensor and the content digest in O(changed) work;
* **full rebuild** — the pre-delta behavior: build a brand-new dataset
  and ``replace_dataset`` it, paying the STR bulk load, the tensor
  rebuild and the fingerprint pass for every single-object change.

After each op both paths force the same derived state (fingerprint,
R-tree, tensor) so neither side can hide lazy work.  Asserts:

* **speedup** — incremental must beat the rebuild by at least
  ``--min-speedup`` (default 5x, the acceptance bar);
* **parity** — after the whole churn both sessions hold bit-identical
  state: equal fingerprints and bit-identical PRSQ probabilities.

Runs standalone (the CI smoke job):

    PYTHONPATH=src python benchmarks/bench_updates.py
    PYTHONPATH=src python benchmarks/bench_updates.py --objects 300 --churn 20
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import DatasetDelta, PRSQSpec, Session
from repro.uncertain import UncertainDataset, UncertainObject


def _new_object(oid, rng) -> UncertainObject:
    samples = rng.uniform(1_000, 9_000, size=(int(rng.integers(1, 5)), 2))
    return UncertainObject(oid, samples)


def build_workload(objects: int, churn: int, seed: int):
    """(dataset objects, op list) — ops cycle insert -> update -> delete."""
    dataset = generate_uncertain_dataset(
        objects, 2, radius_range=(0, 150), seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    ids = list(dataset.ids())
    ops = []
    for i in range(churn):
        kind = ("insert", "update", "delete")[i % 3]
        if kind == "insert":
            oid = f"new-{i}"
            ops.append(("insert", _new_object(oid, rng)))
            ids.append(oid)
        elif kind == "update":
            oid = ids[int(rng.integers(len(ids)))]
            ops.append(("update", _new_object(oid, rng)))
        else:
            victim = ids.pop(int(rng.integers(len(ids))))
            ops.append(("delete", victim))
    return dataset, ops


def _force_derived(session: Session) -> None:
    """Touch everything a query would need: fingerprint, index, tensor."""
    session.fingerprint
    session.dataset.rtree
    session.dataset.tensor


def run_incremental(dataset_objects: List, ops, page_size: int) -> Dict:
    session = Session(UncertainDataset(list(dataset_objects), page_size=page_size))
    _force_derived(session)  # warm start outside the timed region
    started = time.perf_counter()
    for kind, payload in ops:
        if kind == "insert":
            session.apply(DatasetDelta.insertion(payload))
        elif kind == "update":
            session.apply(DatasetDelta.replacement(payload))
        else:
            session.apply(DatasetDelta.deletion(payload))
        _force_derived(session)
    return {"session": session, "seconds": time.perf_counter() - started}


def _clone(obj: UncertainObject) -> UncertainObject:
    return UncertainObject(
        obj.oid, obj.samples.copy(), obj.probabilities.copy(), name=obj.name
    )


def run_full_rebuild(dataset_objects: List, ops, page_size: int) -> Dict:
    session = Session(UncertainDataset(list(dataset_objects), page_size=page_size))
    _force_derived(session)
    contents = list(dataset_objects)
    index_of = {obj.oid: i for i, obj in enumerate(contents)}

    def reindex():
        index_of.clear()
        index_of.update({obj.oid: i for i, obj in enumerate(contents)})

    started = time.perf_counter()
    for kind, payload in ops:
        if kind == "insert":
            contents.append(payload)
            index_of[payload.oid] = len(contents) - 1
        elif kind == "update":
            contents[index_of[payload.oid]] = payload
        else:
            del contents[index_of[payload]]
            reindex()
        # The pre-delta path: reconstruct every object (as any reload from
        # the source of truth does) and replace wholesale — the full O(n)
        # re-validate + re-fingerprint + STR bulk load + tensor rebuild.
        session.replace_dataset(
            UncertainDataset(
                [_clone(obj) for obj in contents], page_size=page_size
            )
        )
        _force_derived(session)
    return {"session": session, "seconds": time.perf_counter() - started}


def bench(
    objects: int = 1_000,
    churn: int = 30,
    min_speedup: float = 5.0,
    seed: int = 11,
) -> Dict:
    """One full comparison run; raises AssertionError on any violated bar."""
    dataset, ops = build_workload(objects, churn, seed)
    base_objects = dataset.objects()

    incremental = run_incremental(base_objects, ops, dataset.page_size)
    rebuild = run_full_rebuild(base_objects, ops, dataset.page_size)

    live: Session = incremental["session"]
    reference: Session = rebuild["session"]
    assert live.fingerprint == reference.fingerprint, (
        "incremental churn diverged from the full-rebuild contents"
    )
    spec = PRSQSpec(q=(5_000.0, 5_000.0), alpha=0.5, want="probabilities")
    live_probabilities = live.query(spec).value.probabilities
    reference_probabilities = reference.query(spec).value.probabilities
    mismatches = [
        oid
        for oid in reference_probabilities
        if live_probabilities[oid].hex() != reference_probabilities[oid].hex()
    ]
    assert not mismatches, f"probability bits diverge for {mismatches!r}"

    speedup = rebuild["seconds"] / max(incremental["seconds"], 1e-12)
    assert speedup >= min_speedup, (
        f"incremental apply only {speedup:.1f}x faster than the full "
        f"rebuild (bar: {min_speedup:.1f}x)"
    )
    return {
        "objects": objects,
        "churn": churn,
        "rebuild_s": rebuild["seconds"],
        "incremental_s": incremental["seconds"],
        "speedup": speedup,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=1_000)
    parser.add_argument("--churn", type=int, default=30)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    row = bench(
        objects=args.objects,
        churn=args.churn,
        min_speedup=args.min_speedup,
        seed=args.seed,
    )
    per_op_rebuild = row["rebuild_s"] / row["churn"] * 1e3
    per_op_incremental = row["incremental_s"] / row["churn"] * 1e3
    print(
        "bench_updates: "
        f"n={row['objects']} churn={row['churn']} | "
        f"rebuild {per_op_rebuild:8.2f} ms/op | "
        f"incremental {per_op_incremental:8.2f} ms/op | "
        f"speedup {row['speedup']:6.1f}x (bit-identical final state)"
    )


if __name__ == "__main__":
    main()
