"""Tensorized vs. scalar exact-PRSQ probability path (Eqs. (2)/(3)).

Times a batch of `reverse_skyline_probability` evaluations over one
uncertain dataset on both kernel paths and verifies three properties the
engine depends on:

* **speedup** — the tensor path must beat the scalar triple loop by at
  least ``--min-speedup`` (default 5x, the acceptance bar for a
  1,000-object 2-d batch);
* **bit parity** — both paths return identical float bits per object;
* **determinism** — repeating the tensor batch (with a freshly built
  dataset and R-tree) reproduces the exact bits, pinning the sorted
  Eq. (2) product order.

Runs standalone (the CI smoke job) or under pytest:

    PYTHONPATH=src python benchmarks/bench_prsq_kernels.py
    PYTHONPATH=src python benchmarks/bench_prsq_kernels.py --objects 300 --batch 8
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.prsq.probability import reverse_skyline_probability


def _build(objects: int, dims: int, seed: int):
    return generate_uncertain_dataset(
        objects, dims, radius_range=(0, 150), seed=seed
    )


def run_batch(
    dataset, targets: List, q: np.ndarray, use_numpy: bool, use_index: bool
) -> Dict:
    """Evaluate the batch on one kernel path; returns values and wall time."""
    started = time.perf_counter()
    values = [
        reverse_skyline_probability(
            dataset, oid, q, use_index=use_index, use_numpy=use_numpy
        )
        for oid in targets
    ]
    return {"values": values, "seconds": time.perf_counter() - started}


def bench(
    objects: int = 1_000,
    dims: int = 2,
    batch: int = 32,
    min_speedup: float = 5.0,
    use_index: bool = False,
    seed: int = 13,
) -> Dict:
    """One full comparison run; raises AssertionError on any violated bar.

    ``use_index=False`` times the raw Eq. (2)/(3) evaluation over all
    ``n - 1`` dominators per target — the paper's headline cost, and the
    fair kernel-vs-loop comparison (the R-tree prune would shrink both
    sides equally; pass ``--use-index`` to measure that configuration).
    """
    dataset = _build(objects, dims, seed)
    rng = np.random.default_rng(seed)
    q = rng.uniform(2_000, 8_000, size=dims)
    targets = list(dataset.ids())[:batch]

    dataset.tensor  # build the session tensor outside the timed region
    tensor = run_batch(dataset, targets, q, use_numpy=True, use_index=use_index)
    scalar = run_batch(dataset, targets, q, use_numpy=False, use_index=use_index)

    mismatches = [
        oid
        for oid, a, b in zip(targets, tensor["values"], scalar["values"])
        if a.hex() != b.hex()
    ]
    assert not mismatches, f"tensor/scalar bits diverge for {mismatches!r}"

    # Determinism: a fresh dataset (fresh R-tree, fresh tensor) must
    # reproduce the exact bits, on both the pruned and unpruned paths.
    replay_ds = _build(objects, dims, seed)
    replay = run_batch(replay_ds, targets, q, use_numpy=True, use_index=True)
    baseline = run_batch(dataset, targets, q, use_numpy=True, use_index=True)
    drifted = [
        oid
        for oid, a, b in zip(targets, baseline["values"], replay["values"])
        if a.hex() != b.hex()
    ]
    assert not drifted, f"bits drift across runs for {drifted!r}"

    speedup = scalar["seconds"] / max(tensor["seconds"], 1e-12)
    assert speedup >= min_speedup, (
        f"tensor path only {speedup:.1f}x faster than scalar "
        f"(bar: {min_speedup:.1f}x)"
    )
    return {
        "objects": objects,
        "dims": dims,
        "batch": batch,
        "scalar_s": scalar["seconds"],
        "tensor_s": tensor["seconds"],
        "speedup": speedup,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=1_000)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--use-index", action="store_true",
        help="time the R-tree-pruned configuration instead of the full scan",
    )
    args = parser.parse_args(argv)
    row = bench(
        objects=args.objects,
        dims=args.dims,
        batch=args.batch,
        min_speedup=args.min_speedup,
        use_index=args.use_index,
    )
    print(
        "bench_prsq_kernels: "
        f"n={row['objects']} d={row['dims']} batch={row['batch']} | "
        f"scalar {row['scalar_s'] * 1e3:8.1f} ms | "
        f"tensor {row['tensor_s'] * 1e3:8.1f} ms | "
        f"speedup {row['speedup']:6.1f}x (bit-identical, deterministic)"
    )


if __name__ == "__main__":
    main()
