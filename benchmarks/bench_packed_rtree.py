"""Packed vs. pointer R-tree traversal on the many-window filter phase.

Times the Lemma-2-shaped workload every index-guided algorithm funnels
through: for a batch of target objects, collect all dataset objects whose
MBR crosses any of the target's per-sample dominance rectangles.  The
pointer path answers one ``range_search_any`` per target; the packed path
(:class:`repro.index.packed.PackedRTree`) answers the whole batch with one
grouped level-frontier pass.  Three properties are asserted:

* **speedup** — the packed kernel must beat the pointer loop by at least
  ``--min-speedup`` (default 5x, the acceptance bar on the 1,000-object
  2-d workload);
* **bit parity** — identical hit lists (both paths share the canonical
  unique/``repr``-sorted contract) and *identical* ``AccessStats`` node /
  leaf / query counts;
* **churn parity** — after a ``DatasetDelta`` insert/update/delete mix the
  re-frozen snapshot still matches the patched pointer tree exactly.

Emits a machine-readable ``BENCH_packed_rtree.json`` (``--json``) so CI
records the perf trajectory.  Runs standalone or under pytest:

    PYTHONPATH=src python benchmarks/bench_packed_rtree.py
    PYTHONPATH=src python benchmarks/bench_packed_rtree.py --objects 300
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.bench.reporting import write_json_report
from repro.core.candidates import filter_rectangles
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject


def _build(objects: int, dims: int, seed: int):
    return generate_uncertain_dataset(
        objects,
        dims,
        radius_range=(0, 150),
        samples_range=(6, 12),
        seed=seed,
    )


def _window_groups(dataset, targets: List, q: np.ndarray) -> List[List]:
    return [filter_rectangles(dataset.get(oid), q) for oid in targets]


def _timed_pointer(dataset, groups) -> Dict:
    tree = dataset.rtree
    with dataset.access_stats.measure() as snapshot:
        started = time.perf_counter()
        hits = [tree.range_search_any(group) for group in groups]
        seconds = time.perf_counter() - started
    return {"hits": hits, "seconds": seconds, "stats": snapshot}


def _timed_packed(dataset, groups) -> Dict:
    packed = dataset.packed  # freeze outside the timed region (O(n) pass)
    with dataset.access_stats.measure() as snapshot:
        started = time.perf_counter()
        hits = packed.range_search_any_grouped(groups)
        seconds = time.perf_counter() - started
    return {"hits": hits, "seconds": seconds, "stats": snapshot}


def _assert_parity(pointer: Dict, packed: Dict, label: str) -> None:
    assert pointer["hits"] == packed["hits"], (
        f"{label}: packed hit lists diverge from the pointer tree"
    )
    a, b = pointer["stats"], packed["stats"]
    observed = (b.node_accesses, b.leaf_accesses, b.queries)
    expected = (a.node_accesses, a.leaf_accesses, a.queries)
    assert observed == expected, (
        f"{label}: access accounting diverges "
        f"(pointer {expected}, packed {observed})"
    )


def _churn(dataset, seed: int) -> None:
    """Apply a delete/update/insert mix through the incremental path."""
    rng = np.random.default_rng(seed)
    ids = dataset.ids()
    doomed = [ids[i] for i in rng.choice(len(ids), size=10, replace=False)]
    survivors = [oid for oid in ids if oid not in set(doomed)]
    updates = []
    for oid in survivors[:10]:
        obj = dataset.get(oid)
        updates.append(
            UncertainObject(
                oid,
                obj.samples + rng.uniform(-5, 5, size=obj.samples.shape),
                obj.probabilities,
            )
        )
    inserts = [
        UncertainObject.certain(
            f"churn-{i}", rng.uniform(0, 10_000, size=dataset.dims)
        )
        for i in range(10)
    ]
    dataset.apply_delta(
        DatasetDelta(deletes=doomed, updates=updates, inserts=inserts)
    )


def bench(
    objects: int = 1_000,
    dims: int = 2,
    batch: int = 64,
    min_speedup: float = 5.0,
    seed: int = 23,
    json_path: str = "",
) -> Dict:
    """One full comparison run; raises AssertionError on any violated bar.

    When *json_path* is set the measured row is recorded **before** the
    speedup bar is checked, so a regressing run still leaves its numbers
    behind for diagnosis.
    """
    dataset = _build(objects, dims, seed)
    rng = np.random.default_rng(seed)
    q = rng.uniform(2_000, 8_000, size=dims)
    targets = list(dataset.ids())[:batch]
    groups = _window_groups(dataset, targets, q)
    n_windows = sum(len(g) for g in groups)

    dataset.rtree  # build the tree outside every timed region
    pointer = _timed_pointer(dataset, groups)
    packed = _timed_packed(dataset, groups)
    _assert_parity(pointer, packed, "fresh dataset")

    speedup = pointer["seconds"] / max(packed["seconds"], 1e-12)
    row = {
        "objects": objects,
        "dims": dims,
        "batch": batch,
        "windows": n_windows,
        "node_accesses": pointer["stats"].node_accesses,
        "pointer_s": pointer["seconds"],
        "packed_s": packed["seconds"],
        "speedup": speedup,
    }
    if json_path:
        write_json_report(
            json_path,
            "packed_rtree",
            rows=[row],
            meta={
                "seed": seed,
                "min_speedup": min_speedup,
                "workload": "lemma2-multi-window-filter",
            },
            workload={
                "n": objects,
                "d": dims,
                "s_max": dataset.max_samples(),
                "shards": 1,
            },
        )
    assert speedup >= min_speedup, (
        f"packed traversal only {speedup:.1f}x faster than the pointer "
        f"loop (bar: {min_speedup:.1f}x)"
    )

    # Parity must survive incremental churn: the delta patches the pointer
    # tree in place and invalidates the snapshot, which re-freezes lazily.
    _churn(dataset, seed)
    assert dataset._packed is None, "churn must invalidate the snapshot"
    survivors = [oid for oid in targets if oid in dataset]
    churn_groups = _window_groups(dataset, survivors, q)
    _assert_parity(
        _timed_pointer(dataset, churn_groups),
        _timed_packed(dataset, churn_groups),
        "after DatasetDelta churn",
    )

    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=1_000)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--json",
        default="BENCH_packed_rtree.json",
        help="machine-readable report path ('' disables)",
    )
    args = parser.parse_args(argv)
    row = bench(
        objects=args.objects,
        dims=args.dims,
        batch=args.batch,
        min_speedup=args.min_speedup,
        seed=args.seed,
        json_path=args.json,
    )
    print(
        "bench_packed_rtree: "
        f"n={row['objects']} d={row['dims']} batch={row['batch']} "
        f"windows={row['windows']} | "
        f"pointer {row['pointer_s'] * 1e3:8.1f} ms | "
        f"packed {row['packed_s'] * 1e3:8.1f} ms | "
        f"speedup {row['speedup']:6.1f}x "
        "(bit-identical hits, identical node accesses, churn-stable)"
    )


if __name__ == "__main__":
    main()
