"""Disabled-path cost of the ``repro.obs`` instrumentation seams.

Every phase boundary in the query path calls :func:`repro.obs.span`; when
no tracer is ambient that call is one thread-local attribute lookup plus a
shared no-op context manager.  This benchmark bounds what those seams cost
a session that never opts into tracing:

* time the reference workload — a PRSQ batch over the 1,000-object 2-d
  uncertain dataset, cache disabled — with tracing off (min of
  ``--trials`` runs);
* replay the identical batch once with an in-memory tracer and count the
  spans it produces (= the number of instrumentation calls the disabled
  run executed);
* microbenchmark the disabled ``span()`` call in isolation and compute
  the bound ``spans * cost_per_call / workload_seconds``.

The computed bound must stay under ``--max-overhead`` (default 3%).  A
wall-clock comparison of traced vs. disabled runs is recorded alongside
for context but not asserted — at millisecond scales it is noise-bound.

Emits a machine-readable ``BENCH_obs_overhead.json`` (``--json``) so CI
records the trajectory.  Runs standalone:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --objects 300
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro import obs
from repro.api.client import Client, connect
from repro.bench.reporting import write_json_report
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine.spec import PRSQSpec


def _build(objects: int, dims: int, seed: int):
    return generate_uncertain_dataset(
        objects,
        dims,
        radius_range=(0, 150),
        samples_range=(6, 12),
        seed=seed,
    )


def _specs(dims: int, batch: int, seed: int) -> List[PRSQSpec]:
    rng = np.random.default_rng(seed)
    points = rng.uniform(2_000, 8_000, size=(batch, dims))
    alphas = rng.uniform(0.2, 0.8, size=batch)
    return [
        PRSQSpec(q=tuple(float(x) for x in q), alpha=float(a))
        for q, a in zip(points, alphas)
    ]


def _run_batch(client: Client, specs: List[PRSQSpec]) -> None:
    client.batch().extend(specs).run()


def _timed_batch(client: Client, specs: List[PRSQSpec], trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        _run_batch(client, specs)
        best = min(best, time.perf_counter() - started)
    return best


def _count_spans(roots) -> int:
    total = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node.children)
    return total


def _disabled_span_cost(calls: int = 200_000) -> float:
    """Per-call seconds of ``obs.span`` with no ambient tracer."""
    assert obs.active_tracer() is None, "microbenchmark needs tracing off"
    span = obs.span
    started = time.perf_counter()
    for _ in range(calls):
        with span("bench"):
            pass
    return (time.perf_counter() - started) / calls


def bench(
    objects: int = 1_000,
    dims: int = 2,
    batch: int = 8,
    trials: int = 3,
    max_overhead: float = 0.03,
    seed: int = 29,
    json_path: str = "",
) -> Dict:
    """One full overhead run; raises AssertionError past the bar.

    When *json_path* is set the measured row is recorded **before** the
    overhead bar is checked, so a regressing run still leaves its numbers
    behind for diagnosis.
    """
    dataset = _build(objects, dims, seed)
    specs = _specs(dims, batch, seed)

    # Cache off: every trial must recompute the full filter+probability
    # path, otherwise trial 2+ only measures the cache probe.
    plain = connect(dataset, cache_size=0)
    _run_batch(plain, specs)  # warm the index / packed snapshot
    disabled_s = _timed_batch(plain, specs, trials)

    tracer = obs.Tracer()
    traced = connect(dataset, cache_size=0, trace=tracer)
    traced_s = _timed_batch(traced, specs, trials)
    n_spans = _count_spans(tracer.drain()) // trials

    cost_per_call = _disabled_span_cost()
    overhead = (n_spans * cost_per_call) / disabled_s

    row = {
        "objects": objects,
        "dims": dims,
        "batch": batch,
        "spans_per_run": n_spans,
        "span_call_ns": cost_per_call * 1e9,
        "disabled_s": disabled_s,
        "traced_s": traced_s,
        "overhead_bound": overhead,
    }
    if json_path:
        write_json_report(
            json_path,
            "obs_overhead",
            rows=[row],
            meta={
                "seed": seed,
                "trials": trials,
                "max_overhead": max_overhead,
                "workload": "prsq-batch-cache-off",
            },
            workload={
                "n": objects,
                "d": dims,
                "s_max": dataset.max_samples(),
                "shards": 1,
            },
        )
    assert overhead < max_overhead, (
        f"disabled-path instrumentation bound {overhead:.2%} exceeds "
        f"{max_overhead:.0%} ({n_spans} spans x {cost_per_call * 1e9:.0f} ns "
        f"over a {disabled_s * 1e3:.1f} ms workload)"
    )
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=1_000)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--max-overhead", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument(
        "--json",
        default="BENCH_obs_overhead.json",
        help="machine-readable report path ('' disables)",
    )
    args = parser.parse_args(argv)
    row = bench(
        objects=args.objects,
        dims=args.dims,
        batch=args.batch,
        trials=args.trials,
        max_overhead=args.max_overhead,
        seed=args.seed,
        json_path=args.json,
    )
    print(
        "bench_obs_overhead: "
        f"n={row['objects']} d={row['dims']} batch={row['batch']} | "
        f"disabled {row['disabled_s'] * 1e3:8.1f} ms | "
        f"traced {row['traced_s'] * 1e3:8.1f} ms | "
        f"{row['spans_per_run']} spans x {row['span_call_ns']:.0f} ns "
        f"=> bound {row['overhead_bound']:.3%} "
        "(bar: disabled-path < "
        f"{args.max_overhead:.0%})"
    )


if __name__ == "__main__":
    main()
