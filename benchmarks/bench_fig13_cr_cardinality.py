"""Figure 13 — CR cost versus dataset cardinality on the four certain
distributions.

Paper finding: node accesses and CPU time grow with |P| — the data becomes
denser (the domain is fixed), every object is dominated by more objects,
and the causality sets grow.
"""

import pytest

from conftest import CARDINALITIES, register_report, rsq_workload
from repro.bench.harness import run_cr_batch

DISTRIBUTIONS = ["independent", "correlated", "clustered", "anticorrelated"]

_ROWS = []


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_fig13_cr_cardinality(once, distribution, cardinality):
    try:
        # Uncapped candidates (CR is linear): the paper's growth of the
        # causality set with density is the point of this figure.
        dataset, q, picks = rsq_workload(
            distribution=distribution, n=cardinality, max_candidates=1_000_000
        )
    except ValueError:
        pytest.skip(f"not enough bounded non-answers ({distribution}, n={cardinality})")
    batch = once(lambda: run_cr_batch(dataset, q, picks))
    assert batch.aggregate.count == len(picks)
    row = {"dataset": distribution, "cardinality": cardinality}
    row.update(batch.row())
    _ROWS.append(row)


def test_fig13_report(once):
    once(lambda: None)
    assert _ROWS
    register_report("Fig. 13: CR cost vs cardinality", _ROWS)
    # I/O trend per distribution: larger trees at the top end.
    for distribution in DISTRIBUTIONS:
        series = [r for r in _ROWS if r["dataset"] == distribution]
        if len(series) >= 2:
            assert series[-1]["io"] >= series[0]["io"]
