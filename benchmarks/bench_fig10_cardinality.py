"""Figure 10 — CP cost versus dataset cardinality.

Paper finding: I/O and CPU both grow with |P| — denser data means more
candidate causes per non-answer and a larger R-tree to traverse.
"""

import pytest

from conftest import CARDINALITIES, DEFAULT_ALPHA, prsq_workload, register_report
from repro.bench.harness import run_cp_batch
from repro.bench.reporting import is_non_decreasing

_ROWS = []


@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_fig10_cp_cardinality(once, cardinality):
    dataset, q, picks = prsq_workload(n=cardinality)
    batch = once(lambda: run_cp_batch(dataset, q, DEFAULT_ALPHA, picks))
    assert batch.aggregate.count == len(picks)
    row = {"cardinality": cardinality}
    row.update(batch.row())
    _ROWS.append(row)


def test_fig10_report(once):
    once(lambda: None)
    assert len(_ROWS) == len(CARDINALITIES)
    register_report("Fig. 10: CP cost vs cardinality (lUrU)", _ROWS)
    # The R-tree grows with |P|; the filter must touch more nodes at the
    # top end than at the bottom end.
    ios = [row["io"] for row in _ROWS]
    assert ios[-1] >= ios[0]
