"""Fault-recovery benchmark: mixed load under kills and disconnects.

Two phases, each measured against its own fault-free baseline:

* **serve**: C concurrent retrying clients (readers plus one
  idempotency-keyed writer) drive an in-process server twice — once
  clean, once under a composed :class:`FaultPlan` of connection drops
  and a mid-stream disconnect.  Asserts **zero lost responses** (every
  logical request resolves to exactly one successful envelope — retries
  absorb every injected drop), **exactly-once writes** (final object
  count equals initial + unique inserts), and **bounded p99 inflation**:
  the faulted p99 must stay under ``--p99-factor`` x the baseline p99
  (floored at ``--p99-floor-ms`` so a microsecond-fast baseline cannot
  fail the run on scheduler noise).  When a ``BENCH_serve_load.json``
  from the load bench is present (``--baseline``), its closest client
  level is used as the reference p99 instead.

* **executor**: a :class:`ParallelExecutor` batch is SIGKILLed once via
  the ``worker.chunk`` seam; the respawned pool must return answers
  bit-identical to the fault-free parallel run, with recovery wall time
  under ``--recovery-factor`` x the clean run (floored at 5 s).

Writes ``BENCH_fault_recovery.json``:

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py \\
        --report BENCH_fault_recovery.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faults, obs
from repro.api.remote import RemoteClient
from repro.api.retry import RetryPolicy
from repro.bench.reporting import write_json_report
from repro.engine.executor import ParallelExecutor, SerialExecutor
from repro.engine.session import Session
from repro.engine.spec import UpdateSpec
from repro.faults.chaos import (
    _chaos_objects,
    _fresh_dataset,
    _read_spec,
    _run_batch,
)
from repro.faults.plan import FaultPlan, FaultRule
from repro.serve.protocol import ServeConfig
from repro.serve.server import ReproServer
from repro.uncertain.object import UncertainObject

_DIMS = 2


def _disconnect_plan(seed: int, drops: int) -> FaultPlan:
    """Connection drops spread over the run plus one stream disconnect."""
    rng = random.Random(seed)
    rules = [
        FaultRule(
            seam=("socket.read", "socket.write")[i % 2],
            hit=rng.randint(2, 40),
            action="drop",
        )
        for i in range(drops)
    ]
    rules.append(FaultRule(seam="stream.frame", hit=2, action="disconnect"))
    deduped = {(r.seam, r.hit): r for r in rules}
    return FaultPlan(seed=seed, rules=tuple(deduped.values()))


async def _reader(
    port: int, requests: int, seed: int, latencies: List[float],
    failures: List[str],
) -> None:
    rng = random.Random(seed)
    policy = RetryPolicy(max_attempts=8, base_s=0.01, cap_s=0.2, seed=seed)
    async with await RemoteClient.connect(port=port, retry=policy) as client:
        for _ in range(requests):
            spec = _read_spec(rng, _DIMS)
            started = time.perf_counter()
            envelope, _version = await client.query_envelope(spec)
            latencies.append(time.perf_counter() - started)
            if not envelope.ok:
                failures.append(f"read: {envelope.error.code}")


async def _writer(
    port: int, requests: int, seed: int, latencies: List[float],
    failures: List[str], tag: str,
) -> int:
    rng = random.Random(seed)
    policy = RetryPolicy(max_attempts=8, base_s=0.01, cap_s=0.2, seed=seed)
    written = 0
    async with await RemoteClient.connect(port=port, retry=policy) as client:
        for i in range(requests):
            obj = UncertainObject(
                f"{tag}-{i}",
                [[rng.uniform(0.0, 10.0) for _ in range(_DIMS)]],
            )
            spec = UpdateSpec(inserts=(obj,))
            started = time.perf_counter()
            envelope = await client.query(spec, idem=f"{tag}-{i}")
            latencies.append(time.perf_counter() - started)
            if envelope.ok:
                written += 1
            else:
                failures.append(f"write: {envelope.error.code}")
    return written


async def _batcher(
    port: int, specs_n: int, seed: int, latencies: List[float],
    failures: List[str],
) -> None:
    """One streamed batch — the workload's stream.frame seam exposure."""
    rng = random.Random(seed)
    policy = RetryPolicy(max_attempts=8, base_s=0.01, cap_s=0.2, seed=seed)
    client = await RemoteClient.connect(port=port, retry=policy)
    try:
        specs = [_read_spec(rng, _DIMS) for _ in range(specs_n)]
        started = time.perf_counter()
        results = await _run_batch(client, specs, policy)
        per_spec = (time.perf_counter() - started) / max(len(results), 1)
        for envelope, _version in results:
            latencies.append(per_spec)
            if not envelope.ok:
                failures.append(f"batch: {envelope.error.code}")
    finally:
        await client.close()


async def _serve_phase(
    clients: int, requests: int, seed: int, plan: Optional[FaultPlan]
) -> Dict:
    objects = _chaos_objects(random.Random(seed), 24, _DIMS)
    config = ServeConfig(
        port=0, threads=2, cache_size=128, fault_plan=plan,
        drain_timeout_s=3.0,
    )
    latencies: List[float] = []
    failures: List[str] = []
    batch_specs = 3
    expected = clients * requests + batch_specs
    async with ReproServer({"default": _fresh_dataset(objects)}, config) as srv:
        started = time.perf_counter()
        results = await asyncio.gather(
            _writer(
                srv.port, requests, seed + 1, latencies, failures, "bench"
            ),
            _batcher(srv.port, batch_specs, seed + 5, latencies, failures),
            *[
                _reader(srv.port, requests, seed + 10 + i, latencies, failures)
                for i in range(clients - 1)
            ],
        )
        wall = time.perf_counter() - started
        written = results[0]
        async with await RemoteClient.connect(port=srv.port) as probe:
            final_objects = (
                await probe.stats()
            )["datasets"]["default"]["objects"]
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index] * 1e3

    return {
        "requests": expected,
        "responses": len(latencies),
        "lost": expected - len(latencies),
        "error_envelopes": failures[:5],
        "errors": len(failures),
        "writes_acked": written,
        "objects_expected": len(objects) + written,
        "objects_final": final_objects,
        "wall_s": round(wall, 3),
        "p50_ms": round(quantile(0.50), 3),
        "p99_ms": round(quantile(0.99), 3),
    }


def _executor_phase(seed: int) -> Dict:
    session = Session(
        _fresh_dataset(_chaos_objects(random.Random(seed), 48, _DIMS))
    )
    rng = random.Random(seed + 1)
    specs = [_read_spec(rng, _DIMS) for _ in range(12)]
    serial = session.execute_batch(specs, SerialExecutor())

    started = time.perf_counter()
    clean = session.execute_batch(
        specs, ParallelExecutor(workers=2, chunk_size=2)
    )
    clean_wall = time.perf_counter() - started

    plan = FaultPlan(seed=seed, rules=(
        FaultRule(seam="worker.chunk", hit=1, action="kill"),
    ))
    respawns = obs.registry().counter("fault.worker_respawns")
    before = respawns.value
    with faults.installed(plan):
        started = time.perf_counter()
        recovered = session.execute_batch(
            specs, ParallelExecutor(workers=2, chunk_size=2)
        )
        faulted_wall = time.perf_counter() - started

    identical = all(
        a.error is None and b.error is None and c.error is None
        and a.value == b.value == c.value
        for a, b, c in zip(serial, clean, recovered)
    )
    return {
        "specs": len(specs),
        "respawns": respawns.value - before,
        "bit_identical": identical,
        "clean_wall_s": round(clean_wall, 3),
        "faulted_wall_s": round(faulted_wall, 3),
    }


def _baseline_p99(path: str, clients: int) -> Optional[float]:
    baseline = Path(path)
    if not baseline.is_file():
        return None
    payload = json.loads(baseline.read_text())
    rows = [r for r in payload.get("rows", []) if "p99_ms" in r]
    if not rows:
        return None
    best = min(rows, key=lambda r: abs(r.get("clients", 0) - clients))
    return float(best["p99_ms"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client and phase")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--drops", type=int, default=6,
                        help="injected connection drops in the faulted run")
    parser.add_argument("--p99-factor", type=float, default=10.0)
    parser.add_argument("--p99-floor-ms", type=float, default=250.0)
    parser.add_argument("--recovery-factor", type=float, default=25.0)
    parser.add_argument("--baseline", default="BENCH_serve_load.json",
                        help="optional load-bench report for the reference p99")
    parser.add_argument("--report", default="BENCH_fault_recovery.json")
    args = parser.parse_args(argv)

    clean = asyncio.run(
        _serve_phase(args.clients, args.requests, args.seed, None)
    )
    faulted = asyncio.run(
        _serve_phase(
            args.clients, args.requests, args.seed,
            _disconnect_plan(args.seed, args.drops),
        )
    )
    executor = _executor_phase(args.seed)

    reference = _baseline_p99(args.baseline, args.clients) or clean["p99_ms"]
    p99_budget = max(args.p99_factor * reference, args.p99_floor_ms)
    recovery_budget = max(
        args.recovery_factor * executor["clean_wall_s"], 5.0
    )

    problems: List[str] = []
    for label, phase in (("clean", clean), ("faulted", faulted)):
        if phase["lost"]:
            problems.append(f"{label}: {phase['lost']} lost responses")
        if phase["errors"]:
            problems.append(
                f"{label}: {phase['errors']} error envelopes "
                f"{phase['error_envelopes']}"
            )
        if phase["objects_final"] != phase["objects_expected"]:
            problems.append(
                f"{label}: {phase['objects_final']} objects, expected "
                f"{phase['objects_expected']} (write not exactly-once)"
            )
    if faulted["p99_ms"] > p99_budget:
        problems.append(
            f"faulted p99 {faulted['p99_ms']}ms exceeds budget "
            f"{p99_budget:.1f}ms ({args.p99_factor}x reference "
            f"{reference}ms)"
        )
    if not executor["bit_identical"]:
        problems.append("executor recovery answers diverge from serial")
    if executor["respawns"] != 1:
        problems.append(
            f"expected exactly 1 pool respawn, saw {executor['respawns']}"
        )
    if executor["faulted_wall_s"] > recovery_budget:
        problems.append(
            f"recovery took {executor['faulted_wall_s']}s, budget "
            f"{recovery_budget:.1f}s"
        )

    rows = [
        {"phase": "serve_clean", **clean},
        {"phase": "serve_faulted", **faulted},
        {"phase": "executor", **executor},
    ]
    write_json_report(
        args.report,
        "fault_recovery",
        rows,
        meta={
            "clients": args.clients,
            "requests": args.requests,
            "seed": args.seed,
            "drops": args.drops,
            "reference_p99_ms": reference,
            "p99_budget_ms": round(p99_budget, 3),
            "ok": not problems,
            "problems": problems,
        },
    )

    print(
        f"fault_recovery: clean p99={clean['p99_ms']}ms, "
        f"faulted p99={faulted['p99_ms']}ms (budget {p99_budget:.1f}ms), "
        f"lost={faulted['lost']}, errors={faulted['errors']}, "
        f"executor respawns={executor['respawns']} "
        f"recovery={executor['faulted_wall_s']}s; report -> {args.report}"
    )
    for problem in problems:
        print(f"  FAIL: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
