"""Table 4 — the CarDB case study.

The paper runs CR on CarDB with q = (11580, 49000) and the non-answer car
an = (7510, 10180), listing the cause cars — all better than q w.r.t. an in
both price and mileage.  We run the same query on the CarDB substitute and
print the cause table, verifying the paper's dominance sanity check.
"""

import numpy as np

from conftest import SCALE, register_report
from repro.core.cr import compute_causality_certain
from repro.datasets.cardb import (
    DEFAULT_QUERY,
    NON_ANSWER_CAR,
    NON_ANSWER_ID,
    generate_cardb,
)
from repro.geometry.dominance import dynamically_dominates

N_CARS = 45_311 if SCALE == "paper" else 6_000


def test_table4_cardb_case_study(once):
    dataset = generate_cardb(n=N_CARS)
    result = once(
        lambda: compute_causality_certain(dataset, NON_ANSWER_ID, DEFAULT_QUERY)
    )

    assert len(result) >= 10  # the pinned Table-4-style causes at minimum
    an = np.array(NON_ANSWER_CAR)
    rows = []
    for oid in result.cause_ids():
        point = dataset.point_of(oid)
        # Paper's sanity check: every cause is better than q w.r.t. an.
        assert dynamically_dominates(point, DEFAULT_QUERY, an)
        rows.append(
            {
                "cause id": oid,
                "price": round(float(point[0])),
                "mileage": round(float(point[1])),
                "responsibility": f"1/{len(result)}",
            }
        )
    register_report(
        f"Table 4: causes for non-reverse-skyline car {NON_ANSWER_CAR} "
        f"(CarDB-like, n={N_CARS})",
        rows,
    )
