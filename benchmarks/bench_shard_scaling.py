"""Filter-phase scaling of the STR-sharded index across shard counts.

Sweeps n in {10^4, 10^5} certain objects by k in {1, 2, 4, 8} STR shards
and times the batched many-window filter call
(:meth:`~repro.index.sharded.ShardedIndex.range_search_many`) every
index-guided algorithm funnels through.  Two window families bracket the
workload space:

* **local** — small boxes (~2% of the domain) centred on sampled data
  points: the spatially local shape where per-shard root-MBR pruning
  shrinks the packed broadcast from ~``n x W`` to ~``sum_s n_s x W_s``
  and multi-shard execution wins outright (this is the asserted bar);
* **dominance** — Lemma-2 ``dominance_rectangle`` windows around a
  central query point: wide rectangles crossing many shards, the
  conservative shape where sharding must merely stay close to par.

Three properties are asserted (single-process, one core — the speedup is
*algorithmic* pruning, not parallelism):

* **multi-shard speedup** — local windows at the largest n must run at
  least ``--min-speedup`` (default 2x) faster at k=8 than at k=1;
* **k=1 overhead** — a 1-sharded dataset must stay within
  ``--max-overhead`` (default 10%) of the plain unsharded index on every
  workload (the facade must be free when it degenerates);
* **bit parity** — per-window hit sets identical to the unsharded index
  for every (n, k, family) cell, and a :class:`ShardScatter` pool run at
  the small n must reproduce them again through worker processes.

Emits a machine-readable ``BENCH_shard_scaling.json`` (``--json``) so CI
records the scaling trajectory.  Runs standalone:

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --quick
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.bench.reporting import format_table, write_json_report
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.engine import ShardScatter
from repro.geometry.dominance import dominance_rectangle
from repro.geometry.rectangle import Rect
from repro.uncertain import shard_dataset

DOMAIN = 10_000.0
SHARD_COUNTS = (1, 2, 4, 8)


def _local_windows(points: np.ndarray, count: int, rng) -> List[Rect]:
    """Small boxes (~2% of the domain) centred on sampled data points."""
    extent = 0.02 * DOMAIN
    picks = rng.choice(len(points), size=count, replace=False)
    out = []
    for center in points[picks]:
        lo = center - 0.5 * extent
        out.append(Rect(lo, lo + extent))
    return out


def _dominance_windows(points: np.ndarray, count: int, rng) -> List[Rect]:
    """Lemma-2 dominance rectangles of sampled points w.r.t. one query."""
    q = np.full(points.shape[1], 0.5 * DOMAIN)
    picks = rng.choice(len(points), size=count, replace=False)
    return [dominance_rectangle(points[i], q) for i in picks]


def _hit_ids(per_window: Sequence[Sequence]) -> List[List]:
    return [sorted(hits, key=repr) for hits in per_window]


def _paired_overhead(
    plain, facade, windows: List[Rect], pairs: int = 8
) -> float:
    """Median of back-to-back ``facade/plain`` timing ratios.

    The asserted k=1 overhead compares two structurally identical trees,
    so the true ratio is ~1 and single-call jitter on a shared box
    (+-15%) dwarfs it.  Timing the two sides adjacently and taking the
    per-pair ratio cancels slow machine-load drift; the median discards
    the outlier pairs a preempted call produces.
    """
    ratios = []
    for _ in range(pairs):
        started = time.perf_counter()
        plain.range_search_many(windows)
        plain_s = time.perf_counter() - started
        started = time.perf_counter()
        facade.range_search_many(windows)
        ratios.append((time.perf_counter() - started) / max(plain_s, 1e-12))
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


def _timed_round_robin(
    indexes: Dict, windows: List[Rect], repeats: int
) -> Dict:
    """Best-of-*repeats* per index, interleaved round-robin.

    Interleaving (plain, k=1, k=2, ... per sweep instead of all repeats
    of one config back to back) keeps slow machine-load drift from
    landing entirely on one config and skewing the overhead ratios.
    """
    out = {
        key: {"seconds": float("inf"), "hits": None} for key in indexes
    }
    for _ in range(repeats):
        for key, index in indexes.items():
            started = time.perf_counter()
            hits = index.range_search_many(windows)
            elapsed = time.perf_counter() - started
            if elapsed < out[key]["seconds"]:
                out[key]["seconds"] = elapsed
            out[key]["hits"] = _hit_ids(hits)
    return out


def bench(
    sizes: Sequence[int] = (10_000, 100_000),
    windows: int = 512,
    repeats: int = 3,
    min_speedup: float = 2.0,
    max_overhead: float = 0.10,
    seed: int = 23,
    json_path: str = "",
) -> List[Dict]:
    """One full sweep; raises AssertionError on any violated bar.

    When *json_path* is set the rows are recorded **before** the bars are
    checked, so a regressing run still leaves its numbers behind.
    """
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    overhead: Dict[str, float] = {}
    families = {"local": _local_windows, "dominance": _dominance_windows}

    for n in sizes:
        dataset = generate_certain_dataset(n, 2, seed=seed)
        w = {
            name: build(dataset.points, windows, rng)
            for name, build in families.items()
        }
        indexes = {"plain": dataset.packed}
        for k in SHARD_COUNTS:
            sharded = shard_dataset(
                generate_certain_dataset(n, 2, seed=seed), k
            )
            indexes[k] = sharded.spatial_index(True)
        for family, window_list in w.items():
            timed = _timed_round_robin(indexes, window_list, repeats)
            plain_s = timed["plain"]["seconds"]
            k1_s = timed[1]["seconds"]
            for k in SHARD_COUNTS:
                assert timed[k]["hits"] == timed["plain"]["hits"], (
                    f"hit sets diverge from the unsharded index at "
                    f"n={n} k={k} family={family}"
                )
                seconds = timed[k]["seconds"]
                rows.append(
                    {
                        "objects": n,
                        "shards": k,
                        "family": family,
                        "windows": len(window_list),
                        "filter_ms": round(seconds * 1e3, 3),
                        "vs_plain": round(seconds / max(plain_s, 1e-12), 3),
                        "vs_k1": round(seconds / max(k1_s, 1e-12), 3),
                    }
                )
        if n == max(sizes):
            # dedicated drift-cancelling measurement for the overhead bar
            # (the sweep's vs_plain column stays informational)
            overhead = {
                family: round(
                    _paired_overhead(
                        indexes["plain"],
                        indexes[1],
                        window_list[: max(1, windows // 2)],
                        pairs=7,
                    ),
                    3,
                )
                for family, window_list in w.items()
            }

    # scatter-pool parity at the small scale (correctness, never speed:
    # worker fan-out on a single core only adds IPC)
    small = min(sizes)
    sharded = shard_dataset(generate_certain_dataset(small, 2, seed=seed), 4)
    local = _local_windows(sharded.points, min(windows, 128), rng)
    expected = _hit_ids(sharded.spatial_index(True).range_search_many(local))
    with ShardScatter(sharded, workers=2, min_windows=1):
        scattered = _hit_ids(
            sharded.spatial_index(True).range_search_many(local)
        )
    assert scattered == expected, "ShardScatter hit sets diverge"

    if json_path:
        write_json_report(
            json_path,
            "shard_scaling",
            rows=rows,
            meta={
                "seed": seed,
                "repeats": repeats,
                "min_speedup": min_speedup,
                "max_overhead": max_overhead,
                "k1_overhead": overhead,
                "workload": "sharded-many-window-filter",
            },
            workload={
                "n": max(sizes),
                "d": 2,
                "s_max": 1,
                "shards": max(SHARD_COUNTS),
            },
        )

    big = max(sizes)
    best = next(
        r for r in rows
        if r["objects"] == big and r["shards"] == 8 and r["family"] == "local"
    )
    speedup = 1.0 / best["vs_k1"]
    assert speedup >= min_speedup, (
        f"k=8 local filter only {speedup:.2f}x faster than k=1 at n={big} "
        f"(bar: {min_speedup:.1f}x)"
    )
    for family, ratio in overhead.items():
        assert ratio <= 1.0 + max_overhead, (
            f"k=1 sharded facade {ratio:.2f}x the plain index at n={big} "
            f"family={family} (bar: {1.0 + max_overhead:.2f}x, paired median)"
        )
    return rows


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep (10^3/10^4) without the speedup bar",
    )
    parser.add_argument("--windows", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--max-overhead", type=float, default=0.10)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--json",
        default="BENCH_shard_scaling.json",
        help="machine-readable report path ('' disables)",
    )
    args = parser.parse_args(argv)
    rows = bench(
        sizes=(1_000, 10_000) if args.quick else (10_000, 100_000),
        windows=args.windows,
        repeats=args.repeats,
        # quick mode is a smoke run: keep the parity asserts, drop the
        # timing bars (sub-ms cells are noise-dominated)
        min_speedup=0.0 if args.quick else args.min_speedup,
        max_overhead=10.0 if args.quick else args.max_overhead,
        seed=args.seed,
        json_path=args.json,
    )
    print(format_table(rows))
    print(
        "bench_shard_scaling: bit-identical hit sets across all cells; "
        "scatter-pool parity verified"
    )


if __name__ == "__main__":
    main()
