"""Sort-Tile-Recursive (STR) bulk loading.

Building an R-tree by repeated insertion costs :math:`O(n \\log n)` node
splits in pure Python, which dominates benchmark setup time at paper-scale
cardinalities.  STR packs a near-optimal tree bottom-up in one sort per
level and is the default construction path for datasets.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

from repro.geometry.point import PointLike
from repro.geometry.rectangle import Rect
from repro.index.node import Node
from repro.index.rtree import DEFAULT_PAGE_SIZE, RTree


def bulk_load(
    items: Sequence[Tuple[Rect | PointLike, Any]],
    dims: int,
    max_entries: int | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> RTree:
    """Build an :class:`~repro.index.rtree.RTree` from ``(rect, payload)`` pairs.

    Point payloads may be passed directly; they are boxed into degenerate
    rectangles.  The resulting tree satisfies the same invariants as an
    insertion-built tree (checked by ``RTree.validate`` in tests).
    """
    tree = RTree(dims, max_entries=max_entries, page_size=page_size)
    if not items:
        return tree

    boxed: List[Tuple[Rect, Any]] = []
    for rect, payload in items:
        if not isinstance(rect, Rect):
            rect = Rect.from_point(rect)
        boxed.append((rect, payload))

    leaves = _pack_leaves(boxed, dims, tree.max_entries)
    level: List[Node] = leaves
    while len(level) > 1:
        level = _pack_internal(level, dims, tree.max_entries)
    tree.root = level[0]
    tree.size = len(boxed)
    return tree


def _pack_leaves(
    items: List[Tuple[Rect, Any]], dims: int, capacity: int
) -> List[Node]:
    groups = _str_tile(items, dims, capacity, key=lambda item: item[0].center)
    leaves = []
    for group in groups:
        node = Node(is_leaf=True)
        node.entries = list(group)
        node.recompute_mbr()
        leaves.append(node)
    return leaves


def _pack_internal(children: List[Node], dims: int, capacity: int) -> List[Node]:
    groups = _str_tile(children, dims, capacity, key=lambda node: node.mbr.center)
    parents = []
    for group in groups:
        node = Node(is_leaf=False)
        for child in group:
            node.add_child(child)
        node.recompute_mbr()
        parents.append(node)
    return parents


def _str_tile(items: List, dims: int, capacity: int, key) -> List[List]:
    """Recursively sort-tile *items* into groups of at most *capacity*.

    Classic STR: sort on the first dimension, cut into vertical slabs of
    equal leaf count, then recurse on the remaining dimensions within each
    slab.
    """
    n = len(items)
    if n <= capacity:
        return [list(items)]

    def tile(chunk: List, axis: int) -> List[List]:
        if len(chunk) <= capacity:
            return [list(chunk)]
        if axis >= dims - 1:
            ordered = sorted(chunk, key=lambda item: key(item)[axis])
            return [
                ordered[i : i + capacity] for i in range(0, len(ordered), capacity)
            ]
        pages_here = math.ceil(len(chunk) / capacity)
        slabs = math.ceil(pages_here ** (1.0 / (dims - axis)))
        slab_size = math.ceil(len(chunk) / slabs)
        ordered = sorted(chunk, key=lambda item: key(item)[axis])
        groups: List[List] = []
        for i in range(0, len(ordered), slab_size):
            groups.extend(tile(ordered[i : i + slab_size], axis + 1))
        return groups

    return tile(items, 0)
