"""Sort-Tile-Recursive (STR) bulk loading.

Building an R-tree by repeated insertion costs :math:`O(n \\log n)` node
splits in pure Python, which dominates benchmark setup time at paper-scale
cardinalities.  STR packs a near-optimal tree bottom-up in one sort per
level and is the default construction path for datasets.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.geometry.point import PointLike
from repro.geometry.rectangle import Rect
from repro.index.node import Node
from repro.index.rtree import DEFAULT_PAGE_SIZE, RTree


def bulk_load(
    items: Sequence[Tuple[Rect | PointLike, Any]],
    dims: int,
    max_entries: int | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> RTree:
    """Build an :class:`~repro.index.rtree.RTree` from ``(rect, payload)`` pairs.

    Point payloads may be passed directly; they are boxed into degenerate
    rectangles.  The resulting tree satisfies the same invariants as an
    insertion-built tree (checked by ``RTree.validate`` in tests).
    """
    tree = RTree(dims, max_entries=max_entries, page_size=page_size)
    if not items:
        return tree

    boxed: List[Tuple[Rect, Any]] = []
    for rect, payload in items:
        if not isinstance(rect, Rect):
            rect = Rect.from_point(rect)
        boxed.append((rect, payload))

    leaves = _pack_leaves(boxed, dims, tree.max_entries)
    level: List[Node] = leaves
    while len(level) > 1:
        level = _pack_internal(level, dims, tree.max_entries)
    tree.root = level[0]
    tree.size = len(boxed)
    return tree


def _pack_leaves(
    items: List[Tuple[Rect, Any]], dims: int, capacity: int
) -> List[Node]:
    groups = _str_tile(items, dims, capacity, key=lambda item: item[0].center)
    leaves = []
    for group in groups:
        node = Node(is_leaf=True)
        node.entries = list(group)
        node.recompute_mbr()
        leaves.append(node)
    return leaves


def _pack_internal(children: List[Node], dims: int, capacity: int) -> List[Node]:
    groups = _str_tile(children, dims, capacity, key=lambda node: node.mbr.center)
    parents = []
    for group in groups:
        node = Node(is_leaf=False)
        for child in group:
            node.add_child(child)
        node.recompute_mbr()
        parents.append(node)
    return parents


def str_partition(centers: np.ndarray, groups: int) -> List[np.ndarray]:
    """Split row indices of *centers* into exactly *groups* STR tiles.

    The same sort-tile scheme :func:`bulk_load` packs leaves with, but
    driven by a *group count* instead of a node capacity: sort on the
    first dimension, cut into slabs, distribute the remaining group
    budget over the slabs, recurse on the next dimension.  Used by
    dataset sharding, where the number of partitions (not their size) is
    the contract.

    Returns ``groups`` index arrays (ascending within each group, so a
    partition of a dataset keeps shard-internal dataset order).  Every
    row lands in exactly one group and — because ``groups`` is clamped to
    ``len(centers)`` by the caller's contract — no group is empty.  Fully
    deterministic: stable sorts on coordinates, ties broken by row index.
    """
    centers = np.asarray(centers, dtype=np.float64)
    n, dims = centers.shape
    groups = max(1, min(int(groups), n))

    def split(indices: np.ndarray, axis: int, k: int) -> List[np.ndarray]:
        if k <= 1 or indices.size == 0:
            return [indices]
        order = indices[np.argsort(centers[indices, axis], kind="stable")]
        if axis >= dims - 1:
            return list(np.array_split(order, k))
        slabs = min(k, math.ceil(k ** (1.0 / (dims - axis))))
        slab_chunks = np.array_split(order, slabs)
        base, extra = divmod(k, len(slab_chunks))
        out: List[np.ndarray] = []
        for i, chunk in enumerate(slab_chunks):
            out.extend(split(chunk, axis + 1, base + (1 if i < extra else 0)))
        return out

    parts = split(np.arange(n, dtype=np.intp), 0, groups)
    if any(part.size == 0 for part in parts):
        # Slab/budget rounding left a group starved (possible when groups
        # is close to n): fall back to a single-axis equal cut, which can
        # never produce an empty group for groups <= n.
        order = np.argsort(centers[:, 0], kind="stable").astype(np.intp)
        parts = list(np.array_split(order, groups))
    return [np.sort(part) for part in parts]


def _str_tile(items: List, dims: int, capacity: int, key) -> List[List]:
    """Recursively sort-tile *items* into groups of at most *capacity*.

    Classic STR: sort on the first dimension, cut into vertical slabs of
    equal leaf count, then recurse on the remaining dimensions within each
    slab.
    """
    n = len(items)
    if n <= capacity:
        return [list(items)]

    def tile(chunk: List, axis: int) -> List[List]:
        if len(chunk) <= capacity:
            return [list(chunk)]
        if axis >= dims - 1:
            ordered = sorted(chunk, key=lambda item: key(item)[axis])
            return [
                ordered[i : i + capacity] for i in range(0, len(ordered), capacity)
            ]
        pages_here = math.ceil(len(chunk) / capacity)
        slabs = math.ceil(pages_here ** (1.0 / (dims - axis)))
        slab_size = math.ceil(len(chunk) / slabs)
        ordered = sorted(chunk, key=lambda item: key(item)[axis])
        groups: List[List] = []
        for i in range(0, len(ordered), slab_size):
            groups.extend(tile(ordered[i : i + slab_size], axis + 1))
        return groups

    return tile(items, 0)
