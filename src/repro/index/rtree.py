"""An R-tree with R*-style node splits and access accounting.

This is the disk-resident index the paper assumes over every dataset
(page size 4,096 bytes, Sec. 5.1).  The tree is held in memory, but the
fanout is derived from the configured page size exactly as a paged
implementation would, and every node visited by a query increments the
node-access counters in :class:`~repro.index.stats.AccessStats` — the
paper's I/O metric.

Splits follow the R*-tree heuristics (axis chosen by minimum margin sum,
distribution chosen by minimum overlap, ties by area); forced reinsertion
is intentionally omitted — it only affects constants, not the access-count
trends the reproduction compares.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import IndexError_
from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect
from repro.index.node import LeafEntry, Node
from repro.index.stats import AccessStats

DEFAULT_PAGE_SIZE = 4096
_POINTER_BYTES = 8
_COORD_BYTES = 8


def fanout_for_page(page_size: int, dims: int) -> int:
    """Entries per node for a given page size (two corners + one pointer each)."""
    entry_bytes = 2 * dims * _COORD_BYTES + _POINTER_BYTES
    return max(4, page_size // entry_bytes)


class RTree:
    """R-tree over ``(Rect, payload)`` entries.

    Parameters
    ----------
    dims:
        Dimensionality of indexed rectangles.
    max_entries:
        Node capacity; defaults to the capacity implied by *page_size*.
    page_size:
        Simulated disk page size in bytes (paper default 4,096).
    min_fill_ratio:
        Minimum node fill as a fraction of capacity (R* default 0.4).
    """

    def __init__(
        self,
        dims: int,
        max_entries: Optional[int] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_fill_ratio: float = 0.4,
    ):
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.dims = dims
        self.page_size = page_size
        self.max_entries = max_entries or fanout_for_page(page_size, dims)
        if self.max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.min_entries = max(1, int(self.max_entries * min_fill_ratio))
        self.root = Node(is_leaf=True)
        self.size = 0
        self.stats = AccessStats()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, rect: Rect | PointLike, payload: Any) -> None:
        """Insert one entry; *rect* may be a point, which is boxed degenerately."""
        if not isinstance(rect, Rect):
            rect = Rect.from_point(as_point(rect, dims=self.dims))
        if rect.dims != self.dims:
            raise IndexError_(f"entry has {rect.dims} dims, tree has {self.dims}")
        leaf = self._choose_leaf(self.root, rect)
        leaf.add_leaf_entry(rect, payload)
        self._propagate_mbr(leaf, rect)
        if len(leaf) > self.max_entries:
            self._split_upward(leaf)
        self.size += 1

    def insert_many(self, items: Iterable[Tuple[Rect | PointLike, Any]]) -> None:
        """Insert a batch of entries.

        On an **empty** tree the batch is STR bulk-loaded (one sort per
        level instead of O(n log n) insertion splits; the final page per
        level may be legitimately underfull, as with any bulk load).  A
        non-empty tree keeps the incremental one-at-a-time path so the
        existing structure is preserved.
        """
        items = list(items)
        if not items:
            return
        if self.size == 0:
            from repro.index.bulk import bulk_load

            built = bulk_load(
                items,
                dims=self.dims,
                max_entries=self.max_entries,
                page_size=self.page_size,
            )
            self.root = built.root
            self.size = built.size
            return
        for rect, payload in items:
            self.insert(rect, payload)

    def delete(self, rect: Rect | PointLike, payload: Any) -> bool:
        """Remove one entry matching ``(rect, payload)``.

        Returns ``True`` when an entry was found and removed.  Underfull
        leaves are condensed by reinserting their surviving entries
        (Guttman's CondenseTree), and a root with a single child is
        collapsed, so the usual structural invariants keep holding.
        """
        if not isinstance(rect, Rect):
            rect = Rect.from_point(as_point(rect, dims=self.dims))
        leaf = self._find_leaf(self.root, rect, payload)
        if leaf is None:
            return False
        leaf.entries.remove((rect, payload))
        self.size -= 1
        self._condense(leaf)
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
            self.root.parent = None
        if not self.root.is_leaf and not self.root.children:
            self.root = Node(is_leaf=True)
        return True

    def _find_leaf(self, node: Node, rect: Rect, payload: Any) -> Optional[Node]:
        if node.is_leaf:
            return node if (rect, payload) in node.entries else None
        for child in node.children:
            if child.mbr is not None and child.mbr.contains_rect(rect):
                found = self._find_leaf(child, rect, payload)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> None:
        orphans: List[LeafEntry] = []
        current: Optional[Node] = node
        while current is not None and current.parent is not None:
            parent = current.parent
            # Leaves may shrink to min_entries; internal nodes additionally
            # need two children to justify their level.
            minimum = self.min_entries if current.is_leaf else max(
                self.min_entries, 2
            )
            if len(current) < minimum:
                parent.children.remove(current)
                orphans.extend(self._collect_entries(current))
            else:
                current.recompute_mbr()
            parent.recompute_mbr()
            current = parent
        self.root.recompute_mbr()
        if self.root.is_leaf and not self.root.entries:
            self.root.mbr = None
        self.size -= len(orphans)  # insert() re-increments per reinsertion
        for orphan_rect, orphan_payload in orphans:
            self.insert(orphan_rect, orphan_payload)

    def _collect_entries(self, node: Node) -> List[LeafEntry]:
        out: List[LeafEntry] = []
        stack = [node]
        while stack:
            item = stack.pop()
            if item.is_leaf:
                out.extend(item.entries)
            else:
                stack.extend(item.children)
        return out

    def _choose_leaf(self, node: Node, rect: Rect) -> Node:
        while not node.is_leaf:
            node = min(
                node.children,
                key=lambda child: (
                    child.mbr.enlargement(rect) if child.mbr else float("inf"),
                    child.mbr.area() if child.mbr else float("inf"),
                ),
            )
        return node

    def _propagate_mbr(self, node: Node, rect: Rect) -> None:
        current: Optional[Node] = node
        while current is not None:
            current.mbr = rect if current.mbr is None else current.mbr.union(rect)
            current = current.parent

    def _split_upward(self, node: Node) -> None:
        while node is not None and len(node) > self.max_entries:
            sibling = self._split_node(node)
            parent = node.parent
            if parent is None:
                new_root = Node(is_leaf=False)
                new_root.add_child(node)
                new_root.add_child(sibling)
                self.root = new_root
                return
            parent.add_child(sibling)
            parent.recompute_mbr()
            node = parent

    def _split_node(self, node: Node) -> Node:
        """R*-style split; *node* keeps the first group, a new sibling gets the rest."""
        if node.is_leaf:
            items: Sequence = list(node.entries)
            rect_of = lambda item: item[0]  # noqa: E731 - tiny local accessor
        else:
            items = list(node.children)
            rect_of = lambda item: item.mbr  # noqa: E731

        first, second = _rstar_partition(
            items, rect_of, self.min_entries, self.max_entries
        )

        sibling = Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = list(first)
            sibling.entries = list(second)
        else:
            node.children = list(first)
            sibling.children = list(second)
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(self, window: Rect) -> List[Any]:
        """Payloads of all entries whose rectangle intersects *window*."""
        return [payload for _rect, payload in self.range_entries(window)]

    def range_entries(self, window: Rect) -> List[LeafEntry]:
        """``(rect, payload)`` pairs of all entries intersecting *window*."""
        self.stats.record_query()
        out: List[LeafEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.record_node(node.is_leaf)
            if node.is_leaf:
                out.extend(
                    (rect, payload)
                    for rect, payload in node.entries
                    if window.intersects(rect)
                )
            else:
                stack.extend(
                    child
                    for child in node.children
                    if child.mbr is not None and window.intersects(child.mbr)
                )
        return out

    def range_search_any(self, windows: Sequence[Rect]) -> List[Any]:
        """Unique payloads intersecting *any* window, canonically ordered.

        This is the multi-rectangle branch-and-bound scan of Algorithm 1
        (lines 2-8): a node is expanded when its MBR crosses at least one
        rectangle in the list, and it is read once no matter how many
        rectangles it crosses.

        The result is deduplicated and sorted by ``repr`` *inside* the
        kernel, so traversal order can never leak into downstream result
        bits and callers need no per-call ``set()`` — the packed snapshot
        (:class:`~repro.index.packed.PackedRTree`) shares this contract.
        """
        self.stats.record_query()
        out: List[Any] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.record_node(node.is_leaf)
            if node.is_leaf:
                for rect, payload in node.entries:
                    if any(window.intersects(rect) for window in windows):
                        out.append(payload)
            else:
                for child in node.children:
                    if child.mbr is not None and any(
                        window.intersects(child.mbr) for window in windows
                    ):
                        stack.append(child)
        return sorted(dict.fromkeys(out), key=repr)

    def range_search_many(self, windows: Sequence[Rect]) -> List[List[Any]]:
        """Per-window payload lists (the packed kernel's loop reference)."""
        return [self.range_search(window) for window in windows]

    def range_search_any_grouped(
        self, groups: Sequence[Sequence[Rect]]
    ) -> List[List[Any]]:
        """One ``range_search_any`` answer per window group (loop reference)."""
        return [self.range_search_any(group) for group in groups]

    def freeze(self, stats: Optional[AccessStats] = None):
        """Export this tree as an immutable array-backed
        :class:`~repro.index.packed.PackedRTree` snapshot.

        Pass *stats* to share an access counter (defaults to this tree's
        own, so pointer and packed traversals accumulate into one I/O
        metric).
        """
        from repro.index.packed import PackedRTree

        return PackedRTree.from_rtree(self, stats=stats or self.stats)

    def traverse_if(self, predicate: Callable[[Rect], bool]) -> Iterator[LeafEntry]:
        """Generic guided traversal: descend into nodes whose MBR satisfies
        *predicate*, yield leaf entries whose rect satisfies it."""
        self.stats.record_query()
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.record_node(node.is_leaf)
            if node.is_leaf:
                for rect, payload in node.entries:
                    if predicate(rect):
                        yield rect, payload
            else:
                stack.extend(
                    child
                    for child in node.children
                    if child.mbr is not None and predicate(child.mbr)
                )

    def all_payloads(self) -> List[Any]:
        """Every payload in the tree (no access accounting; test helper)."""
        out: List[Any] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(payload for _rect, payload in node.entries)
            else:
                stack.extend(node.children)
        return out

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def validate(self, allow_underfull: bool = False) -> None:
        """Check structural invariants; raises :class:`IndexError_` on violation.

        *allow_underfull* skips the minimum-fill check; STR bulk loading
        legitimately leaves its final page per level underfull.
        """
        leaf_depths = set()
        count = 0
        stack: List[Tuple[Node, int]] = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            if (
                not allow_underfull
                and node is not self.root
                and len(node) < self.min_entries
            ):
                raise IndexError_(f"underfull node at depth {depth}: {node!r}")
            if len(node) > self.max_entries:
                raise IndexError_(f"overfull node at depth {depth}: {node!r}")
            if node.is_leaf:
                leaf_depths.add(depth)
                count += len(node.entries)
                for rect, _payload in node.entries:
                    if node.mbr is None or not node.mbr.contains_rect(rect):
                        raise IndexError_("leaf MBR does not cover an entry")
            else:
                for child in node.children:
                    if child.parent is not node:
                        raise IndexError_("broken parent pointer")
                    if node.mbr is None or not node.mbr.contains_rect(child.mbr):
                        raise IndexError_("internal MBR does not cover a child")
                    stack.append((child, depth + 1))
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at unequal depths: {sorted(leaf_depths)}")
        if count != self.size:
            raise IndexError_(f"size mismatch: counted {count}, recorded {self.size}")


def _rstar_partition(
    items: Sequence,
    rect_of: Callable[[Any], Rect],
    min_entries: int,
    max_entries: int,
) -> Tuple[List, List]:
    """Split *items* into two groups using the R* axis/distribution heuristics."""
    dims = rect_of(items[0]).dims
    best: Optional[Tuple[float, float, List, List]] = None
    for axis in range(dims):
        for lo_first in (True, False):

            def key(item, _axis=axis, _lo_first=lo_first):
                rect = rect_of(item)
                primary = rect.lo[_axis] if _lo_first else rect.hi[_axis]
                secondary = rect.hi[_axis] if _lo_first else rect.lo[_axis]
                return (primary, secondary)

            ordered = sorted(items, key=key)
            rects = [rect_of(item) for item in ordered]
            # prefix[i] bounds rects[:i+1]; suffix[i] bounds rects[i:]
            prefix = list(rects)
            for i in range(1, len(prefix)):
                prefix[i] = prefix[i - 1].union(prefix[i])
            suffix = list(rects)
            for i in range(len(suffix) - 2, -1, -1):
                suffix[i] = suffix[i + 1].union(suffix[i])
            for split_at in range(min_entries, len(ordered) - min_entries + 1):
                mbr1 = prefix[split_at - 1]
                mbr2 = suffix[split_at]
                overlap = mbr1.overlap_area(mbr2)
                area = mbr1.area() + mbr2.area()
                if best is None or (overlap, area) < (best[0], best[1]):
                    best = (overlap, area, ordered[:split_at], ordered[split_at:])
    assert best is not None
    return list(best[2]), list(best[3])
