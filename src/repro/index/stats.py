"""Index access statistics.

The paper's primary efficiency metric is the number of R-tree *node
accesses* (its "I/O" axis).  Every node visited during a tree traversal is
counted once through the tree's :class:`AccessStats` instance; benchmark
harnesses snapshot and difference these counters around each measured call.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class AccessStats:
    """Mutable counters for one R-tree instance."""

    node_accesses: int = 0
    leaf_accesses: int = 0
    queries: int = 0
    _marks: list = field(default_factory=list, repr=False)

    def record_node(self, is_leaf: bool) -> None:
        self.node_accesses += 1
        if is_leaf:
            self.leaf_accesses += 1

    def record_query(self) -> None:
        self.queries += 1

    def reset(self) -> None:
        self.node_accesses = 0
        self.leaf_accesses = 0
        self.queries = 0

    @contextmanager
    def measure(self) -> Iterator["AccessSnapshot"]:
        """Context manager yielding a snapshot that fills in deltas on exit.

        >>> stats = AccessStats()
        >>> with stats.measure() as snap:
        ...     stats.record_node(is_leaf=False)
        >>> snap.node_accesses
        1
        """
        start_nodes = self.node_accesses
        start_leaves = self.leaf_accesses
        start_queries = self.queries
        snapshot = AccessSnapshot()
        try:
            yield snapshot
        finally:
            snapshot.node_accesses = self.node_accesses - start_nodes
            snapshot.leaf_accesses = self.leaf_accesses - start_leaves
            snapshot.queries = self.queries - start_queries


@dataclass
class AccessSnapshot:
    """Deltas observed inside one :meth:`AccessStats.measure` block."""

    node_accesses: int = 0
    leaf_accesses: int = 0
    queries: int = 0
