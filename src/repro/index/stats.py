"""Index access statistics.

The paper's primary efficiency metric is the number of R-tree *node
accesses* (its "I/O" axis).  Every node visited during a tree traversal is
counted once through the tree's :class:`AccessStats` instance; callers
difference :meth:`AccessStats.snapshot` values (or use the
:meth:`AccessStats.measure` context manager) around each measured call
instead of hand-subtracting individual counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class AccessStats:
    """Mutable counters for one R-tree instance."""

    node_accesses: int = 0
    leaf_accesses: int = 0
    queries: int = 0

    def record_node(self, is_leaf: bool) -> None:
        self.node_accesses += 1
        if is_leaf:
            self.leaf_accesses += 1

    def record_query(self) -> None:
        self.queries += 1

    def reset(self) -> None:
        self.node_accesses = 0
        self.leaf_accesses = 0
        self.queries = 0

    def snapshot(self) -> "AccessSnapshot":
        """An immutable copy of the current totals.

        Two snapshots subtract into a delta snapshot, so callers measure
        a region as ``after - before`` instead of differencing each
        counter by hand::

            before = stats.snapshot()
            ...traversal...
            delta = stats.snapshot() - before
        """
        return AccessSnapshot(
            node_accesses=self.node_accesses,
            leaf_accesses=self.leaf_accesses,
            queries=self.queries,
        )

    @contextmanager
    def measure(self) -> Iterator["AccessSnapshot"]:
        """Context manager yielding a snapshot that fills in deltas on exit.

        >>> stats = AccessStats()
        >>> with stats.measure() as snap:
        ...     stats.record_node(is_leaf=False)
        >>> snap.node_accesses
        1
        """
        before = self.snapshot()
        snapshot = AccessSnapshot()
        try:
            yield snapshot
        finally:
            delta = self.snapshot() - before
            snapshot.node_accesses = delta.node_accesses
            snapshot.leaf_accesses = delta.leaf_accesses
            snapshot.queries = delta.queries


@dataclass
class AccessSnapshot:
    """Totals at one instant, or deltas between two instants.

    :meth:`AccessStats.measure` yields one filled with deltas; subtracting
    two :meth:`AccessStats.snapshot` values produces the same shape.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    queries: int = 0

    def __sub__(self, earlier: "AccessSnapshot") -> "AccessSnapshot":
        return AccessSnapshot(
            node_accesses=self.node_accesses - earlier.node_accesses,
            leaf_accesses=self.leaf_accesses - earlier.leaf_accesses,
            queries=self.queries - earlier.queries,
        )

    def as_dict(self) -> dict:
        return {
            "node_accesses": self.node_accesses,
            "leaf_accesses": self.leaf_accesses,
            "queries": self.queries,
        }
