"""Scatter-gather facade over per-shard spatial indexes.

A :class:`~repro.uncertain.sharded.ShardedDataset` holds k disjoint
sub-datasets, each with its own :class:`~repro.index.packed.PackedRTree`
(or pointer :class:`~repro.index.rtree.RTree`).  :class:`ShardedIndex`
presents those k indexes as one object answering the same four
``range_search*`` calls every filter call site already issues, so the
Lemma-2 filter, CR's window query, reverse skylines/k-skybands and the
PRSQ relevance prune run per-shard without a single algorithm edit.

Hit-set soundness rides on two facts:

* the shards **partition** the objects (disjoint, exhaustive), so the
  concatenation of per-shard hits is exactly the global hit set with no
  duplicates;
* every call site canonicalizes hit order before it can influence a
  result — ``positions_of`` (sorted dataset positions, the Eq. (2)
  product order), an explicit ``sorted(..., key=repr)``, or an
  order-insensitive reduction (dominator counts, ``any()``) — so the
  shard-major arrival order is invisible downstream.  This is what makes
  every query family bit-identical between k=1 and k>1 (property-tested).

The performance lever is **shard pruning**: a shard only traverses the
windows that intersect its root MBR.  The packed level-frontier kernels
pay (frontier x windows) per broadcast, so cutting the window list per
shard shrinks the dominant leaf-level comparison from ~``n x W`` to
~``sum_s n_s x W_s`` — a genuine algorithmic win even on one core, and
the basis of the multi-shard filter speedup asserted by
``bench_shard_scaling.py``.

Node-access accounting accumulates into the owning dataset's shared
:class:`~repro.index.stats.AccessStats` (every shard index is built over
it), but the *counts* differ from the unsharded tree — k roots, different
tree heights — so sharded parity is defined over results, never over
``node_accesses``.

An optional scatter pool (:class:`~repro.engine.executor.ShardScatter`)
fans the per-shard batched calls out across worker processes holding the
frozen per-shard arrays; results and access deltas merge back here.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.geometry.rectangle import Rect
from repro.index.packed import PackedRTree, _stack_windows


def _root_bounds(index: Any) -> Tuple[np.ndarray, np.ndarray]:
    """The root MBR of a packed or pointer index as ``(lo, hi)`` arrays."""
    if isinstance(index, PackedRTree):
        return index.node_lo[0], index.node_hi[0]
    mbr = index.root.mbr
    if mbr is None:  # empty tree: no window can intersect
        dims = index.dims
        return (
            np.full(dims, np.inf, dtype=np.float64),
            np.full(dims, -np.inf, dtype=np.float64),
        )
    return mbr.lo, mbr.hi


class ShardedIndex:
    """k per-shard indexes behind the single-index ``range_search*`` API.

    Built fresh (cheaply) by ``ShardedDataset.spatial_index`` on every
    call, so it always wraps the shards' *current* packed/pointer
    structures.  ``scatter`` is an optional process pool for the batched
    calls; ``None`` (the default) runs every shard in-process.
    """

    def __init__(self, indexes: Sequence[Any], scatter: Optional[Any] = None):
        if not indexes:
            raise ValueError("ShardedIndex needs at least one shard index")
        self.indexes = list(indexes)
        self.dims = self.indexes[0].dims
        los, his = zip(*(_root_bounds(index) for index in self.indexes))
        self.shard_lo = np.stack(los)
        self.shard_hi = np.stack(his)
        self.scatter = scatter

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.indexes)

    def __repr__(self) -> str:
        return (
            f"<ShardedIndex shards={self.shard_count} dims={self.dims} "
            f"scatter={'on' if self.scatter is not None else 'off'}>"
        )

    # ------------------------------------------------------------------
    def _window_mask(self, wlo: np.ndarray, whi: np.ndarray) -> np.ndarray:
        """``(k, W)`` mask: shard root MBR intersects window w.

        The same closed-interval comparisons ``Rect.intersects`` performs,
        so a pruned (shard, window) pair is exactly one whose traversal
        would have rejected every node below the root anyway — pruning
        can never change a hit set.
        """
        hit = np.logical_and(
            (wlo[np.newaxis, :, :] <= self.shard_hi[:, np.newaxis, :]).all(
                axis=2
            ),
            (self.shard_lo[:, np.newaxis, :] <= whi[np.newaxis, :, :]).all(
                axis=2
            ),
        )
        metrics = obs.registry()
        metrics.counter("shard.filter.window_pairs").inc(int(hit.size))
        metrics.counter("shard.filter.window_pairs_pruned").inc(
            int(hit.size - hit.sum())
        )
        return hit

    # ------------------------------------------------------------------
    # the four range_search* calls every filter call site issues
    # ------------------------------------------------------------------
    def range_search(self, window: Rect) -> List[Any]:
        """Payloads of all entries intersecting *window*.

        Same hit *set* as the unsharded index; order is shard-major (each
        shard's hits in its own deterministic order).  Every caller
        re-sorts or reduces order-insensitively, so the difference cannot
        leak into results.
        """
        wlo, whi = _stack_windows([window], self.dims)
        mask = self._window_mask(wlo, whi)[:, 0]
        hits: List[Any] = []
        for shard, index in enumerate(self.indexes):
            if mask[shard]:
                hits.extend(index.range_search(window))
        return hits

    def range_search_any(self, windows: Sequence[Rect]) -> List[Any]:
        """Unique payloads intersecting *any* window, ``repr``-sorted.

        Honors the single-index contract exactly: shards are disjoint, so
        the union of per-shard unique hits has no duplicates, and one
        final ``repr`` sort restores the canonical order.
        """
        windows = list(windows)
        wlo, whi = _stack_windows(windows, self.dims)
        mask = self._window_mask(wlo, whi)
        hits: List[Any] = []
        for shard, index in enumerate(self.indexes):
            selected = np.flatnonzero(mask[shard])
            if selected.size:
                hits.extend(
                    index.range_search_any([windows[i] for i in selected])
                )
        return sorted(hits, key=repr)

    def range_search_many(self, windows: Sequence[Rect]) -> List[List[Any]]:
        """Per-window payload lists for W windows, scatter-gathered.

        Each shard answers only the windows crossing its root MBR — the
        pruning that makes the batched filter phase ~k times cheaper on
        spatially local workloads.  Per-window hit *sets* match the
        unsharded call; within a window, hits arrive shard-major.
        """
        windows = list(windows)
        results: List[List[Any]] = [[] for _ in windows]
        if not windows:
            return results
        wlo, whi = _stack_windows(windows, self.dims)
        mask = self._window_mask(wlo, whi)
        tasks = []
        for shard in range(self.shard_count):
            selected = np.flatnonzero(mask[shard])
            if selected.size:
                tasks.append((shard, selected))
        scattered = self._dispatch(
            [
                (shard, "many", [windows[i] for i in selected])
                for shard, selected in tasks
            ]
        )
        if scattered is not None:
            for (shard, selected), per_window in zip(tasks, scattered):
                for i, hits in zip(selected, per_window):
                    results[i].extend(hits)
            return results
        for shard, selected in tasks:
            per_window = self.indexes[shard].range_search_many(
                [windows[i] for i in selected]
            )
            for i, hits in zip(selected, per_window):
                results[i].extend(hits)
        return results

    def range_search_any_grouped(
        self, groups: Sequence[Sequence[Rect]]
    ) -> List[List[Any]]:
        """One ``range_search_any`` answer per window group, per-shard.

        A shard sees only the (group, window) pairs whose window crosses
        its root MBR; groups with no surviving window on a shard are
        skipped there entirely.  Per-group unions concatenate across the
        disjoint shards and one ``repr`` sort per group restores the
        canonical order.
        """
        groups = [list(group) for group in groups]
        results: List[List[Any]] = [[] for _ in groups]
        flat = [window for group in groups for window in group]
        if not flat:
            return results
        wlo, whi = _stack_windows(flat, self.dims)
        mask = self._window_mask(wlo, whi)
        starts = np.zeros(len(groups) + 1, dtype=np.intp)
        np.cumsum([len(group) for group in groups], out=starts[1:])
        tasks = []
        for shard in range(self.shard_count):
            sub_groups: List[List[Rect]] = []
            sub_map: List[int] = []
            row = mask[shard]
            for g, group in enumerate(groups):
                selected = np.flatnonzero(row[starts[g] : starts[g + 1]])
                if selected.size:
                    sub_groups.append([group[i] for i in selected])
                    sub_map.append(g)
            if sub_groups:
                tasks.append((shard, sub_groups, sub_map))
        scattered = self._dispatch(
            [(shard, "grouped", sub_groups) for shard, sub_groups, _ in tasks]
        )
        if scattered is not None:
            for (_shard, _sub, sub_map), per_group in zip(tasks, scattered):
                for g, part in zip(sub_map, per_group):
                    results[g].extend(part)
        else:
            for shard, sub_groups, sub_map in tasks:
                per_group = self.indexes[shard].range_search_any_grouped(
                    sub_groups
                )
                for g, part in zip(sub_map, per_group):
                    results[g].extend(part)
        return [sorted(part, key=repr) for part in results]

    # ------------------------------------------------------------------
    def _dispatch(
        self, tasks: List[Tuple[int, str, Any]]
    ) -> Optional[List[Any]]:
        """Fan *tasks* out through the scatter pool, or ``None`` for serial.

        Worker access deltas merge into the corresponding shard index's
        (shared) :class:`AccessStats`, so the paper's I/O metric stays a
        single accumulator whether the filter ran in-process or not.
        """
        scatter = self.scatter
        if scatter is None or not tasks or not scatter.accepts(tasks):
            return None
        obs.registry().counter("shard.filter.scatter_tasks").inc(len(tasks))
        parts = scatter.dispatch(tasks)
        results = []
        for (shard, _kind, _arg), (result, access) in zip(tasks, parts):
            stats = self.indexes[shard].stats
            stats.queries += access[0]
            stats.node_accesses += access[1]
            stats.leaf_accesses += access[2]
            results.append(result)
        return results
