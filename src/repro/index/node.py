"""R-tree node structures.

A node is either a *leaf* holding ``(rect, payload)`` entries or an
*internal* node holding child nodes.  Nodes cache their minimum bounding
rectangle; mutation helpers keep the cache coherent.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.geometry.rectangle import Rect

LeafEntry = Tuple[Rect, Any]


class Node:
    """One R-tree node (leaf or internal)."""

    __slots__ = ("is_leaf", "entries", "children", "mbr", "parent")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[LeafEntry] = []        # populated when leaf
        self.children: List["Node"] = []          # populated when internal
        self.mbr: Optional[Rect] = None
        self.parent: Optional["Node"] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def rects(self) -> List[Rect]:
        """Bounding rectangles of this node's entries/children."""
        if self.is_leaf:
            return [rect for rect, _payload in self.entries]
        return [child.mbr for child in self.children if child.mbr is not None]

    def recompute_mbr(self) -> None:
        rects = self.rects()
        self.mbr = Rect.union_all(rects) if rects else None

    def add_leaf_entry(self, rect: Rect, payload: Any) -> None:
        assert self.is_leaf
        self.entries.append((rect, payload))
        self.mbr = rect if self.mbr is None else self.mbr.union(rect)

    def add_child(self, child: "Node") -> None:
        assert not self.is_leaf
        self.children.append(child)
        child.parent = self
        if child.mbr is not None:
            self.mbr = child.mbr if self.mbr is None else self.mbr.union(child.mbr)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"<Node {kind} fanout={len(self)} mbr={self.mbr}>"
