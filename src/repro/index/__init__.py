"""R-tree indexing with node-access (I/O) accounting."""

from repro.index.bulk import bulk_load, str_partition
from repro.index.knn import k_nearest, nearest
from repro.index.node import Node
from repro.index.packed import PackedRTree
from repro.index.rtree import DEFAULT_PAGE_SIZE, RTree, fanout_for_page
from repro.index.sharded import ShardedIndex
from repro.index.stats import AccessSnapshot, AccessStats

__all__ = [
    "AccessSnapshot",
    "AccessStats",
    "DEFAULT_PAGE_SIZE",
    "Node",
    "PackedRTree",
    "RTree",
    "ShardedIndex",
    "bulk_load",
    "fanout_for_page",
    "k_nearest",
    "nearest",
    "str_partition",
]
