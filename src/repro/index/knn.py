"""Best-first k-nearest-neighbour search on the R-tree.

Used by workload tooling (picking the non-answers nearest to a query
object) and provided for substrate completeness; standard min-heap
best-first traversal ordered by squared Euclidean mindist, with node
accesses counted like every other query.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Tuple

from repro.geometry.point import PointLike, as_point
from repro.index.rtree import RTree


def k_nearest(tree: RTree, point: PointLike, k: int) -> List[Tuple[float, Any]]:
    """The *k* entries nearest to *point* as ``(distance_sq, payload)``,
    ascending.  Returns fewer when the tree holds fewer entries."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    target = as_point(point, dims=tree.dims)
    tree.stats.record_query()

    counter = itertools.count()
    heap: list = [(0.0, next(counter), True, tree.root)]
    out: List[Tuple[float, Any]] = []
    while heap and len(out) < k:
        dist, _tie, is_node, item = heapq.heappop(heap)
        if is_node:
            if item.mbr is None:
                continue
            tree.stats.record_node(item.is_leaf)
            if item.is_leaf:
                for rect, payload in item.entries:
                    heapq.heappush(
                        heap,
                        (
                            rect.min_distance_sq(target),
                            next(counter),
                            False,
                            payload,
                        ),
                    )
            else:
                for child in item.children:
                    if child.mbr is not None:
                        heapq.heappush(
                            heap,
                            (
                                child.mbr.min_distance_sq(target),
                                next(counter),
                                True,
                                child,
                            ),
                        )
        else:
            out.append((dist, item))
    return out


def nearest(tree: RTree, point: PointLike) -> Any:
    """Payload of the single nearest entry (``None`` for an empty tree)."""
    result = k_nearest(tree, point, 1)
    return result[0][1] if result else None
