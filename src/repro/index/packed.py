"""Packed (flattened) NumPy snapshot of an R-tree.

The pointer :class:`~repro.index.rtree.RTree` pays a Python-level
``Rect.intersects`` call per node per window.  For the filter phase of the
index-guided algorithms — Lemma-2 candidate discovery, CR's window query,
reverse skylines / k-skybands, the PRSQ relevance prune — that scalar
traversal dominates the runtime once queries arrive in batches.

:class:`PackedRTree` freezes one tree into contiguous arrays:

* ``node_lo`` / ``node_hi`` — ``(N, d)`` node MBRs in **BFS order** (the
  root is node 0; every level is a contiguous block; the leaves are
  exactly the last level, because the R-tree keeps all leaves at equal
  depth);
* ``child_start`` / ``child_count`` — each internal node's children as a
  contiguous node-id range (BFS numbering makes sibling blocks adjacent);
* ``entry_start`` / ``entry_count`` — each leaf's entries as a range into
* ``entry_lo`` / ``entry_hi`` / ``payloads`` — the flattened leaf-entry
  rectangles and their payload table.

Traversal is a *level frontier*: all children of the current frontier are
tested against all query windows in one broadcast comparison per level.
The frontier visits exactly the node set the pointer traversal visits (the
root unconditionally, then every child whose MBR crosses a window), and
every visit is recorded through the same :class:`AccessStats` counters, so
the paper's node-access metric is identical on both paths — this parity is
property-tested.

A snapshot is immutable and self-contained (plain arrays plus the payload
list), so it pickles cheaply: :class:`~repro.engine.executor
.ParallelExecutor` ships it to worker processes, which adopt the arrays
instead of re-running the O(n log n) bulk load.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree
from repro.index.stats import AccessStats
from repro.obs import span as _span

#: Windows per grouped-traversal block: groups are processed in blocks so
#: the (frontier, windows) intersection scratch stays a few MB even when
#: thousands of windows are answered in one call.
GROUP_WINDOW_CHUNK = 1024

#: Elements per (rects, windows, dims) intersection broadcast: rect rows
#: are sliced so one wide frontier (every leaf entry of a large dataset)
#: cannot blow up the comparison scratch.
_INTERSECT_SCRATCH_ELEMENTS = 1 << 22


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` for every ``(start, count)`` pair."""
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    starts = np.asarray(starts, dtype=np.intp)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.intp) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + offsets


def _stack_windows(
    windows: Sequence[Rect], dims: int
) -> Tuple[np.ndarray, np.ndarray]:
    if not windows:
        empty = np.empty((0, dims), dtype=np.float64)
        return empty, empty.copy()
    lo = np.stack([w.lo for w in windows])
    hi = np.stack([w.hi for w in windows])
    return lo, hi


class PackedRTree:
    """Immutable array-backed snapshot of one :class:`RTree`.

    Build via :meth:`from_rtree` (or ``tree.freeze()``); query via the
    same ``range_search`` / ``range_search_any`` family the pointer tree
    exposes, plus the batched multi-window kernels ``range_search_many``
    and ``range_search_any_grouped``.  Hit *sets* and access accounting
    are identical to the pointer tree; ``range_search_any`` additionally
    shares its canonical (unique, ``repr``-sorted) result order.
    """

    __slots__ = (
        "dims",
        "size",
        "height",
        "leaf_start",
        "node_lo",
        "node_hi",
        "child_start",
        "child_count",
        "entry_start",
        "entry_count",
        "entry_lo",
        "entry_hi",
        "payloads",
        "stats",
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rtree(
        cls, tree: RTree, stats: Optional[AccessStats] = None
    ) -> "PackedRTree":
        """Freeze *tree* into a packed snapshot (one O(n) array pass).

        *stats* shares an existing access counter (the dataset-level one)
        so pointer and packed traversals accumulate into the same I/O
        metric; omitted, the snapshot gets a private counter.
        """
        levels: List[List] = [[tree.root]]
        while not levels[-1][0].is_leaf:
            levels.append(
                [child for node in levels[-1] for child in node.children]
            )
        nodes = [node for level in levels for node in level]
        n = len(nodes)
        dims = tree.dims

        packed = cls.__new__(cls)
        packed.dims = dims
        packed.size = tree.size
        packed.height = len(levels)
        packed.leaf_start = n - len(levels[-1])
        packed.stats = stats if stats is not None else AccessStats()

        # An MBR-less node (only the root of an empty tree) gets inverted
        # infinite bounds so no window can ever intersect it.
        node_lo = np.full((n, dims), np.inf, dtype=np.float64)
        node_hi = np.full((n, dims), -np.inf, dtype=np.float64)
        child_start = np.zeros(n, dtype=np.intp)
        child_count = np.zeros(n, dtype=np.intp)
        entry_start = np.zeros(n, dtype=np.intp)
        entry_count = np.zeros(n, dtype=np.intp)
        lo_parts: List[np.ndarray] = []
        hi_parts: List[np.ndarray] = []
        payloads: List[Any] = []

        next_child = 1  # BFS numbering: children fill the array in order
        entry_cursor = 0
        for i, node in enumerate(nodes):
            if node.mbr is not None:
                node_lo[i] = node.mbr.lo
                node_hi[i] = node.mbr.hi
            if node.is_leaf:
                entry_start[i] = entry_cursor
                entry_count[i] = len(node.entries)
                entry_cursor += len(node.entries)
                for rect, payload in node.entries:
                    lo_parts.append(rect.lo)
                    hi_parts.append(rect.hi)
                    payloads.append(payload)
            else:
                child_start[i] = next_child
                child_count[i] = len(node.children)
                next_child += len(node.children)

        if payloads:
            entry_lo = np.stack(lo_parts)
            entry_hi = np.stack(hi_parts)
        else:
            entry_lo = np.empty((0, dims), dtype=np.float64)
            entry_hi = np.empty((0, dims), dtype=np.float64)
        for array in (node_lo, node_hi, child_start, child_count,
                      entry_start, entry_count, entry_lo, entry_hi):
            array.flags.writeable = False
        packed.node_lo = node_lo
        packed.node_hi = node_hi
        packed.child_start = child_start
        packed.child_count = child_count
        packed.entry_start = entry_start
        packed.entry_count = entry_count
        packed.entry_lo = entry_lo
        packed.entry_hi = entry_hi
        packed.payloads = payloads
        return packed

    def with_stats(self, stats: Optional[AccessStats] = None) -> "PackedRTree":
        """An O(1) view over the same frozen arrays with its own counter.

        Every array (and the payload table) is shared by reference; only
        the :class:`AccessStats` instance differs, so many concurrent
        readers of one snapshot can each measure their own per-query
        node-access deltas without interleaving — this is what keeps
        causality ``stats.node_accesses`` deterministic when the serve
        layer fans one published snapshot out to parallel requests.
        """
        view = PackedRTree.__new__(PackedRTree)
        for slot in self.__slots__:
            if slot != "stats":
                setattr(view, slot, getattr(self, slot))
        view.stats = stats if stats is not None else AccessStats()
        return view

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self.node_lo.shape[0]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"<PackedRTree n={self.size} dims={self.dims} "
            f"nodes={self.node_count} height={self.height}>"
        )

    # ------------------------------------------------------------------
    # pickling (worker handoff): ship arrays, never the stats counter
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__
                if slot != "stats"}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self.stats = AccessStats()
        # pickle restores fresh writable arrays; re-freeze so a worker's
        # copy keeps the same immutability contract as the original
        for slot, value in state.items():
            if isinstance(value, np.ndarray):
                value.flags.writeable = False

    # ------------------------------------------------------------------
    # traversal kernels
    # ------------------------------------------------------------------
    def _leaf_frontier(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Visited leaves for one window, recording every node visit.

        Level frontier: the root is visited unconditionally (as the
        pointer traversal does), then exactly the children whose MBR
        intersects the window — the same closed-interval comparisons
        ``Rect.intersects`` performs, so the visit set is bit-identical.
        """
        active = np.zeros(1, dtype=np.intp)
        for _ in range(self.height - 1):
            self.stats.node_accesses += int(active.size)
            children = _ranges(
                self.child_start[active], self.child_count[active]
            )
            keep = np.logical_and(
                (lo <= self.node_hi[children]).all(axis=1),
                (self.node_lo[children] <= hi).all(axis=1),
            )
            active = children[keep]
        self.stats.node_accesses += int(active.size)
        self.stats.leaf_accesses += int(active.size)
        return active

    def range_hits(self, window: Rect) -> np.ndarray:
        """Entry indices intersecting *window* (ascending entry order)."""
        self.stats.record_query()
        leaves = self._leaf_frontier(window.lo, window.hi)
        eidx = _ranges(self.entry_start[leaves], self.entry_count[leaves])
        if eidx.size == 0:
            return eidx
        keep = np.logical_and(
            (window.lo <= self.entry_hi[eidx]).all(axis=1),
            (self.entry_lo[eidx] <= window.hi).all(axis=1),
        )
        return eidx[keep]

    def range_search(self, window: Rect) -> List[Any]:
        """Payloads of all entries intersecting *window*.

        Same hit set and access accounting as ``RTree.range_search``;
        payloads come back in (deterministic) packed entry order.
        """
        with _span("index-search", kernel="packed", windows=1) as sp:
            hits = [self.payloads[i] for i in self.range_hits(window)]
            sp.set(hits=len(hits))
            return hits

    def range_search_any(self, windows: Sequence[Rect]) -> List[Any]:
        """Unique payloads intersecting *any* window, canonically ordered.

        Matches ``RTree.range_search_any`` exactly: the multi-rectangle
        branch-and-bound scan of Algorithm 1 (each node read once no
        matter how many rectangles it crosses), returning unique payloads
        sorted by ``repr`` so no traversal order can leak downstream.
        """
        windows = list(windows)
        with _span("index-search", kernel="packed-any", windows=len(windows)):
            return self.range_search_any_grouped([windows])[0]

    def range_search_many(
        self, windows: Sequence[Rect]
    ) -> List[List[Any]]:
        """Per-window payload lists for W windows in one batched pass.

        Semantically (hit sets *and* access accounting) identical to
        calling ``range_search`` once per window; each list comes back in
        packed entry order.
        """
        windows = list(windows)
        with _span("index-search", kernel="packed-many", windows=len(windows)):
            results: List[List[Any]] = []
            for wlo, whi, gstarts in self._window_blocks(windows):
                for eidx in self._grouped_hits(wlo, whi, gstarts):
                    results.append([self.payloads[i] for i in eidx])
            return results

    def range_search_any_grouped(
        self, groups: Sequence[Sequence[Rect]]
    ) -> List[List[Any]]:
        """One ``range_search_any`` answer per window group, in one pass.

        Semantically (hit sets, canonical order, *and* access accounting)
        identical to calling ``range_search_any`` once per group — this is
        the many-window filter kernel the batched PRSQ evaluation uses.
        """
        groups = [list(group) for group in groups]
        with _span(
            "index-search", kernel="packed-grouped", groups=len(groups)
        ):
            results: List[List[Any]] = []
            for wlo, whi, gstarts in self._group_blocks(groups):
                for eidx in self._grouped_hits(wlo, whi, gstarts):
                    unique = dict.fromkeys(self.payloads[i] for i in eidx)
                    results.append(sorted(unique, key=repr))
            return results

    # ------------------------------------------------------------------
    # grouped traversal core
    # ------------------------------------------------------------------
    def _window_blocks(self, windows):
        """Yield ``(wlo, whi, gstarts)`` blocks of singleton groups."""
        windows = list(windows)
        for start in range(0, len(windows), GROUP_WINDOW_CHUNK):
            chunk = windows[start : start + GROUP_WINDOW_CHUNK]
            wlo, whi = _stack_windows(chunk, self.dims)
            yield wlo, whi, np.arange(len(chunk) + 1, dtype=np.intp)

    def _group_blocks(self, groups):
        """Yield ``(wlo, whi, gstarts)`` blocks covering whole groups.

        Groups are never split (a group is one independent query), so a
        block holds as many whole groups as fit the window budget — at
        least one per block even when a single group exceeds it.
        """
        pending: List[Sequence[Rect]] = []
        pending_windows = 0
        for group in groups:
            group = list(group)
            if pending and pending_windows + len(group) > GROUP_WINDOW_CHUNK:
                yield self._pack_block(pending)
                pending, pending_windows = [], 0
            pending.append(group)
            pending_windows += len(group)
        if pending:
            yield self._pack_block(pending)

    def _pack_block(self, block_groups: List[Sequence[Rect]]):
        flat = [w for group in block_groups for w in group]
        wlo, whi = _stack_windows(flat, self.dims)
        gstarts = np.zeros(len(block_groups) + 1, dtype=np.intp)
        np.cumsum([len(g) for g in block_groups], out=gstarts[1:])
        return wlo, whi, gstarts

    def _group_incidence(
        self,
        rect_lo: np.ndarray,
        rect_hi: np.ndarray,
        wlo: np.ndarray,
        whi: np.ndarray,
        gstarts: np.ndarray,
    ) -> np.ndarray:
        """``(R, G)`` mask: rect r intersects *some* window of group g."""
        n_groups = gstarts.shape[0] - 1
        n_windows = wlo.shape[0]
        n_rects = rect_lo.shape[0]
        if n_windows == 0 or n_rects == 0:
            return np.zeros((n_rects, n_groups), dtype=bool)
        # reduceat cannot express empty segments, so reduce over the
        # non-empty groups only (their starts are strictly increasing and
        # in range; empty groups between or after them contribute zero
        # windows, keeping every segment boundary correct) and leave the
        # empty groups' columns False.
        empty = gstarts[1:] == gstarts[:-1]
        nonempty_cols = np.flatnonzero(~empty)
        nonempty_starts = gstarts[:-1][nonempty_cols]
        grouped = np.zeros((n_rects, n_groups), dtype=bool)
        chunk = max(
            1, _INTERSECT_SCRATCH_ELEMENTS // (n_windows * self.dims)
        )
        for lo in range(0, n_rects, chunk):
            sl = slice(lo, min(lo + chunk, n_rects))
            hit = np.logical_and(
                (wlo[np.newaxis, :, :] <= rect_hi[sl, np.newaxis, :]).all(
                    axis=2
                ),
                (rect_lo[sl, np.newaxis, :] <= whi[np.newaxis, :, :]).all(
                    axis=2
                ),
            )
            block = grouped[sl]  # slice view: writes land in `grouped`
            block[:, nonempty_cols] = np.logical_or.reduceat(
                hit, nonempty_starts, axis=1
            )
        return grouped

    def _grouped_hits(
        self, wlo: np.ndarray, whi: np.ndarray, gstarts: np.ndarray
    ) -> List[np.ndarray]:
        """Entry-index hits per group; accounting matches per-group scans.

        A node is visited *for group g* iff its parent was and its MBR
        crosses at least one of g's windows (the root unconditionally),
        exactly the pointer traversal's per-group visit set — so summing
        the incidence matrix reproduces the node accesses a Python loop
        over the groups would record, while every level is evaluated in
        one broadcast over frontier × windows.
        """
        n_groups = gstarts.shape[0] - 1
        self.stats.queries += n_groups
        active = np.zeros(1, dtype=np.intp)
        incidence = np.ones((1, n_groups), dtype=bool)
        for _ in range(self.height - 1):
            self.stats.node_accesses += int(incidence.sum())
            counts = self.child_count[active]
            children = _ranges(self.child_start[active], counts)
            parent = np.repeat(np.arange(active.size, dtype=np.intp), counts)
            grouped = self._group_incidence(
                self.node_lo[children], self.node_hi[children],
                wlo, whi, gstarts,
            )
            grouped &= incidence[parent]
            keep = grouped.any(axis=1)
            active = children[keep]
            incidence = grouped[keep]
        self.stats.node_accesses += int(incidence.sum())
        self.stats.leaf_accesses += int(incidence.sum())

        counts = self.entry_count[active]
        eidx = _ranges(self.entry_start[active], counts)
        parent = np.repeat(np.arange(active.size, dtype=np.intp), counts)
        grouped = self._group_incidence(
            self.entry_lo[eidx], self.entry_hi[eidx], wlo, whi, gstarts
        )
        if grouped.size:
            grouped &= incidence[parent]
        return [eidx[grouped[:, g]] for g in range(n_groups)]
