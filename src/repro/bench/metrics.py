"""Measurement containers for the experiment harness.

The paper reports two metrics per configuration (Sec. 5.1): the number of
R-tree node accesses (I/O) and CPU time, averaged over randomly selected
non-answers.  :class:`Aggregate` accumulates per-run
:class:`~repro.core.model.RunStats` and exposes those means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.model import RunStats


@dataclass
class Aggregate:
    """Mean/total statistics over a batch of algorithm invocations."""

    runs: List[RunStats] = field(default_factory=list)

    def add(self, stats: RunStats) -> None:
        self.runs.append(stats)

    @property
    def count(self) -> int:
        return len(self.runs)

    def _mean(self, attr: str) -> float:
        if not self.runs:
            return 0.0
        return sum(getattr(run, attr) for run in self.runs) / len(self.runs)

    @property
    def mean_node_accesses(self) -> float:
        return self._mean("node_accesses")

    @property
    def mean_cpu_time_s(self) -> float:
        return self._mean("cpu_time_s")

    @property
    def mean_candidates(self) -> float:
        return self._mean("candidates")

    @property
    def mean_subsets(self) -> float:
        return self._mean("subsets_examined")

    @property
    def total_cpu_time_s(self) -> float:
        return sum(run.cpu_time_s for run in self.runs)

    def as_row(self) -> dict:
        """One flattened result row for the reporting tables."""
        return {
            "runs": self.count,
            "io": round(self.mean_node_accesses, 1),
            "cpu_ms": round(self.mean_cpu_time_s * 1e3, 3),
            "candidates": round(self.mean_candidates, 1),
            "subsets": round(self.mean_subsets, 1),
        }
