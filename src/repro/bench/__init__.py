"""Benchmark harness: metrics, workload selection, batch runners, reporting."""

from repro.bench.harness import (
    BatchResult,
    run_batch,
    run_cp_batch,
    run_cr_batch,
    run_naive_i_batch,
    run_naive_ii_batch,
)
from repro.bench.metrics import Aggregate
from repro.bench.reporting import (
    format_table,
    is_non_decreasing,
    is_non_increasing,
    print_figure,
    series_summary,
)
from repro.bench.workloads import (
    random_query,
    select_prsq_non_answers,
    select_rsq_non_answers,
)

__all__ = [
    "Aggregate",
    "BatchResult",
    "format_table",
    "is_non_decreasing",
    "is_non_increasing",
    "print_figure",
    "random_query",
    "run_batch",
    "run_cp_batch",
    "run_cr_batch",
    "run_naive_i_batch",
    "run_naive_ii_batch",
    "select_prsq_non_answers",
    "select_rsq_non_answers",
    "series_summary",
]
