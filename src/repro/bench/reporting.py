"""Reporting in the shape of the paper's figures and tables.

Each benchmark prints one table whose rows/series correspond to a paper
figure: the x-axis parameter, and per algorithm the mean node accesses
(I/O) and mean CPU time.  Absolute CPU numbers differ from the paper's C++
testbed by a constant factor; the *shape* is what EXPERIMENTS.md compares.

Benchmarks that feed CI additionally emit a machine-readable JSON report
(:func:`write_json_report`, one ``BENCH_<name>.json`` per benchmark) so
the perf trajectory is recorded run over run instead of scrolling away in
a log.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence


def provenance() -> Dict:
    """Where and when a benchmark number came from.

    Embedded in every JSON report so a recorded figure can be traced back
    to the exact commit and environment that produced it.  Git metadata
    degrades to ``None`` outside a repository (e.g. a source tarball).
    """
    def _git(*args: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() or None if out.returncode == 0 else None

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None

    sha = _git("rev-parse", "HEAD")
    return {
        "git_sha": sha,
        "git_dirty": (
            None if sha is None else _git("status", "--porcelain") is not None
        ),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
    }


def format_table(rows: Sequence[Dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def print_figure(
    title: str, rows: Iterable[Dict], columns: Sequence[str] | None = None
) -> None:
    """Print one paper-figure-shaped table with a banner."""
    print()
    print(f"== {title} ==")
    print(format_table(list(rows), columns))


def series_summary(rows: Sequence[Dict], x: str, y: str) -> List[tuple]:
    """Extract an ``(x, y)`` series from result rows (for trend assertions)."""
    return [(row[x], row[y]) for row in rows]


def is_non_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def is_non_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    return all(b + tolerance >= a for a, b in zip(values, values[1:]))


#: Workload-shape keys every report's provenance block carries (``None``
#: when the benchmark did not state them).  Trend dashboards join
#: ``BENCH_*.json`` files across runs on these, so numbers recorded at
#: different scales/topologies are never compared as if they were one
#: series.
WORKLOAD_KEYS = ("n", "d", "s_max", "shards")


def workload_shape(
    n: Optional[int] = None,
    d: Optional[int] = None,
    s_max: Optional[int] = None,
    shards: Optional[int] = None,
) -> Dict:
    """The workload-shape block: cardinality, dims, samples, shard count."""
    return {
        "n": n,
        "d": d,
        "s_max": s_max,
        "shards": shards,
    }


def json_report(
    name: str,
    rows: Sequence[Dict],
    meta: Optional[Dict] = None,
    workload: Optional[Dict] = None,
) -> Dict:
    """The canonical machine-readable benchmark payload.

    ``rows`` are the same dict rows :func:`format_table` renders; ``meta``
    carries the workload parameters (cardinality, dims, seed, ...) so a
    recorded number is reproducible without reading the emitting script.
    ``provenance`` records where the number came from (commit, time,
    platform, interpreter and numpy versions) plus a ``workload`` block
    (:func:`workload_shape`: ``n``/``d``/``s_max``/``shards``) so trend
    lines stay comparable across scales and shard topologies.
    """
    shape = workload_shape(**(workload or {}))
    prov = provenance()
    prov["workload"] = shape
    return {
        "schema": "repro-bench-report/v1",
        "benchmark": str(name),
        "meta": dict(meta or {}),
        "provenance": prov,
        "rows": [dict(row) for row in rows],
    }


def write_json_report(
    path: str | Path,
    name: str,
    rows: Sequence[Dict],
    meta: Optional[Dict] = None,
    workload: Optional[Dict] = None,
) -> Dict:
    """Write :func:`json_report` to *path*; returns the written payload."""
    payload = json_report(name, rows, meta=meta, workload=workload)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload
