"""Workload selection: random non-answers for the experiment protocol.

Section 5.1: *"we select randomly 50 non-answers, and report their average
performance."*  For CR2PRSQ the refinement step is exponential in the
candidate-set size in the worst case (Theorem 1), so — like the paper's
workloads evidently do — we bound the candidate count of the selected
non-answers; the bound is part of the recorded workload definition and is
reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

import numpy as np

from repro.core.candidates import find_candidate_causes
from repro.datasets.rng import SeedLike, make_rng
from repro.geometry.dominance import dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import CertainDataset, UncertainDataset


def select_prsq_non_answers(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    count: int,
    max_candidates: int = 14,
    min_candidates: int = 1,
    seed: SeedLike = None,
    max_probes: Optional[int] = None,
) -> List[Hashable]:
    """Randomly pick *count* PRSQ non-answers with bounded candidate sets.

    Probes random objects, keeping those with ``Pr < alpha`` whose Lemma-2
    candidate set size lies in ``[min_candidates, max_candidates]``.
    Raises ``ValueError`` when the dataset cannot supply enough qualifying
    non-answers within *max_probes* probes (default: 20 probes per request).
    """
    rng = make_rng(seed)
    qq = as_point(q, dims=dataset.dims)
    ids = dataset.ids()
    order = rng.permutation(len(ids))
    budget = max_probes if max_probes is not None else max(20 * count, 200)

    selected: List[Hashable] = []
    for idx in order[:budget]:
        oid = ids[int(idx)]
        if reverse_skyline_probability(dataset, oid, qq) >= alpha:
            continue
        n_candidates = len(find_candidate_causes(dataset, oid, qq))
        if not min_candidates <= n_candidates <= max_candidates:
            continue
        selected.append(oid)
        if len(selected) == count:
            return selected
    raise ValueError(
        f"found only {len(selected)}/{count} qualifying non-answers "
        f"(alpha={alpha}, candidate range [{min_candidates}, {max_candidates}])"
    )


def select_rsq_non_answers(
    dataset: CertainDataset,
    q: PointLike,
    count: int,
    max_candidates: int = 18,
    min_candidates: int = 1,
    seed: SeedLike = None,
    max_probes: Optional[int] = None,
) -> List[Hashable]:
    """Randomly pick *count* reverse-skyline non-answers (certain data)."""
    rng = make_rng(seed)
    qq = as_point(q, dims=dataset.dims)
    ids = dataset.ids()
    order = rng.permutation(len(ids))
    budget = max_probes if max_probes is not None else max(20 * count, 200)

    selected: List[Hashable] = []
    for idx in order[:budget]:
        oid = ids[int(idx)]
        an_point = dataset.point_of(oid)
        dominators = 0
        for other in dataset:
            if other.oid == oid:
                continue
            if dynamically_dominates(other.samples[0], qq, an_point):
                dominators += 1
                if dominators > max_candidates:
                    break
        if not min_candidates <= dominators <= max_candidates:
            continue
        selected.append(oid)
        if len(selected) == count:
            return selected
    raise ValueError(
        f"found only {len(selected)}/{count} qualifying non-answers "
        f"(candidate range [{min_candidates}, {max_candidates}])"
    )


def random_query(
    dims: int, domain: float = 10_000.0, seed: SeedLike = None
) -> np.ndarray:
    """A uniformly random certain query object in the synthetic domain."""
    rng = make_rng(seed)
    return rng.uniform(0.35 * domain, 0.65 * domain, size=dims)
