"""Dataset profiling: the structural statistics the paper's trends hinge on.

The evaluation narratives of Figs. 8-13 all reduce to a few structural
quantities — object-region sizes, dominance density, skyline/causality-set
sizes.  This module measures them for any dataset, so EXPERIMENTS.md-style
mechanism claims can be checked directly and workload generators can be
sanity-checked in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.rng import SeedLike, make_rng
from repro.geometry.dominance import dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.skyline.classic import skyline_indices
from repro.uncertain.dataset import CertainDataset, UncertainDataset


@dataclass(frozen=True)
class DatasetProfile:
    """Structural summary of a dataset."""

    cardinality: int
    dims: int
    mean_samples: float
    max_samples: int
    mean_mbr_margin: float
    skyline_size: Optional[int]
    mean_dominators: Optional[float]

    def as_row(self) -> dict:
        return {
            "n": self.cardinality,
            "d": self.dims,
            "samples/obj": round(self.mean_samples, 2),
            "mbr margin": round(self.mean_mbr_margin, 2),
            "skyline": self.skyline_size,
            "dominators": (
                round(self.mean_dominators, 2)
                if self.mean_dominators is not None
                else None
            ),
        }


def profile_dataset(
    dataset: UncertainDataset,
    q: Optional[PointLike] = None,
    dominator_samples: int = 50,
    seed: SeedLike = 0,
) -> DatasetProfile:
    """Measure a dataset's structural statistics.

    The skyline size is computed on expected positions (exact for certain
    data).  When *q* is given, the mean dynamic-dominator count toward
    ``q`` is estimated over *dominator_samples* random objects — the
    quantity that drives candidate-set sizes and hence every cost trend.
    """
    rng = make_rng(seed)
    expected = np.array([obj.expected_position() for obj in dataset])
    margins = [obj.mbr.margin() for obj in dataset]

    mean_dominators: Optional[float] = None
    if q is not None:
        qq = as_point(q, dims=dataset.dims)
        ids = dataset.ids()
        probe_count = min(dominator_samples, len(ids))
        probes = rng.choice(len(ids), size=probe_count, replace=False)
        counts = []
        for probe in probes:
            center = expected[int(probe)]
            count = sum(
                1
                for row in range(len(ids))
                if row != int(probe)
                and dynamically_dominates(expected[row], qq, center)
            )
            counts.append(count)
        mean_dominators = float(np.mean(counts)) if counts else 0.0

    return DatasetProfile(
        cardinality=len(dataset),
        dims=dataset.dims,
        mean_samples=float(
            np.mean([obj.num_samples for obj in dataset])
        ),
        max_samples=dataset.max_samples(),
        mean_mbr_margin=float(np.mean(margins)),
        skyline_size=len(skyline_indices(expected)),
        mean_dominators=mean_dominators,
    )


def dominance_density(
    dataset: CertainDataset, pairs: int = 2_000, seed: SeedLike = 0
) -> float:
    """Fraction of random ordered pairs ``(a, b)`` where ``a`` classically
    dominates ``b`` — the density that makes correlated data easy and
    anti-correlated data hard for skyline operators."""
    rng = make_rng(seed)
    n = len(dataset)
    if n < 2:
        return 0.0
    points = dataset.points
    a_idx = rng.integers(0, n, size=pairs)
    b_idx = rng.integers(0, n, size=pairs)
    valid = a_idx != b_idx
    a, b = points[a_idx[valid]], points[b_idx[valid]]
    wins = np.logical_and((a <= b).all(axis=1), (a < b).any(axis=1))
    return float(wins.mean()) if len(wins) else 0.0
