"""Experiment harness: run an algorithm over a batch of non-answers and
aggregate the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.bench.metrics import Aggregate
from repro.core.cp import CPConfig, compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.model import CausalityResult
from repro.core.naive import naive_i, naive_ii
from repro.exceptions import NotANonAnswerError
from repro.geometry.point import PointLike
from repro.uncertain.dataset import CertainDataset, UncertainDataset


@dataclass
class BatchResult:
    """Aggregated outcome of one (algorithm, configuration) batch."""

    label: str
    aggregate: Aggregate
    results: List[CausalityResult]

    def row(self) -> Dict:
        row = {"algorithm": self.label}
        row.update(self.aggregate.as_row())
        return row


def run_batch(
    label: str,
    runner: Callable[[Hashable], CausalityResult],
    non_answers: Iterable[Hashable],
) -> BatchResult:
    """Invoke *runner* once per non-answer, collecting stats.

    Non-answers that turn out to be answers (selection raced against a
    different alpha, say) are skipped rather than failing the batch.
    """
    aggregate = Aggregate()
    results: List[CausalityResult] = []
    for an in non_answers:
        try:
            result = runner(an)
        except NotANonAnswerError:
            continue
        aggregate.add(result.stats)
        results.append(result)
    return BatchResult(label=label, aggregate=aggregate, results=results)


def run_cp_batch(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    non_answers: Iterable[Hashable],
    config: Optional[CPConfig] = None,
    label: str = "CP",
) -> BatchResult:
    config = config or CPConfig()
    return run_batch(
        label,
        lambda an: compute_causality(dataset, an, q, alpha, config=config),
        non_answers,
    )


def run_naive_i_batch(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    non_answers: Iterable[Hashable],
    label: str = "Naive-I",
) -> BatchResult:
    return run_batch(
        label, lambda an: naive_i(dataset, an, q, alpha), non_answers
    )


def run_cr_batch(
    dataset: CertainDataset,
    q: PointLike,
    non_answers: Iterable[Hashable],
    label: str = "CR",
) -> BatchResult:
    return run_batch(
        label, lambda an: compute_causality_certain(dataset, an, q), non_answers
    )


def run_naive_ii_batch(
    dataset: CertainDataset,
    q: PointLike,
    non_answers: Iterable[Hashable],
    label: str = "Naive-II",
) -> BatchResult:
    return run_batch(
        label, lambda an: naive_ii(dataset, an, q), non_answers
    )
