"""Dataset and result (de)serialization plus the command-line interface."""

from repro.io.csvio import (
    load_certain_csv,
    load_uncertain_csv,
    save_certain_csv,
    save_uncertain_csv,
)
from repro.io.jsonio import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_dataset_json,
    save_result_json,
)

__all__ = [
    "dataset_from_dict",
    "dataset_to_dict",
    "load_certain_csv",
    "load_dataset_json",
    "load_result_json",
    "load_uncertain_csv",
    "result_from_dict",
    "result_to_dict",
    "save_certain_csv",
    "save_dataset_json",
    "save_result_json",
    "save_uncertain_csv",
]
