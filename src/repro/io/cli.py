"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro generate --kind uncertain --n 500 --dims 2 --out data.csv
    python -m repro prsq     --data data.csv --q 5000 5000 --alpha 0.5
    python -m repro explain  --data data.csv --q 5000 5000 --alpha 0.5 --an 42
    python -m repro explain-certain --data cars.csv --q 11580 49000 --an an-7510-10180

``generate`` writes a synthetic dataset; ``prsq`` lists answers and
non-answers with probabilities; ``explain`` runs algorithm CP on one
non-answer (``explain-certain`` runs CR on certain data).  JSON output is
selected by the file extension of ``--out`` / by ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.exceptions import ReproError
from repro.io.csvio import (
    load_certain_csv,
    load_uncertain_csv,
    save_certain_csv,
    save_uncertain_csv,
)
from repro.io.jsonio import result_to_dict
from repro.prsq.query import prsq_probabilities


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Causality & responsibility for probabilistic reverse skyline "
            "query non-answers (Gao et al., TKDE 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset as CSV")
    gen.add_argument("--kind", choices=["uncertain", "certain"], default="uncertain")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--dims", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--distribution",
        default=None,
        help="certain: independent/correlated/anticorrelated/clustered; "
        "uncertain: uniform/skew center distribution",
    )
    gen.add_argument("--radius", type=float, default=75.0,
                     help="uncertain only: maximum region radius")
    gen.add_argument("--out", required=True)

    prsq = sub.add_parser("prsq", help="run the probabilistic reverse skyline query")
    prsq.add_argument("--data", required=True, help="uncertain CSV (long format)")
    prsq.add_argument("--q", type=float, nargs="+", required=True)
    prsq.add_argument("--alpha", type=float, default=0.5)

    explain = sub.add_parser("explain", help="algorithm CP on one non-answer")
    explain.add_argument("--data", required=True, help="uncertain CSV (long format)")
    explain.add_argument("--q", type=float, nargs="+", required=True)
    explain.add_argument("--alpha", type=float, default=0.5)
    explain.add_argument("--an", required=True, help="non-answer object id")
    explain.add_argument("--json", action="store_true")

    explain_c = sub.add_parser(
        "explain-certain", help="algorithm CR on one certain-data non-answer"
    )
    explain_c.add_argument("--data", required=True, help="certain CSV (wide format)")
    explain_c.add_argument("--q", type=float, nargs="+", required=True)
    explain_c.add_argument("--an", required=True, help="non-answer object id")
    explain_c.add_argument("--json", action="store_true")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "certain":
        dataset = generate_certain_dataset(
            args.n,
            args.dims,
            distribution=args.distribution or "independent",
            seed=args.seed,
        )
        save_certain_csv(dataset, args.out)
    else:
        dataset = generate_uncertain_dataset(
            args.n,
            args.dims,
            center_distribution=args.distribution or "uniform",
            radius_range=(0.0, args.radius),
            seed=args.seed,
        )
        save_uncertain_csv(dataset, args.out)
    print(f"wrote {args.kind} dataset: n={args.n} dims={args.dims} -> {args.out}")
    return 0


def _cmd_prsq(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    probabilities = prsq_probabilities(dataset, args.q)
    answers = 0
    for oid in dataset.ids():
        pr = probabilities[oid]
        tag = "answer" if pr >= args.alpha else "non-answer"
        answers += tag == "answer"
        print(f"{oid}\t{pr:.6f}\t{tag}")
    print(
        f"# {answers} answers / {len(dataset) - answers} non-answers "
        f"at alpha={args.alpha}",
        file=sys.stderr,
    )
    return 0


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result_to_dict(result), indent=2))
        return
    print(f"causes for non-answer {result.an_oid!r}:")
    for oid, resp in result.ranked():
        cause = result.causes[oid]
        print(f"  {oid}\tresponsibility={resp:.6f}\t{cause.kind.value}")
    print(
        f"# {result.stats.node_accesses} node accesses, "
        f"{result.stats.cpu_time_s * 1e3:.2f} ms",
        file=sys.stderr,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    result = compute_causality(dataset, args.an, args.q, args.alpha)
    _print_result(result, args.json)
    return 0


def _cmd_explain_certain(args: argparse.Namespace) -> int:
    dataset = load_certain_csv(args.data)
    result = compute_causality_certain(dataset, args.an, args.q)
    _print_result(result, args.json)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "prsq": _cmd_prsq,
    "explain": _cmd_explain,
    "explain-certain": _cmd_explain_certain,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
