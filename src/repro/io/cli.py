"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro generate --kind uncertain --n 500 --dims 2 --out data.csv
    python -m repro prsq     --data data.csv --q 5000 5000 --alpha 0.5
    python -m repro explain  --data data.csv --q 5000 5000 --alpha 0.5 --an 42
    python -m repro explain-certain --data cars.csv --q 11580 49000 --an an-7510-10180
    python -m repro batch    --data data.csv --queries queries.json --workers 4
    python -m repro batch    --data data.csv --queries queries.json --stream
    python -m repro batch    --data data.csv --queries queries.json --trace t.ndjson
    python -m repro batch    --data data.csv --queries queries.json --shards 8
    python -m repro stats    --data data.csv --queries queries.json
    python -m repro update   --data data.csv --ops ops.ndjsonl --out new.csv
    python -m repro serve    --data data.csv --port 7733 --threads 4
    python -m repro lint     src tests --json

``generate`` writes a synthetic dataset; ``prsq`` lists answers and
non-answers with probabilities; ``explain`` runs algorithm CP on one
non-answer (``explain-certain`` runs CR on certain data); ``batch`` runs a
JSON file of query specs through the :mod:`repro.api` client with optional
multiprocess fan-out and result caching.  All JSON emission goes through
the typed :class:`~repro.api.results.QueryResult` envelopes: ``--json``
prints one JSON array of envelopes, ``--stream`` prints NDJSON — one
envelope per line, flushed as each result lands, so a consumer can pipe
the output while long batches are still running.

``update`` drives one **live session**: each NDJSON input line is either a
shorthand op (``{"op": "insert"|"update"|"delete", "id": ..., "samples":
[[...]], ...}``) or any registered query-spec dict (``{"kind": ...}``),
executed strictly in order against a single session whose dataset is
patched incrementally — queries interleaved with updates see exactly the
contents written before them.  One envelope per line is emitted as NDJSON,
and ``--out`` saves the final dataset as CSV.

``serve`` hosts one or more live datasets behind the :mod:`repro.serve`
asyncio server (NDJSON protocol + HTTP POST on one port) until
SIGINT/SIGTERM; ``batch`` and ``serve`` share the same shutdown
discipline — flush what was already produced, close the tracer sink,
exit with a distinct status — so Ctrl-C never truncates an NDJSON line
or loses buffered spans.

``lint`` runs the :mod:`repro.analysis` AST invariant linter over the
given paths (determinism, concurrency, cache-discipline, and hygiene
contracts; see the README rule table).  Exit codes are stable: 0 clean,
1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.model import CausalityResult
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.exceptions import ReproError
from repro.io.csvio import (
    load_certain_csv,
    load_uncertain_csv,
    save_certain_csv,
    save_uncertain_csv,
)
from repro.prsq.query import prsq_probabilities


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Causality & responsibility for probabilistic reverse skyline "
            "query non-answers (Gao et al., TKDE 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset as CSV")
    gen.add_argument("--kind", choices=["uncertain", "certain"], default="uncertain")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--dims", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--distribution",
        default=None,
        help="certain: independent/correlated/anticorrelated/clustered; "
        "uncertain: uniform/skew center distribution",
    )
    gen.add_argument("--radius", type=float, default=75.0,
                     help="uncertain only: maximum region radius")
    gen.add_argument("--out", required=True)

    prsq = sub.add_parser("prsq", help="run the probabilistic reverse skyline query")
    prsq.add_argument("--data", required=True, help="uncertain CSV (long format)")
    prsq.add_argument("--q", type=float, nargs="+", required=True)
    prsq.add_argument("--alpha", type=float, default=0.5)

    explain = sub.add_parser("explain", help="algorithm CP on one non-answer")
    explain.add_argument("--data", required=True, help="uncertain CSV (long format)")
    explain.add_argument("--q", type=float, nargs="+", required=True)
    explain.add_argument("--alpha", type=float, default=0.5)
    explain.add_argument("--an", required=True, help="non-answer object id")
    explain.add_argument("--json", action="store_true")

    explain_c = sub.add_parser(
        "explain-certain", help="algorithm CR on one certain-data non-answer"
    )
    explain_c.add_argument("--data", required=True, help="certain CSV (wide format)")
    explain_c.add_argument("--q", type=float, nargs="+", required=True)
    explain_c.add_argument("--an", required=True, help="non-answer object id")
    explain_c.add_argument("--json", action="store_true")

    batch = sub.add_parser(
        "batch",
        help="run a batch of engine query specs (JSON) over one dataset",
        description=(
            "Execute a JSON array of query specs against a repro.engine "
            "session: the R-tree is built once, results are cached in an "
            "LRU keyed by dataset fingerprint, and --workers fans the "
            "batch out over worker processes with deterministic ordering. "
            'Spec example: [{"kind": "prsq", "q": [5000, 5000], '
            '"alpha": 0.5, "want": "non_answers"}, {"kind": "causality", '
            '"an": "42", "q": [5000, 5000], "alpha": 0.5}]'
        ),
    )
    batch.add_argument("--data", required=True, help="dataset CSV")
    batch.add_argument(
        "--dataset-kind",
        choices=["uncertain", "certain"],
        default="uncertain",
        help="CSV flavour of --data (default: uncertain, long format)",
    )
    batch.add_argument(
        "--queries", required=True, help="JSON file: array of query specs"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial, default)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache capacity (default 4096; 0 disables caching)",
    )
    batch.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write one NDJSON span tree per query to FILE and add a "
        "run.phases breakdown to every envelope",
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="STR-partition the dataset into K spatial shards; filter "
        "phases scatter-gather per shard with bit-identical results "
        "(default 1 = unsharded)",
    )
    out_fmt = batch.add_mutually_exclusive_group()
    out_fmt.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON array of typed result envelopes",
    )
    out_fmt.add_argument(
        "--stream",
        action="store_true",
        help="emit NDJSON: one envelope per line, flushed incrementally",
    )

    stats = sub.add_parser(
        "stats",
        help="run a batch and print the metrics-registry snapshot",
        description=(
            "Execute the same JSON query-spec batch the batch subcommand "
            "takes, then print the process-global repro.obs metrics "
            "snapshot (per-family query counts and latency histograms, "
            "result-cache hit/miss counters, R-tree node accesses) as one "
            "JSON object instead of the per-query envelopes."
        ),
    )
    stats.add_argument("--data", required=True, help="dataset CSV")
    stats.add_argument(
        "--dataset-kind",
        choices=["uncertain", "certain"],
        default="uncertain",
        help="CSV flavour of --data (default: uncertain, long format)",
    )
    stats.add_argument(
        "--queries", required=True, help="JSON file: array of query specs"
    )
    stats.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial, default)",
    )
    stats.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache capacity (default 4096; 0 disables caching)",
    )
    stats.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="STR-partition the dataset into K spatial shards (shard "
        "counters/gauges appear in the metrics snapshot; default 1)",
    )

    update = sub.add_parser(
        "update",
        help="apply an NDJSON stream of live updates (and interleaved queries)",
        description=(
            "Run a live session over --data: every line of --ops is one op "
            '(shorthand {"op": "insert", "id": "x", "samples": [[1, 2]]} / '
            '{"op": "delete", "id": "x"}) or one query-spec dict '
            '({"kind": "prsq", ...}), executed in order with incremental '
            "dataset patching (no per-op O(n) rebuild).  Emits one NDJSON "
            "envelope per line; --out writes the final dataset."
        ),
    )
    update.add_argument("--data", required=True, help="dataset CSV")
    update.add_argument(
        "--dataset-kind",
        choices=["uncertain", "certain"],
        default="uncertain",
        help="CSV flavour of --data (default: uncertain, long format)",
    )
    update.add_argument(
        "--ops",
        required=True,
        help="NDJSON file: one op or query spec per line ('-' for stdin)",
    )
    update.add_argument(
        "--out", default=None, help="write the final dataset to this CSV"
    )
    update.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache capacity (default 4096; 0 disables caching)",
    )

    serve = sub.add_parser(
        "serve",
        help="host live dataset(s) over the NDJSON/HTTP query server",
        description=(
            "Run the repro.serve asyncio server: named live sessions with "
            "snapshot-isolated concurrent reads, a single-writer update "
            "queue per dataset, a shared LRU result cache, and bounded "
            "admission (overload answers a structured 'overloaded' "
            "envelope with retry_after_s, never a dropped connection). "
            "NDJSON protocol and HTTP/1.1 POST share one port. "
            "Stops gracefully on SIGINT/SIGTERM."
        ),
    )
    serve.add_argument(
        "--data",
        action="append",
        required=True,
        metavar="[NAME=]CSV",
        help="dataset to host (repeatable); bare paths get name 'default'",
    )
    serve.add_argument(
        "--dataset-kind",
        choices=["uncertain", "certain"],
        default="uncertain",
        help="CSV flavour of every --data (default: uncertain, long format)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7733,
                       help="TCP port (0 binds a free one; default 7733)")
    serve.add_argument("--threads", type=int, default=4,
                       help="query worker threads (default 4)")
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="shared LRU result-cache capacity (default 4096; 0 disables)",
    )
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrently executing queries (default 8)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission queue depth before shedding (default 64)")
    serve.add_argument("--write-queue", type=int, default=128,
                       help="pending mutations per dataset (default 128)")
    serve.add_argument("--per-connection", type=int, default=32,
                       help="in-flight requests per connection (default 32)")
    serve.add_argument("--no-numpy", action="store_true",
                       help="use the scalar engine instead of packed kernels")
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="STR-partition every hosted dataset into K spatial shards "
        "(snapshot publication and results unchanged; default 1)",
    )
    serve.add_argument(
        "--fault-plan",
        metavar="SEED|JSON|FILE",
        help="install a deterministic fault-injection plan (chaos testing "
        "only): an integer seed generates one, inline JSON or a JSON file "
        "spells one out; REPRO_FAULT_PLAN is the env equivalent",
    )

    from repro.analysis.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis AST invariant linter",
        description=(
            "Statically check the codebase's determinism, concurrency, "
            "cache-discipline, and API-hygiene contracts (rules RPR001-"
            "RPR303; '# repro: ignore[RPRxxx]' suppresses one line and "
            "errors when unused).  Exit codes: 0 clean, 1 findings, "
            "2 usage/config error."
        ),
    )
    add_lint_arguments(lint)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "certain":
        dataset = generate_certain_dataset(
            args.n,
            args.dims,
            distribution=args.distribution or "independent",
            seed=args.seed,
        )
        save_certain_csv(dataset, args.out)
    else:
        dataset = generate_uncertain_dataset(
            args.n,
            args.dims,
            center_distribution=args.distribution or "uniform",
            radius_range=(0.0, args.radius),
            seed=args.seed,
        )
        save_uncertain_csv(dataset, args.out)
    print(f"wrote {args.kind} dataset: n={args.n} dims={args.dims} -> {args.out}")
    return 0


def _cmd_prsq(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    probabilities = prsq_probabilities(dataset, args.q)
    answers = 0
    for oid in dataset.ids():
        pr = probabilities[oid]
        tag = "answer" if pr >= args.alpha else "non-answer"
        answers += tag == "answer"
        print(f"{oid}\t{pr:.6f}\t{tag}")
    print(
        f"# {answers} answers / {len(dataset) - answers} non-answers "
        f"at alpha={args.alpha}",
        file=sys.stderr,
    )
    return 0


def _print_cause_lines(answer) -> None:
    """Ranked cause lines for a CausalityAnswer envelope payload."""
    kinds = {record.id: record.kind for record in answer.causes}
    for oid, resp in answer.ranked():
        print(f"  {oid}\tresponsibility={resp:.6f}\t{kinds[oid]}")


def _print_result(result: CausalityResult, as_json: bool) -> None:
    from repro.api.results import CausalityAnswer

    answer = CausalityAnswer.from_raw(result)
    if as_json:
        print(json.dumps(answer.to_dict(), indent=2))
        return
    print(f"causes for non-answer {answer.an!r}:")
    _print_cause_lines(answer)
    print(
        f"# {answer.stats.node_accesses} node accesses, "
        f"{answer.stats.cpu_time_s * 1e3:.2f} ms",
        file=sys.stderr,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    result = compute_causality(dataset, args.an, args.q, args.alpha)
    _print_result(result, args.json)
    return 0


def _cmd_explain_certain(args: argparse.Namespace) -> int:
    dataset = load_certain_csv(args.data)
    result = compute_causality_certain(dataset, args.an, args.q)
    _print_result(result, args.json)
    return 0


def _print_envelope_text(envelope) -> None:
    """Human-readable rendering of one typed result envelope."""
    from repro.api.results import (
        CausalityAnswer,
        PRSQResult,
        ReverseKSkybandResult,
        ReverseSkylineResult,
        ReverseTopKResult,
    )

    if envelope.error is not None:
        error = envelope.error
        print(f"[error] {envelope.spec.describe()}")
        print(f"  {error.type}: {error.message} [code={error.code}]")
        return
    tag = "cached" if envelope.run.cached else "computed"
    print(f"[{tag}] {envelope.spec.describe()}")
    value = envelope.value
    if isinstance(value, CausalityAnswer):
        _print_cause_lines(value)
    elif isinstance(value, PRSQResult) and value.probabilities is not None:
        for oid in sorted(value.probabilities, key=repr):
            print(f"  {oid}\t{value.probabilities[oid]:.6f}")
    elif isinstance(
        value, (PRSQResult, ReverseSkylineResult, ReverseKSkybandResult)
    ):
        print(f"  {len(value.ids)} object(s): {', '.join(map(str, value.ids))}")
    elif isinstance(value, ReverseTopKResult):
        print(
            f"  {len(value.user_ids)} user(s): "
            f"{', '.join(map(str, value.user_ids))}"
        )
    else:  # runtime-registered family: fall back to its dict form
        print(f"  {json.dumps(value.to_dict())}")


def _mute_stdout() -> None:
    """Point stdout at /dev/null after a broken pipe.

    The consumer is gone; anything further written to the real fd would
    raise again (including the interpreter's implicit flush at exit), so
    swap the fd out once and let the remaining prints go nowhere.
    """
    import os

    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
    except OSError:
        pass


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.api import Client
    from repro.engine import ParallelExecutor, Session, spec_from_dict

    if args.dataset_kind == "certain":
        dataset = load_certain_csv(args.data)
    else:
        dataset = load_uncertain_csv(args.data)

    payload = json.loads(Path(args.queries).read_text())
    if not isinstance(payload, list):
        raise ValueError(
            f"{args.queries}: expected a JSON array of query specs"
        )
    specs = [spec_from_dict(item) for item in payload]

    no_cache = args.no_cache or args.cache_size <= 0
    executor = (
        ParallelExecutor(workers=args.workers, cache_size=0 if no_cache else args.cache_size)
        if args.workers > 1
        else None
    )
    tracer = (
        obs.Tracer.to_path(args.trace) if args.trace is not None else None
    )
    # With a parallel executor the workers build their own sessions (and
    # indexes); the parent session only validates specs, so skip its eager
    # bulk load — the R-tree is still built lazily if a serial fallback runs.
    client = Client(
        Session(
            dataset,
            cache_size=0 if no_cache else args.cache_size,
            build_index=executor is None,
            tracer=tracer,
            shards=args.shards,
        )
    )
    batch = client.batch().extend(specs)

    started = time.perf_counter()
    total = hits = failures = 0
    stopped: Optional[str] = None
    try:
        if args.stream:
            # NDJSON: one envelope per line, flushed as each result lands;
            # only counters are retained, so memory stays flat on long
            # batches.
            for envelope in batch.stream(
                workers=args.workers, executor=executor
            ):
                print(json.dumps(envelope.to_dict()), flush=True)
                total += 1
                hits += envelope.run.cached
                failures += not envelope.ok
        else:
            envelopes = batch.run(workers=args.workers, executor=executor)
            total = len(envelopes)
            hits = sum(e.run.cached for e in envelopes)
            failures = sum(not e.ok for e in envelopes)
            if args.json:
                print(json.dumps([e.to_dict() for e in envelopes], indent=2))
            else:
                for envelope in envelopes:
                    _print_envelope_text(envelope)
    except KeyboardInterrupt:
        # Same discipline as the server's SIGINT path: every envelope
        # already printed stays valid NDJSON (each line was flushed
        # whole), nothing half-written is emitted after this point.
        stopped = "interrupted (SIGINT)"
    except BrokenPipeError:
        stopped = "output pipe closed"
        _mute_stdout()
    finally:
        # The one shutdown path, normal or not: flush-and-close the
        # tracer's owned NDJSON sink so buffered spans hit disk.
        client.close()
        try:
            sys.stdout.flush()
        except (BrokenPipeError, ValueError, OSError):
            _mute_stdout()
    elapsed = max(time.perf_counter() - started, 1e-9)

    if executor is None:
        stats = client.cache_stats()
        cache_note = f"cache hits={stats['hits']} misses={stats['misses']}"
    else:
        # Merged per-worker deltas: cold-cache regressions stay visible
        # even though each worker holds a private cache.
        merged = executor.last_cache_stats
        cache_note = (
            "worker caches (merged) "
            f"hits={merged.hits} misses={merged.misses} "
            f"evictions={merged.evictions}"
            if merged is not None
            else f"worker-local caches, {hits} cached outcome(s)"
        )
    failure_note = f", {failures} failed" if failures else ""
    trace_note = f", trace -> {args.trace}" if args.trace is not None else ""
    stop_note = f", stopped early: {stopped}" if stopped else ""
    shard_note = f", shards={args.shards}" if args.shards > 1 else ""
    print(
        f"# {total} queries in {elapsed:.3f}s "
        f"({total / elapsed:.1f} q/s), workers={args.workers}"
        f"{shard_note}, "
        f"{cache_note}{failure_note}{trace_note}{stop_note}",
        file=sys.stderr,
    )
    if stopped is not None:
        return 130 if "SIGINT" in stopped else 1
    return 1 if failures else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.api import Client
    from repro.engine import ParallelExecutor, Session, spec_from_dict

    if args.dataset_kind == "certain":
        dataset = load_certain_csv(args.data)
    else:
        dataset = load_uncertain_csv(args.data)

    payload = json.loads(Path(args.queries).read_text())
    if not isinstance(payload, list):
        raise ValueError(
            f"{args.queries}: expected a JSON array of query specs"
        )
    specs = [spec_from_dict(item) for item in payload]

    executor = (
        ParallelExecutor(workers=args.workers, cache_size=args.cache_size)
        if args.workers > 1
        else None
    )
    client = Client(
        Session(
            dataset,
            cache_size=max(args.cache_size, 0),
            build_index=executor is None,
            shards=args.shards,
        )
    )
    # Reset first so the snapshot reflects exactly this batch (parallel
    # worker deltas merge back into the same registry).  The shard gauge
    # is re-stated post-reset so the snapshot still reports the topology.
    obs.registry().reset()
    if client.shard_count > 1:
        obs.registry().gauge("shard.count").set(client.shard_count)
    started = time.perf_counter()
    envelopes = (
        client.batch()
        .extend(specs)
        .run(workers=args.workers, executor=executor)
    )
    elapsed = max(time.perf_counter() - started, 1e-9)
    failures = sum(not e.ok for e in envelopes)

    print(json.dumps(obs.registry().snapshot(), indent=2, sort_keys=True))
    shard_note = f", shards={args.shards}" if args.shards > 1 else ""
    print(
        f"# {len(envelopes)} queries in {elapsed:.3f}s, "
        f"workers={args.workers}{shard_note}"
        f"{f', {failures} failed' if failures else ''}",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _op_line_spec(item: dict):
    """One NDJSON line -> an executable spec (shorthand op or spec dict)."""
    from repro.api import decode_value
    from repro.engine import UpdateSpec, spec_from_dict

    if not isinstance(item, dict):
        raise ValueError(f"each ops line must be a JSON object, got {item!r}")
    if "kind" in item:
        return spec_from_dict(item)
    op = item.get("op")
    if op == "delete":
        return UpdateSpec(deletes=(decode_value(item["id"]),))
    if op in ("insert", "update"):
        entry = (
            decode_value(item["id"]),
            item["samples"],
            item.get("probabilities"),
            item.get("name"),
        )
        if op == "insert":
            return UpdateSpec(inserts=(entry,))
        return UpdateSpec(updates=(entry,))
    raise ValueError(
        f"ops line needs 'kind' or 'op' in insert|update|delete, got {item!r}"
    )


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.api.results import QueryResult
    from repro.engine import Session
    from repro.engine.executor import _execute_captured
    from repro.io.csvio import save_certain_csv, save_uncertain_csv

    if args.dataset_kind == "certain":
        dataset = load_certain_csv(args.data)
    else:
        dataset = load_uncertain_csv(args.data)
    session = Session(dataset, cache_size=max(args.cache_size, 0))

    def parse(lineno: int, line: str):
        try:
            return _op_line_spec(json.loads(line))
        except (ReproError, KeyError, ValueError) as exc:
            raise ValueError(f"{args.ops}:{lineno}: {exc}") from exc

    if args.ops == "-":
        # stdin streams: specs parse lazily, one per incoming line
        specs = (
            (lineno, parse(lineno, line))
            for lineno, line in enumerate(sys.stdin, start=1)
            if line.strip()
        )
    else:
        # file input is fully in memory: prevalidate every line up front,
        # so a malformed line 50 fails before op 1 is applied (same
        # fail-the-batch-first contract as the batch subcommand)
        specs = [
            (lineno, parse(lineno, line))
            for lineno, line in enumerate(
                Path(args.ops).read_text().splitlines(), start=1
            )
            if line.strip()
        ]

    started = time.perf_counter()
    total = updates = failures = 0
    abort: Optional[ValueError] = None
    try:
        for _lineno, spec in specs:
            outcome = _execute_captured(session, spec)
            envelope = QueryResult.from_outcome(
                outcome, fingerprint=session.fingerprint
            )
            print(json.dumps(envelope.to_dict()), flush=True)
            total += 1
            updates += envelope.ok and getattr(spec, "mutates", False)
            failures += not envelope.ok
    except ValueError as exc:
        # a malformed stdin line mid-stream: stop reading, but fall
        # through so already-acknowledged writes still reach --out
        abort = exc
    elapsed = max(time.perf_counter() - started, 1e-9)

    if args.out is not None:
        if args.dataset_kind == "certain":
            save_certain_csv(session.dataset, args.out)
        else:
            save_uncertain_csv(session.dataset, args.out)

    stats = session.cache_stats()
    print(
        f"# {total} op(s) ({updates} update(s)) in {elapsed:.3f}s, "
        f"dataset version={session.version} n={len(session.dataset)}, "
        f"cache hits={stats['hits']} misses={stats['misses']}"
        f"{f', {failures} failed' if failures else ''}"
        f"{f', wrote {args.out}' if args.out else ''}",
        file=sys.stderr,
    )
    if abort is not None:
        print(f"error: {abort}", file=sys.stderr)
        return 1
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.server import run as serve_run

    load = load_certain_csv if args.dataset_kind == "certain" else load_uncertain_csv
    datasets = {}
    for item in args.data:
        name, sep, path = item.partition("=")
        if not sep:
            name, path = "default", item
        if not name:
            raise ValueError(f"--data {item!r}: empty dataset name")
        if name in datasets:
            raise ValueError(f"--data: duplicate dataset name {name!r}")
        datasets[name] = load(path)

    fault_plan = None
    plan_text = args.fault_plan or os.environ.get("REPRO_FAULT_PLAN")
    if plan_text:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.parse(plan_text)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        threads=args.threads,
        cache_size=max(args.cache_size, 0),
        use_numpy=not args.no_numpy,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        write_queue=args.write_queue,
        per_connection=args.per_connection,
        shards=max(args.shards, 1),
        fault_plan=fault_plan,
    )

    def announce(server) -> None:
        names = ", ".join(
            f"{name} (n={len(ds)})" for name, ds in datasets.items()
        )
        shard_note = f" shards={config.shards}" if config.shards > 1 else ""
        print(
            f"# serving {names} on {config.host}:{server.port} "
            f"[threads={config.threads} max_inflight={config.max_inflight} "
            f"max_queue={config.max_queue}{shard_note}] — "
            "NDJSON + HTTP, Ctrl-C stops",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(serve_run(datasets, config, on_start=announce))
    except KeyboardInterrupt:
        # signal handlers normally absorb SIGINT for a graceful drain;
        # this is the fallback (e.g. non-main-thread loops)
        return 130
    except OSError as exc:
        # Bind failures (port in use, privileged port, bad host) are an
        # operator error, not a crash: one line, exit 2, no traceback.
        print(
            f"error: cannot bind {config.host}:{config.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    print("# server stopped", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "prsq": _cmd_prsq,
    "explain": _cmd_explain,
    "explain-certain": _cmd_explain_certain,
    "batch": _cmd_batch,
    "stats": _cmd_stats,
    "update": _cmd_update,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        # Lint owns its exit-code contract (0 clean / 1 findings / 2
        # usage-or-config error); the broad catcher below would fold a
        # config error into 1.
        return _cmd_lint(args)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
