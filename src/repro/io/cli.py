"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro generate --kind uncertain --n 500 --dims 2 --out data.csv
    python -m repro prsq     --data data.csv --q 5000 5000 --alpha 0.5
    python -m repro explain  --data data.csv --q 5000 5000 --alpha 0.5 --an 42
    python -m repro explain-certain --data cars.csv --q 11580 49000 --an an-7510-10180
    python -m repro batch    --data data.csv --queries queries.json --workers 4

``generate`` writes a synthetic dataset; ``prsq`` lists answers and
non-answers with probabilities; ``explain`` runs algorithm CP on one
non-answer (``explain-certain`` runs CR on certain data); ``batch`` runs a
JSON file of query specs through the :mod:`repro.engine` session with
optional multiprocess fan-out and result caching.  JSON output is selected
by the file extension of ``--out`` / by ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.core.model import CausalityResult
from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.exceptions import ReproError
from repro.io.csvio import (
    load_certain_csv,
    load_uncertain_csv,
    save_certain_csv,
    save_uncertain_csv,
)
from repro.io.jsonio import result_to_dict
from repro.prsq.query import prsq_probabilities


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Causality & responsibility for probabilistic reverse skyline "
            "query non-answers (Gao et al., TKDE 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset as CSV")
    gen.add_argument("--kind", choices=["uncertain", "certain"], default="uncertain")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--dims", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--distribution",
        default=None,
        help="certain: independent/correlated/anticorrelated/clustered; "
        "uncertain: uniform/skew center distribution",
    )
    gen.add_argument("--radius", type=float, default=75.0,
                     help="uncertain only: maximum region radius")
    gen.add_argument("--out", required=True)

    prsq = sub.add_parser("prsq", help="run the probabilistic reverse skyline query")
    prsq.add_argument("--data", required=True, help="uncertain CSV (long format)")
    prsq.add_argument("--q", type=float, nargs="+", required=True)
    prsq.add_argument("--alpha", type=float, default=0.5)

    explain = sub.add_parser("explain", help="algorithm CP on one non-answer")
    explain.add_argument("--data", required=True, help="uncertain CSV (long format)")
    explain.add_argument("--q", type=float, nargs="+", required=True)
    explain.add_argument("--alpha", type=float, default=0.5)
    explain.add_argument("--an", required=True, help="non-answer object id")
    explain.add_argument("--json", action="store_true")

    explain_c = sub.add_parser(
        "explain-certain", help="algorithm CR on one certain-data non-answer"
    )
    explain_c.add_argument("--data", required=True, help="certain CSV (wide format)")
    explain_c.add_argument("--q", type=float, nargs="+", required=True)
    explain_c.add_argument("--an", required=True, help="non-answer object id")
    explain_c.add_argument("--json", action="store_true")

    batch = sub.add_parser(
        "batch",
        help="run a batch of engine query specs (JSON) over one dataset",
        description=(
            "Execute a JSON array of query specs against a repro.engine "
            "session: the R-tree is built once, results are cached in an "
            "LRU keyed by dataset fingerprint, and --workers fans the "
            "batch out over worker processes with deterministic ordering. "
            'Spec example: [{"kind": "prsq", "q": [5000, 5000], '
            '"alpha": 0.5, "want": "non_answers"}, {"kind": "causality", '
            '"an": "42", "q": [5000, 5000], "alpha": 0.5}]'
        ),
    )
    batch.add_argument("--data", required=True, help="dataset CSV")
    batch.add_argument(
        "--dataset-kind",
        choices=["uncertain", "certain"],
        default="uncertain",
        help="CSV flavour of --data (default: uncertain, long format)",
    )
    batch.add_argument(
        "--queries", required=True, help="JSON file: array of query specs"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial, default)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache capacity (default 4096; 0 disables caching)",
    )
    batch.add_argument("--json", action="store_true")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "certain":
        dataset = generate_certain_dataset(
            args.n,
            args.dims,
            distribution=args.distribution or "independent",
            seed=args.seed,
        )
        save_certain_csv(dataset, args.out)
    else:
        dataset = generate_uncertain_dataset(
            args.n,
            args.dims,
            center_distribution=args.distribution or "uniform",
            radius_range=(0.0, args.radius),
            seed=args.seed,
        )
        save_uncertain_csv(dataset, args.out)
    print(f"wrote {args.kind} dataset: n={args.n} dims={args.dims} -> {args.out}")
    return 0


def _cmd_prsq(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    probabilities = prsq_probabilities(dataset, args.q)
    answers = 0
    for oid in dataset.ids():
        pr = probabilities[oid]
        tag = "answer" if pr >= args.alpha else "non-answer"
        answers += tag == "answer"
        print(f"{oid}\t{pr:.6f}\t{tag}")
    print(
        f"# {answers} answers / {len(dataset) - answers} non-answers "
        f"at alpha={args.alpha}",
        file=sys.stderr,
    )
    return 0


def _print_cause_lines(result: CausalityResult) -> None:
    for oid, resp in result.ranked():
        cause = result.causes[oid]
        print(f"  {oid}\tresponsibility={resp:.6f}\t{cause.kind.value}")


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result_to_dict(result), indent=2))
        return
    print(f"causes for non-answer {result.an_oid!r}:")
    _print_cause_lines(result)
    print(
        f"# {result.stats.node_accesses} node accesses, "
        f"{result.stats.cpu_time_s * 1e3:.2f} ms",
        file=sys.stderr,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_uncertain_csv(args.data)
    result = compute_causality(dataset, args.an, args.q, args.alpha)
    _print_result(result, args.json)
    return 0


def _cmd_explain_certain(args: argparse.Namespace) -> int:
    dataset = load_certain_csv(args.data)
    result = compute_causality_certain(dataset, args.an, args.q)
    _print_result(result, args.json)
    return 0


def _value_to_jsonable(value):
    if isinstance(value, CausalityResult):
        return result_to_dict(value)
    if isinstance(value, dict):
        return {str(k): v for k, v in value.items()}
    return value


def _print_outcome_text(outcome) -> None:
    if outcome.error is not None:
        print(f"[error] {outcome.spec.describe()}")
        print(f"  {outcome.error}")
        return
    tag = "cached" if outcome.cached else "computed"
    print(f"[{tag}] {outcome.spec.describe()}")
    value = outcome.value
    if isinstance(value, CausalityResult):
        _print_cause_lines(value)
    elif isinstance(value, dict):
        for oid in sorted(value, key=repr):
            print(f"  {oid}\t{value[oid]:.6f}")
    elif isinstance(value, list):
        print(f"  {len(value)} object(s): {', '.join(map(str, value))}")
    else:
        print(f"  {value}")


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine import (
        ParallelExecutor,
        Session,
        spec_from_dict,
        spec_to_dict,
    )

    if args.dataset_kind == "certain":
        dataset = load_certain_csv(args.data)
    else:
        dataset = load_uncertain_csv(args.data)

    payload = json.loads(Path(args.queries).read_text())
    if not isinstance(payload, list):
        raise ValueError(
            f"{args.queries}: expected a JSON array of query specs"
        )
    specs = [spec_from_dict(item) for item in payload]

    no_cache = args.no_cache or args.cache_size <= 0
    executor = (
        ParallelExecutor(workers=args.workers, cache_size=0 if no_cache else args.cache_size)
        if args.workers > 1
        else None
    )
    # With a parallel executor the workers build their own sessions (and
    # indexes); the parent session only validates specs, so skip its eager
    # bulk load — the R-tree is still built lazily if a serial fallback runs.
    session = Session(
        dataset,
        cache_size=0 if no_cache else args.cache_size,
        build_index=executor is None,
    )

    started = time.perf_counter()
    outcomes = session.execute_batch(specs, executor=executor)
    elapsed = max(time.perf_counter() - started, 1e-9)

    if args.json:
        print(
            json.dumps(
                [
                    {
                        "spec": spec_to_dict(outcome.spec),
                        "cached": outcome.cached,
                        "elapsed_s": outcome.elapsed_s,
                        "error": outcome.error,
                        "value": _value_to_jsonable(outcome.value),
                    }
                    for outcome in outcomes
                ],
                indent=2,
            )
        )
    else:
        for outcome in outcomes:
            _print_outcome_text(outcome)
    if executor is None:
        stats = session.cache_stats()
        cache_note = f"cache hits={stats['hits']} misses={stats['misses']}"
    else:
        hits = sum(outcome.cached for outcome in outcomes)
        cache_note = f"worker-local caches, {hits} cached outcome(s)"
    failures = sum(not outcome.ok for outcome in outcomes)
    failure_note = f", {failures} failed" if failures else ""
    print(
        f"# {len(outcomes)} queries in {elapsed:.3f}s "
        f"({len(outcomes) / elapsed:.1f} q/s), workers={args.workers}, "
        f"{cache_note}{failure_note}",
        file=sys.stderr,
    )
    return 1 if failures else 0


_COMMANDS = {
    "generate": _cmd_generate,
    "prsq": _cmd_prsq,
    "explain": _cmd_explain,
    "explain-certain": _cmd_explain_certain,
    "batch": _cmd_batch,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
