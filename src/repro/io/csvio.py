"""CSV import/export for certain and uncertain datasets.

Certain datasets use a wide format — one row per object::

    id,attr0,attr1,...

Uncertain datasets use a long format — one row per sample::

    id,probability,attr0,attr1,...

Rows sharing an ``id`` form one uncertain object; probabilities must sum
to 1 per object (validated by :class:`~repro.uncertain.object.
UncertainObject` on load).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Hashable, List, Union

import numpy as np

from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject

PathLike = Union[str, Path]


def save_certain_csv(dataset: CertainDataset, path: PathLike) -> None:
    """Write a certain dataset as ``id,attr0,...`` rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id"] + [f"attr{i}" for i in range(dataset.dims)])
        for obj in dataset:
            writer.writerow([obj.oid] + [repr(float(v)) for v in obj.samples[0]])


def load_certain_csv(path: PathLike) -> CertainDataset:
    """Read a certain dataset written by :func:`save_certain_csv`."""
    path = Path(path)
    ids: List[Hashable] = []
    points: List[List[float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[0] != "id":
            raise ValueError(f"{path}: expected header starting with 'id'")
        for row in reader:
            if not row:
                continue
            ids.append(row[0])
            points.append([float(v) for v in row[1:]])
    if not points:
        raise ValueError(f"{path}: no data rows")
    return CertainDataset(np.array(points), ids=ids)


def save_uncertain_csv(dataset: UncertainDataset, path: PathLike) -> None:
    """Write an uncertain dataset as ``id,probability,attr0,...`` rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["id", "probability"] + [f"attr{i}" for i in range(dataset.dims)]
        )
        for obj in dataset:
            for i in range(obj.num_samples):
                writer.writerow(
                    [obj.oid, repr(float(obj.probabilities[i]))]
                    + [repr(float(v)) for v in obj.samples[i]]
                )


def load_uncertain_csv(path: PathLike) -> UncertainDataset:
    """Read an uncertain dataset written by :func:`save_uncertain_csv`.

    Rows are grouped by their ``id`` column in first-appearance order.
    """
    path = Path(path)
    samples: Dict[str, List[List[float]]] = {}
    probs: Dict[str, List[float]] = {}
    order: List[str] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["id", "probability"]:
            raise ValueError(
                f"{path}: expected header starting with 'id,probability'"
            )
        for row in reader:
            if not row:
                continue
            oid = row[0]
            if oid not in samples:
                samples[oid] = []
                probs[oid] = []
                order.append(oid)
            probs[oid].append(float(row[1]))
            samples[oid].append([float(v) for v in row[2:]])
    if not order:
        raise ValueError(f"{path}: no data rows")
    objects = [
        UncertainObject(oid, np.array(samples[oid]), probs[oid]) for oid in order
    ]
    return UncertainDataset(objects)
