"""JSON import/export and in-memory (de)serialization for datasets and
causality results.

The JSON shape is self-describing::

    {
      "kind": "uncertain",
      "dims": 2,
      "objects": [
        {"id": "a", "name": null,
         "samples": [[1.0, 2.0], [1.5, 2.5]],
         "probabilities": [0.5, 0.5]},
        ...
      ]
    }

Causality results serialize to::

    {"an": "...", "alpha": 0.5,
     "causes": [{"id": ..., "responsibility": ..., "kind": ...,
                 "contingency_set": [...]}],
     "stats": {...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.model import CausalityResult
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject

PathLike = Union[str, Path]


def dataset_to_dict(dataset: UncertainDataset) -> Dict:
    """JSON-ready dict for a dataset (certain datasets marked as such)."""
    kind = "certain" if isinstance(dataset, CertainDataset) else "uncertain"
    return {
        "kind": kind,
        "dims": dataset.dims,
        "objects": [
            {
                "id": obj.oid,
                "name": obj.name,
                "samples": obj.samples.tolist(),
                "probabilities": obj.probabilities.tolist(),
            }
            for obj in dataset
        ],
    }


def dataset_from_dict(payload: Dict) -> UncertainDataset:
    """Inverse of :func:`dataset_to_dict`."""
    kind = payload.get("kind")
    if kind not in ("certain", "uncertain"):
        raise ValueError(f"unknown dataset kind {kind!r}")
    objects = [
        UncertainObject(
            item["id"],
            item["samples"],
            item.get("probabilities"),
            name=item.get("name"),
        )
        for item in payload["objects"]
    ]
    if kind == "certain":
        if not all(obj.is_certain for obj in objects):
            raise ValueError("certain dataset contains multi-sample objects")
        return CertainDataset(
            [obj.samples[0] for obj in objects],
            ids=[obj.oid for obj in objects],
            names=[obj.name for obj in objects],
        )
    return UncertainDataset(objects)


def save_dataset_json(dataset: UncertainDataset, path: PathLike) -> None:
    Path(path).write_text(json.dumps(dataset_to_dict(dataset), indent=2))


def load_dataset_json(path: PathLike) -> UncertainDataset:
    return dataset_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: CausalityResult) -> Dict:
    """JSON-ready dict for a causality result.

    Delegates to the :class:`repro.api.results.CausalityAnswer` codec (the
    same wire shape the batch envelopes carry), so there is exactly one
    JSON form for causality output across the library.
    """
    from repro.api.results import CausalityAnswer

    return CausalityAnswer.from_raw(result).to_dict()


def result_from_dict(payload: Dict) -> CausalityResult:
    """Inverse of :func:`result_to_dict`."""
    from repro.api.results import CausalityAnswer

    return CausalityAnswer.from_dict(payload).to_raw()


def save_result_json(result: CausalityResult, path: PathLike) -> None:
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result_json(path: PathLike) -> CausalityResult:
    return result_from_dict(json.loads(Path(path).read_text()))
