"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
``except ReproError`` to catch any failure coming from this package while
letting programming errors (``TypeError`` and friends raised by Python
itself) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DimensionalityError(ReproError):
    """Two geometric arguments disagree on the number of dimensions."""

    def __init__(self, expected: int, actual: int, what: str = "argument"):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{what} has {actual} dimension(s), expected {expected}"
        )


class InvalidProbabilityError(ReproError):
    """A probability or probability vector is outside [0, 1] / not normalized."""


class NotANonAnswerError(ReproError):
    """The designated object is actually an answer to the query.

    The causality and responsibility problem (Definitions 5 and 6 of the
    paper) is only defined for *non-answers*; asking for the causes of an
    answer is a caller error that we surface explicitly rather than
    returning an empty-but-plausible result.
    """


class EmptyDatasetError(ReproError):
    """An operation that requires at least one object received none."""


class IndexError_(ReproError):
    """An R-tree structural invariant was violated (corrupt index)."""


class SpecMismatchError(ReproError, TypeError):
    """A query spec was executed against the wrong kind of session.

    Also a :class:`TypeError`: the spec/session pairing is a type-level
    contract, and callers may reasonably catch it as such.
    """
