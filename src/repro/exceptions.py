"""Exception hierarchy and error taxonomy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
``except ReproError`` to catch any failure coming from this package while
letting programming errors (``TypeError`` and friends raised by Python
itself) propagate.

Every class carries a stable machine-readable ``code`` that the API layer
serializes into failed :class:`repro.api.results.QueryResult` envelopes.
:func:`error_code` maps *any* exception — including builtins that leak out
of query execution, like the ``KeyError`` for an unknown object id — onto
this taxonomy, so batch consumers can branch on codes instead of parsing
message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""

    code: str = "repro_error"


class DimensionalityError(ReproError):
    """Two geometric arguments disagree on the number of dimensions."""

    code = "dimensionality_mismatch"

    def __init__(self, expected: int, actual: int, what: str = "argument"):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{what} has {actual} dimension(s), expected {expected}"
        )


class InvalidProbabilityError(ReproError):
    """A probability or probability vector is outside [0, 1] / not normalized."""

    code = "invalid_probability"


class NotANonAnswerError(ReproError):
    """The designated object is actually an answer to the query.

    The causality and responsibility problem (Definitions 5 and 6 of the
    paper) is only defined for *non-answers*; asking for the causes of an
    answer is a caller error that we surface explicitly rather than
    returning an empty-but-plausible result.
    """

    code = "not_a_non_answer"


class EmptyDatasetError(ReproError):
    """An operation that requires at least one object received none."""

    code = "empty_dataset"


class IndexError_(ReproError):
    """An R-tree structural invariant was violated (corrupt index)."""

    code = "index_corrupt"


class SpecMismatchError(ReproError, TypeError):
    """A query spec was executed against the wrong kind of session.

    Also a :class:`TypeError`: the spec/session pairing is a type-level
    contract, and callers may reasonably catch it as such.
    """

    code = "spec_mismatch"


class InvalidSpecError(ReproError, ValueError):
    """A query spec payload is malformed (bad field, bad value, bad shape).

    Also a :class:`ValueError` so pre-taxonomy callers that catch
    ``ValueError`` around :func:`repro.engine.spec.spec_from_dict` keep
    working.
    """

    code = "invalid_spec"


class UnknownQueryKindError(InvalidSpecError):
    """A spec payload names a query kind absent from the registry."""

    code = "unknown_query_kind"


class UnknownObjectError(ReproError, KeyError):
    """A query references an object id the dataset does not contain.

    Also a :class:`KeyError` for pre-taxonomy callers.
    """

    code = "unknown_object"

    def __str__(self) -> str:  # KeyError repr-quotes its message
        return self.args[0] if self.args else ""


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""

    code = "serve_error"


class OverloadedError(ServeError):
    """The server refused admission: queue bound or write queue exceeded.

    Carries a ``retry_after_s`` hint (the server's estimate of when a
    retry is likely to be admitted); serialized into the 429-style
    ``overloaded`` envelope / ``Retry-After`` HTTP header rather than
    dropping the connection.
    """

    code = "overloaded"

    def __init__(self, message: str = "server overloaded",
                 retry_after_s: float = 0.1):
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)


class DeadlineExceededError(ServeError):
    """A request's ``deadline_ms`` budget expired before it could finish.

    Raised at the resilience checkpoints — admission-queue wait, the
    engine dispatch point, the single-writer drain — so work that can no
    longer be useful is never started.  Serialized as a structured
    ``deadline_exceeded`` envelope (HTTP 504), never a dropped
    connection or a silently late answer.
    """

    code = "deadline_exceeded"


class DatasetDegradedError(ServeError):
    """The dataset's single writer has died; the dataset is read-only.

    Reads keep serving the last successfully published snapshot; every
    mutation is refused with this error until the server is restarted.
    Surfaced in ``/healthz``/``stats`` as ``status: "degraded"``.
    """

    code = "degraded"


class WorkerCrashError(ReproError):
    """A batch executor lost worker process(es) and recovery failed.

    The :class:`~repro.engine.executor.ParallelExecutor` respawns a
    crashed pool once and resubmits only the incomplete chunks; a second
    crash within the same batch raises this instead of hanging.
    """

    code = "worker_crash"


class FaultInjectionError(ReproError):
    """An injected fault fired (deterministic chaos testing only).

    Raised by :mod:`repro.faults` seams whose action is ``error`` — e.g.
    the ``writer.apply`` seam — never by production code paths.
    """

    code = "fault_injected"


class UnknownDatasetError(ServeError, KeyError):
    """A request names a dataset the service does not host."""

    code = "unknown_dataset"

    def __str__(self) -> str:  # KeyError repr-quotes its message
        return self.args[0] if self.args else ""


class RemoteProtocolError(ServeError):
    """The remote peer sent bytes that do not parse as protocol frames,
    or closed the connection mid-request."""

    code = "remote_protocol"


class InvalidRequestError(ServeError, ValueError):
    """A protocol request frame is malformed (bad op, missing field)."""

    code = "invalid_request"


class RemoteQueryError(ServeError):
    """A remote request or query failed server-side.

    Carries the *server's* taxonomy code (the instance ``code`` shadows
    the class attribute), so ``error_code`` on a re-raised remote failure
    reports what actually went wrong over there, not a generic wrapper.
    """

    code = "remote_query"

    def __init__(
        self,
        code: str = "remote_query",
        remote_type: str = "Exception",
        message: str = "",
    ):
        self.code = code
        self.remote_type = remote_type
        super().__init__(f"[{code}] {remote_type}: {message}")


# Codes for non-repro exceptions that can escape query execution.
_BUILTIN_CODES = (
    (KeyError, "unknown_key"),
    (ValueError, "invalid_value"),
    (TypeError, "type_error"),
    (OSError, "io_error"),
)


def error_code(exc: BaseException) -> str:
    """The stable taxonomy code for *exc* (``internal_error`` fallback)."""
    if isinstance(exc, ReproError):
        return exc.code
    for cls, code in _BUILTIN_CODES:
        if isinstance(exc, cls):
            return code
    return "internal_error"
