"""Algorithm CP — causality & responsibility for CR2PRSQ (Algorithm 1).

CP follows the paper's filter-and-refinement framework:

1. **Filter** (lines 1-8): build the Lemma-2 rectangle list from the
   non-answer's samples and collect candidate causes with one
   branch-and-bound R-tree traversal.
2. **Refine** (lines 9-24): peel off the ``α = 1`` shortcut, the must-
   include set ``Γ₁`` (Lemma 4) and the counterfactual causes (Lemma 5),
   then verify each remaining candidate with FMCS (Algorithm 2), reusing
   found sets across candidates via Lemma 6.

Every pruning strategy can be disabled individually through
:class:`CPConfig` for the ablation benchmarks; all configurations produce
identical causality output (property-tested), differing only in cost.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import find_candidate_causes
from repro.core.fmcs import find_minimal_contingency_set
from repro.core.lemmas import lemma6_propagate
from repro.core.model import Cause, CauseKind, CausalityResult, RunStats
from repro.geometry.point import PointLike, as_point
from repro.obs import span as _span
from repro.geometry.rectangle import Rect
from repro.prsq.oracle import MembershipOracle
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.pdf import ContinuousUncertainObject


@dataclass(frozen=True)
class CPConfig:
    """Strategy switches for algorithm CP (all on = the paper's CP)."""

    use_index: bool = True        # Lemma 2 R-tree filter vs linear scan
    use_lemma4: bool = True       # force Γ₁ into every trial set
    use_lemma5: bool = True       # exclude counterfactuals from pools
    use_lemma6: bool = True       # propagate found sets to pending candidates
    use_bound_prune: bool = True  # size-level survival-product bound (ours)

    @classmethod
    def naive_refinement(cls) -> "CPConfig":
        """The Naive-I refinement: plain subset enumeration, no lemmas."""
        return cls(use_index=True, use_lemma4=False, use_lemma5=False,
                   use_lemma6=False, use_bound_prune=False)


def compute_causality(
    dataset: UncertainDataset,
    an_oid: Hashable,
    q: PointLike,
    alpha: float,
    config: CPConfig = CPConfig(),
    windows: Optional[Sequence[Rect]] = None,
    use_numpy: Optional[bool] = None,
) -> CausalityResult:
    """Run algorithm CP for the non-answer *an_oid*.

    Parameters
    ----------
    dataset:
        The uncertain dataset ``P`` (R-tree built lazily on first use).
    an_oid:
        Id of the designated non-probabilistic-reverse-skyline object.
    q:
        The (certain) query object.
    alpha:
        Probability threshold in ``(0, 1]``.
    config:
        Strategy switches; defaults to full CP.
    windows:
        Optional override of the filter rectangles (used by the pdf-model
        front-end); defaults to the discrete per-sample rectangles.
    use_numpy:
        Evaluate the Lemma-1 confirmation and the oracle's Eq. (3) matrix
        through the tensorized kernels (default) or the scalar reference
        loops; both paths are bit-compatible, so the causality output is
        identical either way.

    Returns
    -------
    CausalityResult
        All actual causes with responsibilities, one minimal-contingency
        witness each, and cost counters.

    Raises
    ------
    repro.exceptions.NotANonAnswerError
        If *an_oid* is actually an answer at this ``alpha``.
    """
    started = time.perf_counter()
    qq = as_point(q, dims=dataset.dims)

    access_ctx = (
        dataset.access_stats.measure() if config.use_index else nullcontext()
    )
    with access_ctx as snapshot:
        with _span("filter", use_index=config.use_index) as filter_span:
            candidate_ids = find_candidate_causes(
                dataset,
                an_oid,
                qq,
                use_index=config.use_index,
                windows=windows,
                use_numpy=use_numpy,
            )
            filter_span.set(candidates=len(candidate_ids))
        with _span("refine", alpha=alpha) as refine_span:
            oracle = MembershipOracle(
                dataset, an_oid, qq, alpha, relevant_ids=candidate_ids,
                use_numpy=use_numpy,
            )
            oracle.validate_non_answer()
            result = _refine(oracle, config)
            refine_span.set(
                causes=len(result.causes),
                oracle_evaluations=oracle.evaluations,
            )

    result.stats.node_accesses = snapshot.node_accesses if snapshot else 0
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = len(oracle.influencer_ids)
    result.stats.oracle_evaluations = oracle.evaluations
    return result


def _refine(oracle: MembershipOracle, config: CPConfig) -> CausalityResult:
    """Refinement step (Algorithm 1 lines 9-24)."""
    alpha = oracle.alpha
    candidates: List[Hashable] = list(oracle.influencer_ids)
    result = CausalityResult(an_oid=oracle.an_oid, alpha=alpha)

    # α = 1 shortcut (lines 9-11): an is an answer only when *no* candidate
    # survives, so every candidate is a cause whose minimal contingency set
    # is all the other candidates.
    if alpha == 1.0:
        for oid in candidates:
            gamma = frozenset(c for c in candidates if c != oid)
            result.add(
                Cause(
                    oid=oid,
                    responsibility=1.0 / len(candidates),
                    contingency_set=gamma,
                    kind=(
                        CauseKind.COUNTERFACTUAL
                        if not gamma
                        else CauseKind.ACTUAL
                    ),
                )
            )
        return result

    # Lemma 4: Γ₁ — objects that every qualifying contingency set contains.
    gamma1: FrozenSet[Hashable] = (
        frozenset(oracle.certain_blockers()) if config.use_lemma4 else frozenset()
    )

    # Lemma 5 / lines 16-17: counterfactual causes, responsibility 1.
    counterfactuals = {
        oid for oid in candidates if oracle.is_answer({oid})
    }
    for oid in sorted(counterfactuals, key=repr):
        result.add(
            Cause(
                oid=oid,
                responsibility=1.0,
                contingency_set=frozenset(),
                kind=CauseKind.COUNTERFACTUAL,
            )
        )

    pending = [oid for oid in candidates if oid not in counterfactuals]
    # Lemma 6 state: candidate -> (achievable bound, witness set).
    bounds: Dict[Hashable, Tuple[int, FrozenSet[Hashable]]] = {}

    for position, cc in enumerate(pending):
        forced = gamma1 - {cc}
        excluded = set(forced) | {cc}
        if config.use_lemma5:
            excluded |= counterfactuals
        pool = [oid for oid in candidates if oid not in excluded]

        bound_entry = bounds.get(cc) if config.use_lemma6 else None
        known_bound = bound_entry[0] if bound_entry is not None else None

        outcome = find_minimal_contingency_set(
            oracle,
            cc,
            pool,
            gamma1=forced,
            known_bound=known_bound,
            use_bound_prune=config.use_bound_prune,
        )
        result.stats.subsets_examined += outcome.subsets_examined

        if outcome.gamma is not None:
            gamma = outcome.gamma
        elif bound_entry is not None:
            # Lines 23-24: nothing smaller exists, the Lemma-6 witness is
            # minimal.
            gamma = bound_entry[1]
        else:
            continue  # not an actual cause

        result.add(
            Cause(
                oid=cc,
                responsibility=1.0 / (1.0 + len(gamma)),
                contingency_set=gamma,
                kind=CauseKind.ACTUAL if gamma else CauseKind.COUNTERFACTUAL,
            )
        )

        if config.use_lemma6 and gamma:
            not_yet_verified = pending[position + 1 :]
            for member, witness in lemma6_propagate(
                oracle, cc, gamma, not_yet_verified
            ).items():
                size = len(witness)
                current = bounds.get(member)
                if current is None or size < current[0]:
                    bounds[member] = (size, witness)

    return result


def compute_causality_pdf(
    objects: Sequence[ContinuousUncertainObject],
    an_oid: Hashable,
    q: PointLike,
    alpha: float,
    samples_per_object: int = 64,
    rng: Optional[np.random.Generator] = None,
    config: CPConfig = CPConfig(),
    use_numpy: Optional[bool] = None,
) -> Tuple[CausalityResult, UncertainDataset]:
    """CP under the continuous pdf model (Section 3.2).

    The filter step uses the exact region geometry (farthest-corner
    rectangles per overlapped sub-quadrant of ``q``); the refinement step
    integrates probabilities by Monte-Carlo discretization with
    *samples_per_object* points per object.

    Returns the causality result together with the discretized dataset the
    probabilities were evaluated on.
    """
    rng = rng or np.random.default_rng(0)
    by_id = {obj.oid: obj for obj in objects}
    if an_oid not in by_id:
        raise KeyError(f"unknown pdf object {an_oid!r}")
    dataset = UncertainDataset(
        [obj.discretize(samples_per_object, rng) for obj in objects]
    )
    windows = by_id[an_oid].filter_rectangles(q)
    result = compute_causality(
        dataset, an_oid, q, alpha, config=config, windows=windows,
        use_numpy=use_numpy,
    )
    return result, dataset
