"""The paper's contribution: CP, CR, FMCS, and the causality model."""

from repro.core.candidates import (
    can_influence,
    filter_rectangles,
    find_candidate_causes,
)
from repro.core.cp import CPConfig, compute_causality, compute_causality_pdf
from repro.core.cr import compute_causality_certain
from repro.core.explain import (
    explain_with_oracle,
    minimal_repair_set,
    narrative,
    responsibility_groups,
    verify_repair,
    what_if,
)
from repro.core.fmcs import FMCSOutcome, find_minimal_contingency_set
from repro.core.model import Cause, CauseKind, CausalityResult, RunStats
from repro.core.naive import brute_force_causality, naive_i, naive_ii

__all__ = [
    "CPConfig",
    "Cause",
    "CauseKind",
    "CausalityResult",
    "FMCSOutcome",
    "RunStats",
    "brute_force_causality",
    "can_influence",
    "compute_causality",
    "compute_causality_certain",
    "compute_causality_pdf",
    "explain_with_oracle",
    "filter_rectangles",
    "find_candidate_causes",
    "find_minimal_contingency_set",
    "minimal_repair_set",
    "naive_i",
    "naive_ii",
    "narrative",
    "responsibility_groups",
    "verify_repair",
    "what_if",
]
