"""Algorithm CR — causality & responsibility for CRPRSQ (Section 4).

On certain data, Lemma 7 collapses the whole refinement step: every object
that dynamically dominates ``q`` w.r.t. the non-answer is an actual cause,
its minimal contingency set is all the *other* such objects, and therefore
every cause shares responsibility ``1/|C_c|`` (Equation (4)).  CR is a
single window query on the dataset R-tree followed by exact dominance
confirmation — time complexity ``O(|R_P|)``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Hashable, List, Optional

import numpy as np

from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle
from repro.geometry.point import PointLike, as_point
from repro.obs import span as _span
from repro.uncertain.dataset import CertainDataset


def confirm_dominators(
    dataset: CertainDataset,
    hits: List[Hashable],
    an_oid: Hashable,
    qq: np.ndarray,
    an_point: np.ndarray,
    use_numpy: Optional[bool],
) -> List[Hashable]:
    """Window-query hits that really dominate ``q`` w.r.t. the non-answer.

    One batched :func:`repro.engine.kernels.dominance_mask` call over the
    stacked hit points (or the scalar per-point loop — boolean-exact
    either way), sorted for deterministic output.
    """
    from repro.engine.kernels import dominance_mask

    pool = [oid for oid in hits if oid != an_oid]
    if not pool:
        return []
    points = np.stack([dataset.point_of(oid) for oid in pool])
    dominating = dominance_mask(points, qq, an_point, use_numpy=use_numpy)
    return sorted(
        (oid for oid, hit in zip(pool, dominating) if hit), key=repr
    )


def compute_causality_certain(
    dataset: CertainDataset,
    an_oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> CausalityResult:
    """Run algorithm CR for the non-reverse-skyline object *an_oid*.

    Parameters
    ----------
    use_index:
        When true, collect candidates with one R-tree window query
        (algorithm CR); when false, linearly scan the dataset (the filter
        half of Naive-II).
    use_numpy:
        Packed window-query traversal plus the batched dominance
        confirmation kernel vs. the pointer tree and the scalar per-point
        loop; identical candidates and node accesses either way.

    Raises
    ------
    repro.exceptions.NotANonAnswerError
        If nothing dominates ``q`` w.r.t. *an_oid* — then *an_oid* is in the
        reverse skyline and has no non-answer causality.
    """
    started = time.perf_counter()
    an_point = dataset.point_of(an_oid)
    qq = as_point(q, dims=dataset.dims)
    window = dominance_rectangle(an_point, qq)

    access_ctx = dataset.access_stats.measure() if use_index else nullcontext()
    with access_ctx as snapshot:
        with _span("filter", use_index=use_index) as filter_span:
            if use_index:
                hits = dataset.spatial_index(use_numpy).range_search(window)
            else:
                hits = dataset.ids()
            candidates = confirm_dominators(
                dataset, list(hits), an_oid, qq, an_point, use_numpy
            )
            filter_span.set(hits=len(hits), candidates=len(candidates))

    if not candidates:
        raise NotANonAnswerError(
            f"object {an_oid!r} is a reverse skyline object of q; "
            "no non-answer causality to compute"
        )

    result = CausalityResult(an_oid=an_oid, alpha=None)
    total = len(candidates)
    with _span("refine", candidates=total):
        for oid in candidates:  # Lemma 7 / Equation (4)
            gamma = frozenset(c for c in candidates if c != oid)
            result.add(
                Cause(
                    oid=oid,
                    responsibility=1.0 / total,
                    contingency_set=gamma,
                    kind=(
                        CauseKind.COUNTERFACTUAL
                        if total == 1
                        else CauseKind.ACTUAL
                    ),
                )
            )

    result.stats.node_accesses = snapshot.node_accesses if snapshot else 0
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = total
    return result
