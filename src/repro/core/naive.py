"""Baselines: Naive-I, Naive-II, and a Definition-1 brute-force oracle.

* **Naive-I** (Sec. 5.3): finds candidate causes exactly like CP, then
  refines each by plain ascending-cardinality enumeration over all subsets
  of the candidate set — no Γ₁ forcing, no counterfactual exclusion, no
  Lemma-6 reuse.  Same I/O as CP, strictly more CPU.
* **Naive-II** (Sec. 5.4): certain-data analogue — window-query filter,
  then per-candidate subset-enumeration verification instead of Lemma 7.
* **brute_force_causality**: the semantics itself, straight from
  Definition 1 — enumerate every subset of ``P`` as a potential contingency
  set.  Exponential in ``|P|``; the ground truth for correctness tests.
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext
from typing import Hashable, Optional

from repro.core.cp import CPConfig, compute_causality
from repro.core.cr import confirm_dominators
from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle
from repro.geometry.point import PointLike, as_point
from repro.obs import span as _span
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import CertainDataset, UncertainDataset

MAX_NAIVE_CANDIDATES = 24


def naive_i(
    dataset: UncertainDataset,
    an_oid: Hashable,
    q: PointLike,
    alpha: float,
) -> CausalityResult:
    """Naive-I: CP's filter with lemma-free subset-enumeration refinement."""
    return compute_causality(
        dataset, an_oid, q, alpha, config=CPConfig.naive_refinement()
    )


def naive_ii(
    dataset: CertainDataset,
    an_oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    max_candidates: int = MAX_NAIVE_CANDIDATES,
    use_numpy: Optional[bool] = None,
) -> CausalityResult:
    """Naive-II: window-query filter + per-candidate subset verification.

    Produces the same causality as algorithm CR (Lemma 7 guarantees it)
    while paying :math:`O(|C_c| \\cdot 2^{|C_c|})` verification work.
    *max_candidates* guards against accidentally exponential invocations.
    """
    started = time.perf_counter()
    an_point = dataset.point_of(an_oid)
    qq = as_point(q, dims=dataset.dims)
    window = dominance_rectangle(an_point, qq)

    access_ctx = dataset.access_stats.measure() if use_index else nullcontext()
    with access_ctx as snapshot:
        with _span("filter", use_index=use_index) as filter_span:
            hits = (
                dataset.spatial_index(use_numpy).range_search(window)
                if use_index
                else dataset.ids()
            )
            candidates = confirm_dominators(
                dataset, list(hits), an_oid, qq, an_point, use_numpy
            )
            filter_span.set(candidates=len(candidates))

    if not candidates:
        raise NotANonAnswerError(
            f"object {an_oid!r} is a reverse skyline object of q"
        )
    if len(candidates) > max_candidates:
        raise ValueError(
            f"Naive-II would enumerate 2^{len(candidates)} subsets; "
            f"cap is {max_candidates} candidates"
        )

    candidate_set = set(candidates)

    def an_in_rsq_without(removed: frozenset) -> bool:
        # an is a reverse skyline object of q over P - removed iff no
        # remaining object dominates q w.r.t. an; only candidates can.
        return candidate_set <= removed

    result = CausalityResult(an_oid=an_oid, alpha=None)
    subsets = 0
    with _span("refine", candidates=len(candidates)) as refine_span:
        for cc in candidates:
            others = [oid for oid in candidates if oid != cc]
            found = None
            for size in range(len(others) + 1):
                for combo in itertools.combinations(others, size):
                    subsets += 1
                    gamma = frozenset(combo)
                    if not an_in_rsq_without(gamma) and an_in_rsq_without(
                        gamma | {cc}
                    ):
                        found = gamma
                        break
                if found is not None:
                    break
            if found is not None:
                result.add(
                    Cause(
                        oid=cc,
                        responsibility=1.0 / (1.0 + len(found)),
                        contingency_set=found,
                        kind=(
                            CauseKind.COUNTERFACTUAL
                            if not found
                            else CauseKind.ACTUAL
                        ),
                    )
                )
        refine_span.set(subsets_examined=subsets)

    result.stats.node_accesses = snapshot.node_accesses if snapshot else 0
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = len(candidates)
    result.stats.subsets_examined = subsets
    return result


def brute_force_causality(
    dataset: UncertainDataset,
    an_oid: Hashable,
    q: PointLike,
    alpha: float,
    max_objects: int = 14,
) -> CausalityResult:
    """Definition 1 applied literally: enumerate all ``Γ ⊆ P``.

    Probabilities are evaluated analytically (Eq. (2)) without any index or
    lemma, so this shares *no* optimized code path with CP — it is the
    independent ground truth the test suite compares CP and Naive-I against.
    Certain datasets work unchanged (alpha is then irrelevant as
    probabilities are 0/1; pass any threshold in ``(0, 1]``).
    """
    if len(dataset) > max_objects:
        raise ValueError(
            f"brute force over {len(dataset)} objects would enumerate "
            f"2^{len(dataset) - 1} subsets per object; cap is {max_objects}"
        )
    qq = as_point(q, dims=dataset.dims)

    def pr_without(removed: frozenset) -> float:
        # Pinned to the scalar reference path: the brute force stays an
        # independent ground truth sharing no optimized kernel with CP.
        return reverse_skyline_probability(
            dataset, an_oid, qq, use_index=False, exclude=removed,
            use_numpy=False,
        )

    if pr_without(frozenset()) >= alpha:
        raise NotANonAnswerError(f"object {an_oid!r} is an answer at alpha={alpha}")

    result = CausalityResult(an_oid=an_oid, alpha=alpha)
    others = [oid for oid in dataset.ids() if oid != an_oid]
    for p in others:
        rest = [oid for oid in others if oid != p]
        found: Optional[frozenset] = None
        for size in range(len(rest) + 1):
            for combo in itertools.combinations(rest, size):
                gamma = frozenset(combo)
                if pr_without(gamma) < alpha <= pr_without(gamma | {p}):
                    found = gamma
                    break
            if found is not None:
                break
        if found is not None:
            result.add(
                Cause(
                    oid=p,
                    responsibility=1.0 / (1.0 + len(found)),
                    contingency_set=found,
                    kind=(
                        CauseKind.COUNTERFACTUAL if not found else CauseKind.ACTUAL
                    ),
                )
            )
    return result
