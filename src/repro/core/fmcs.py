"""FMCS — Finding the Minimal Contingency Set (Algorithm 2).

Given a candidate cause ``cc``, FMCS enumerates candidate contingency sets
in ascending cardinality so that the first qualifying set found is minimal
(the responsibility then follows immediately from Definition 2).  The
search space is pre-shrunk by the paper's lemmas:

* Lemma 3 — only candidate causes are enumerated;
* Lemma 4 — the must-include set ``Γ₁`` is unioned into every trial set
  rather than enumerated;
* Lemma 5 — counterfactual causes are excluded from the enumeration pool;
* Lemma 6 — a known achievable bound ``n_i`` (witnessed by a propagated
  set) caps the enumeration: only strictly smaller sets are tried, and if
  none qualifies the witness itself is minimal.

One deliberate deviation from the published pseudo-code (documented in
DESIGN.md): Algorithm 2 starts its size loop at 1, but when ``Γ₁`` is
non-empty the trial set ``Γ = Γ₁`` (zero extra members) is reachable and
legitimate, so our loop starts at size 0.  With ``Γ₁ = ∅`` size 0 means the
empty set, i.e. the counterfactual case, which the caller has already
peeled off — enumerating it again is harmless and keeps the function total.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Sequence

import numpy as np

from repro.prsq.oracle import MembershipOracle


@dataclass
class FMCSOutcome:
    """Result of one FMCS invocation.

    ``gamma`` is the minimal contingency set (including ``Γ₁``) or ``None``
    when the candidate is not an actual cause; ``subsets_examined`` counts
    the trial sets submitted to the oracle.
    """

    gamma: Optional[FrozenSet[Hashable]]
    subsets_examined: int

    @property
    def is_cause(self) -> bool:
        return self.gamma is not None

    @property
    def responsibility(self) -> float:
        if self.gamma is None:
            return 0.0
        return 1.0 / (1.0 + len(self.gamma))


def find_minimal_contingency_set(
    oracle: MembershipOracle,
    cc: Hashable,
    pool: Sequence[Hashable],
    gamma1: FrozenSet[Hashable] = frozenset(),
    known_bound: Optional[int] = None,
    use_bound_prune: bool = True,
) -> FMCSOutcome:
    """Search for the minimal contingency set of candidate cause *cc*.

    Parameters
    ----------
    oracle:
        Membership oracle for the CR2PRSQ instance.
    cc:
        The candidate cause under verification.
    pool:
        Enumeration pool — candidate causes minus ``Γ₁`` minus
        counterfactual causes minus ``cc`` (Lemmas 3/4/5 applied by the
        caller).
    gamma1:
        Must-include set (Lemma 4), excluding *cc* itself.
    known_bound:
        A cardinality ``n_i`` already witnessed by Lemma 6; enumeration is
        limited to strictly smaller sets.  ``None`` means unbounded (up to
        the pool size).
    use_bound_prune:
        Enable the size-level pruning bound (an engineering addition on top
        of the paper, results provably unchanged): for every world term,
        ``Pr(an)`` over a restriction keeping a set ``K`` is at most
        ``∏_{j∈K} max_i(1 − Eq3_j[i])``, so a subset size whose *best
        possible* kept-product is below ``α`` cannot satisfy Definition
        1(ii) and is skipped without enumeration.

    Notes
    -----
    The first qualifying set found is minimal because sizes are enumerated
    in ascending order.  When *known_bound* is set and no strictly smaller
    set qualifies, the caller's witness of size ``known_bound`` is minimal —
    this function then reports ``gamma=None`` and the caller falls back to
    the witness (Algorithm 1, lines 23-24).
    """
    if cc in pool or cc in gamma1:
        raise ValueError("cc must be excluded from pool and gamma1 by the caller")

    forced = frozenset(gamma1)
    max_total = len(pool) + len(forced)
    limit = max_total if known_bound is None else min(known_bound - 1, max_total)

    # Strongest dominators (smallest max survival) first: removing them
    # raises Pr(an) the most, so qualifying sets appear early within a size.
    ordered_pool = sorted(pool, key=lambda oid: (oracle.max_survival(oid), repr(oid)))

    # Size-level bound.  Every survival factor lies in [0, 1], so for each
    # sample i of an, the product over any m kept pool members is at most
    # the product of the m largest survivals in that column; influencers
    # that are never removed (counterfactual causes kept per Lemma 5, plus
    # anything outside pool ∪ Γ₁ ∪ {cc}) multiply in unconditionally.
    # ub[m] therefore upper-bounds Pr(an) over *any* restriction keeping m
    # pool members, and a subset size whose ub is below α cannot satisfy
    # Definition 1(ii).
    upper_bound: Optional[np.ndarray] = None
    if use_bound_prune and pool:
        pool_set = set(pool)
        fixed_vec = np.ones(oracle.an.num_samples)
        for oid in oracle.influencer_ids:
            if oid != cc and oid not in forced and oid not in pool_set:
                fixed_vec *= oracle.survival_row(oid)
        rows = np.vstack([oracle.survival_row(oid) for oid in ordered_pool])
        cols_desc = np.sort(rows, axis=0)[::-1]          # (k, l) per-column desc
        prefixes = np.cumprod(cols_desc, axis=0)          # top-m products
        weights = oracle.an.probabilities
        upper_bound = np.empty(len(pool) + 1)
        upper_bound[0] = float(weights @ fixed_vec)
        for m in range(1, len(pool) + 1):
            upper_bound[m] = float(weights @ (fixed_vec * prefixes[m - 1]))

    examined = 0
    for total_size in range(len(forced), limit + 1):
        extra = total_size - len(forced)
        if extra > len(pool):
            break
        if upper_bound is not None:
            kept = len(pool) - extra
            if upper_bound[kept] < oracle.alpha:
                continue  # Definition 1(ii) unsatisfiable at this size
        for combo in itertools.combinations(ordered_pool, extra):
            gamma = forced | frozenset(combo)
            examined += 1
            if oracle.is_contingency_set(gamma, cc):
                return FMCSOutcome(gamma=gamma, subsets_examined=examined)
    return FMCSOutcome(gamma=None, subsets_examined=examined)
