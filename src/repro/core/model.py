"""Causality and responsibility result model (Definitions 1, 2, 5, 6).

* A **counterfactual cause** makes the non-answer an answer all by itself
  (empty contingency set, responsibility 1).
* An **actual cause** needs a contingency set Γ; its responsibility is
  ``1 / (1 + |Γ_min|)``.
* Objects that are not causes have responsibility 0 by convention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple


class CauseKind(enum.Enum):
    """How the cause qualifies under Definition 1."""

    COUNTERFACTUAL = "counterfactual"
    ACTUAL = "actual"


@dataclass(frozen=True)
class Cause:
    """One actual cause for a non-answer, with a minimal witness."""

    oid: Hashable
    responsibility: float
    contingency_set: FrozenSet[Hashable]
    kind: CauseKind

    def __post_init__(self) -> None:
        if not 0.0 < self.responsibility <= 1.0:
            raise ValueError(
                f"responsibility must be in (0, 1], got {self.responsibility}"
            )
        expected = 1.0 / (1.0 + len(self.contingency_set))
        if abs(self.responsibility - expected) > 1e-12:
            raise ValueError(
                f"responsibility {self.responsibility} inconsistent with "
                f"|Γ|={len(self.contingency_set)} (expected {expected})"
            )
        if self.kind is CauseKind.COUNTERFACTUAL and self.contingency_set:
            raise ValueError("a counterfactual cause has an empty contingency set")

    @property
    def min_contingency_size(self) -> int:
        return len(self.contingency_set)


@dataclass
class RunStats:
    """Cost counters for one algorithm invocation (the paper's two metrics
    plus the refinement-step internals)."""

    node_accesses: int = 0
    cpu_time_s: float = 0.0
    candidates: int = 0
    oracle_evaluations: int = 0
    subsets_examined: int = 0

    def merge(self, other: "RunStats") -> "RunStats":
        return RunStats(
            node_accesses=self.node_accesses + other.node_accesses,
            cpu_time_s=self.cpu_time_s + other.cpu_time_s,
            candidates=self.candidates + other.candidates,
            oracle_evaluations=self.oracle_evaluations + other.oracle_evaluations,
            subsets_examined=self.subsets_examined + other.subsets_examined,
        )


@dataclass
class CausalityResult:
    """The full CR2PRSQ / CRPRSQ output for one non-answer."""

    an_oid: Hashable
    alpha: Optional[float]
    causes: Dict[Hashable, Cause] = field(default_factory=dict)
    stats: RunStats = field(default_factory=RunStats)

    # ------------------------------------------------------------------
    def add(self, cause: Cause) -> None:
        if cause.oid in self.causes:
            raise ValueError(f"duplicate cause {cause.oid!r}")
        if cause.oid == self.an_oid:
            raise ValueError("the non-answer cannot cause itself")
        self.causes[cause.oid] = cause

    def responsibility(self, oid: Hashable) -> float:
        """Responsibility of *oid*; 0 when it is not a cause (convention)."""
        cause = self.causes.get(oid)
        return cause.responsibility if cause is not None else 0.0

    def cause_ids(self) -> List[Hashable]:
        return sorted(self.causes, key=repr)

    def counterfactual_ids(self) -> List[Hashable]:
        return [
            oid
            for oid in self.cause_ids()
            if self.causes[oid].kind is CauseKind.COUNTERFACTUAL
        ]

    def ranked(self) -> List[Tuple[Hashable, float]]:
        """Causes sorted by decreasing responsibility (ties by id repr)."""
        return sorted(
            ((oid, cause.responsibility) for oid, cause in self.causes.items()),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )

    def responsibilities(self) -> Dict[Hashable, float]:
        return {oid: cause.responsibility for oid, cause in self.causes.items()}

    def same_causality(self, other: "CausalityResult") -> bool:
        """Equality of the semantic output (causes + responsibilities),
        ignoring witnesses and cost counters — minimal contingency sets need
        not be unique, but their sizes are."""
        if set(self.causes) != set(other.causes):
            return False
        return all(
            abs(self.causes[oid].responsibility - other.causes[oid].responsibility)
            < 1e-12
            for oid in self.causes
        )

    def __len__(self) -> int:
        return len(self.causes)

    def __repr__(self) -> str:
        return (
            f"<CausalityResult an={self.an_oid!r} causes={len(self.causes)} "
            f"alpha={self.alpha}>"
        )
