"""The paper's pruning lemmas as standalone, individually-testable predicates.

Algorithm CP composes these; keeping them addressable lets the test suite
verify each lemma against brute force and lets the ablation benchmarks
switch them off one at a time.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Set

from repro.prsq.oracle import MembershipOracle
from repro.uncertain.dataset import UncertainDataset


def lemma1_is_candidate(
    oracle: MembershipOracle, oid: Hashable
) -> bool:
    """Lemma 1: *oid* can only be a cause if its Eq. (3) vector is non-zero."""
    return oracle.influences(oid)


def lemma3_search_space(oracle: MembershipOracle) -> List[Hashable]:
    """Lemma 3: minimal contingency sets draw only from the candidate set."""
    return list(oracle.influencer_ids)


def lemma4_must_include(oracle: MembershipOracle) -> List[Hashable]:
    """Lemma 4: objects dominating ``q`` w.r.t. *every* sample of ``an`` with
    probability 1 (contained in all Lemma-2 rectangles) belong to every
    qualifying contingency set."""
    return oracle.certain_blockers()


def lemma5_is_counterfactual(oracle: MembershipOracle, oid: Hashable) -> bool:
    """Counterfactual test: removing *oid* alone makes ``an`` an answer.

    Lemma 5 then excludes such objects from every *other* cause's minimal
    contingency set.
    """
    return oracle.is_answer({oid})


def lemma6_propagate(
    oracle: MembershipOracle,
    cause: Hashable,
    gamma: FrozenSet[Hashable],
    pending: Iterable[Hashable],
) -> dict:
    """Lemma 6: reuse a found minimal contingency set *gamma* of *cause*.

    For each pending candidate ``c' ∈ gamma``, if
    ``(P − (gamma − {c'}) − {cause})`` is still a non-answer, then
    ``(gamma − {c'}) ∪ {cause}`` is a contingency set for ``c'`` of the same
    cardinality.  Returns ``{c': witness_set}`` for the candidates this
    certifies.
    """
    witnesses = {}
    pending_set = set(pending)
    for member in gamma:
        if member not in pending_set:
            continue
        witness = (gamma - {member}) | {cause}
        if oracle.is_non_answer(witness):
            witnesses[member] = frozenset(witness)
    return witnesses


def lemma7_certain_candidates_are_causes(
    dataset: UncertainDataset, candidates: Set[Hashable]
) -> dict:
    """Lemma 7 (certain data): every candidate is an actual cause whose
    minimal contingency set is all the *other* candidates.

    Returns ``{oid: frozenset(contingency)}``.
    """
    return {
        oid: frozenset(candidates - {oid}) for oid in candidates
    }
