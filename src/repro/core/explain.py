"""Human-readable explanations and repairs for causality results.

The paper motivates CRP as *explanation capability* for database systems:
the basketball player wants to know "what causes me to be unqualified and
how strongly?".  This module turns a :class:`CausalityResult` into that
answer — a ranked narrative, a minimal *repair set* (the smallest deletion
that flips the non-answer into an answer), and verified what-if analyses.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional, Sequence

from repro.core.model import CausalityResult, CauseKind
from repro.geometry.point import PointLike
from repro.prsq.oracle import MembershipOracle
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import UncertainDataset


def minimal_repair_set(result: CausalityResult) -> FrozenSet[Hashable]:
    """The smallest deletion set that makes the non-answer an answer.

    For the top-responsibility cause ``c`` with minimal contingency set
    ``Γ``, removing ``Γ ∪ {c}`` flips membership, and by Definition 2 no
    smaller deletion can: a flip-set of size ``s`` yields some member with
    a contingency set of size ``s - 1``, i.e. responsibility ``1/s``, so
    the best responsibility bounds the flip-set size from below.
    """
    if not result.causes:
        raise ValueError("result has no causes; nothing to repair")
    top_oid, _resp = result.ranked()[0]
    top = result.causes[top_oid]
    return frozenset(top.contingency_set | {top_oid})


def verify_repair(
    dataset: UncertainDataset,
    result: CausalityResult,
    q: PointLike,
    repair: Optional[Sequence[Hashable]] = None,
) -> bool:
    """Check that deleting *repair* (default: the minimal repair set)
    actually makes the non-answer an answer at the result's alpha."""
    if result.alpha is None:
        raise ValueError("verify_repair needs a probabilistic result (alpha set)")
    chosen = frozenset(repair) if repair is not None else minimal_repair_set(result)
    pr = reverse_skyline_probability(
        dataset, result.an_oid, q, use_index=False, exclude=chosen
    )
    return pr >= result.alpha


def what_if(
    dataset: UncertainDataset,
    result: CausalityResult,
    q: PointLike,
    removed: Sequence[Hashable],
) -> float:
    """``Pr(an)`` after hypothetically deleting *removed* objects."""
    return reverse_skyline_probability(
        dataset, result.an_oid, q, use_index=False, exclude=set(removed)
    )


def responsibility_groups(result: CausalityResult) -> List[tuple]:
    """``(responsibility, [cause ids])`` groups, strongest first."""
    groups: dict = {}
    for oid, cause in result.causes.items():
        groups.setdefault(round(cause.responsibility, 12), []).append(oid)
    return [
        (resp, sorted(map(str, members)))
        for resp, members in sorted(groups.items(), reverse=True)
    ]


def narrative(
    result: CausalityResult,
    dataset: Optional[UncertainDataset] = None,
    max_causes: int = 10,
) -> str:
    """A multi-line, human-readable explanation of the result."""
    lines: List[str] = []
    alpha_text = (
        f"at threshold alpha = {result.alpha}" if result.alpha is not None
        else "for the reverse skyline query"
    )
    lines.append(
        f"{result.an_oid!r} is a non-answer {alpha_text}; "
        f"{len(result.causes)} object(s) cause this."
    )

    counterfactuals = result.counterfactual_ids()
    if counterfactuals:
        names = ", ".join(_label(dataset, oid) for oid in counterfactuals)
        lines.append(
            f"Counterfactual cause(s) — removing any one alone flips the "
            f"answer: {names}."
        )

    shown = 0
    for oid, resp in result.ranked():
        if shown == max_causes:
            lines.append(f"... and {len(result.causes) - shown} more cause(s).")
            break
        cause = result.causes[oid]
        if cause.kind is CauseKind.COUNTERFACTUAL:
            continue
        lines.append(
            f"  {_label(dataset, oid)}: responsibility {resp:.4f} "
            f"(needs {cause.min_contingency_size} other deletion(s) to become "
            f"decisive)"
        )
        shown += 1

    if result.causes:
        repair = minimal_repair_set(result)
        names = ", ".join(sorted(_label(dataset, oid) for oid in repair))
        lines.append(
            f"Minimal repair: deleting {{{names}}} "
            f"({len(repair)} object(s)) makes {result.an_oid!r} an answer."
        )
    return "\n".join(lines)


def _label(dataset: Optional[UncertainDataset], oid: Hashable) -> str:
    if dataset is not None and oid in dataset:
        name = dataset.get(oid).name
        if name:
            return f"{name} ({oid})"
    return str(oid)


def explain_with_oracle(
    dataset: UncertainDataset,
    result: CausalityResult,
    q: PointLike,
) -> dict:
    """Machine-readable explanation bundle (used by the CLI and examples).

    Includes the verified minimal repair and the probability trajectory as
    causes are removed strongest-first.
    """
    if result.alpha is None:
        raise ValueError("explain_with_oracle needs a probabilistic result")
    oracle = MembershipOracle(
        dataset, result.an_oid, q, result.alpha,
        relevant_ids=list(result.causes),
    )
    trajectory = []
    removed: set = set()
    for oid, _resp in result.ranked():
        removed.add(oid)
        trajectory.append(
            {"removed": sorted(map(str, removed)), "pr": oracle.probability(removed)}
        )
        if oracle.is_answer(removed):
            break
    repair = minimal_repair_set(result)
    return {
        "an": result.an_oid,
        "alpha": result.alpha,
        "groups": responsibility_groups(result),
        "minimal_repair": sorted(map(str, repair)),
        "repair_verified": verify_repair(dataset, result, q),
        "greedy_trajectory": trajectory,
    }
