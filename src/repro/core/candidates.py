"""Filter step: candidate cause discovery (Lemmas 1 and 2).

Lemma 1 says only objects that can dynamically dominate ``q`` w.r.t. the
non-answer in *some* possible world can be causes; Lemma 2 turns that into
geometry — such an object must place a sample inside one of the dominance
hyper-rectangles of the non-answer's samples.  The filter is therefore a
multi-window R-tree scan followed by an exact per-sample confirmation.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.geometry.dominance import (
    dominance_rectangle,
    dominance_vector,
)
from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject


def filter_rectangles(an: UncertainObject, q: PointLike) -> List[Rect]:
    """The Lemma-2 rectangle list ``RecList``: one per sample of *an*."""
    qq = as_point(q, dims=an.dims)
    return [
        dominance_rectangle(an.samples[i], qq) for i in range(an.num_samples)
    ]


def can_influence(candidate: UncertainObject, an: UncertainObject, q: PointLike) -> bool:
    """Exact Lemma-1 test: some sample of *candidate* dominates ``q`` w.r.t.
    some sample of *an* (equivalently, its Eq. (3) vector is non-zero)."""
    qq = as_point(q, dims=an.dims)
    for i in range(an.num_samples):
        if dominance_vector(candidate.samples, qq, an.samples[i]).any():
            return True
    return False


def find_candidate_causes(
    dataset: UncertainDataset,
    an_oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    windows: Sequence[Rect] | None = None,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Candidate cause ids for the non-answer *an_oid* (filter step of CP).

    Parameters
    ----------
    use_index:
        When true (the CP configuration), traverse the dataset R-tree in a
        branch-and-bound manner over the rectangle list (Algorithm 1 lines
        1-8).  When false, linearly scan the dataset — the ablation baseline
        with :math:`O(|P|^2)` filtering cost discussed under Lemma 1.
    windows:
        Override the rectangle list (the pdf model supplies region-derived
        rectangles instead of per-sample ones).
    use_numpy:
        Run the filter through the packed level-frontier traversal
        (:class:`repro.index.packed.PackedRTree`) and confirm the
        survivors with one batched Lemma-1 kernel call
        (:func:`repro.engine.kernels.influence_mask`) instead of the
        pointer tree and the per-object scalar loop; the confirmed set
        and the node-access accounting are identical either way.
    """
    from repro.engine.kernels import influence_mask, resolve_use_numpy

    an = dataset.get(an_oid)
    qq = as_point(q, dims=dataset.dims)
    if windows is None:
        windows = filter_rectangles(an, qq)
    windows = list(windows)

    if use_index:
        # The kernel returns unique, canonically ordered payloads on both
        # the packed and the pointer path, so no per-caller set() is
        # needed and traversal order can never leak into result bits.
        hits = dataset.spatial_index(use_numpy).range_search_any(windows)
        # Sample-level Lemma-2 pre-confirm of the MBR-level R-tree hits:
        # it cannot change the confirmed set (the rectangles are a complete
        # filter), only skip exact confirmations, so CP's output and node
        # accesses are untouched.  Pool order is dataset order.
        pool_indices = dataset.positions_of(hits, exclude=(an_oid,))
        objects = dataset.objects()
        pool = _sample_level_prefilter(
            [objects[i] for i in pool_indices], windows
        )
    else:
        # The documented ablation baseline: a plain linear scan with exact
        # per-object confirmation and O(|P|^2) filtering cost — keep it
        # free of any pruning so use_index on/off comparisons stay honest.
        pool = dataset.others(an_oid)

    if resolve_use_numpy(use_numpy) and pool:
        tensor = dataset.tensor
        indices = [tensor.index_of[obj.oid] for obj in pool]
        samples, _, mask = tensor.rows(indices)
        influencing = influence_mask(
            an.samples, samples, mask, qq, use_numpy=True
        )
        confirmed = [obj.oid for obj, hit in zip(pool, influencing) if hit]
    else:
        confirmed = [obj.oid for obj in pool if can_influence(obj, an, qq)]
    return sorted(confirmed, key=repr)


def _sample_level_prefilter(
    pool: List[UncertainObject], windows: List[Rect]
) -> List[UncertainObject]:
    """Drop pool objects with no sample inside any Lemma-2 rectangle.

    One batched kernel call over the concatenated sample matrices — the
    window bounds are stacked once, not per object.
    """
    if not pool or not windows:
        return pool
    # Imported lazily: repro.core must stay importable without pulling the
    # engine package in at module-import time (engine itself imports core).
    from repro.engine.kernels import points_in_any_window

    samples = np.concatenate([obj.samples for obj in pool])
    inside = points_in_any_window(samples, windows)
    kept: List[UncertainObject] = []
    start = 0
    for obj in pool:
        stop = start + obj.num_samples
        if inside[start:stop].any():
            kept.append(obj)
        start = stop
    return kept
