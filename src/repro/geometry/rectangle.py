"""Axis-aligned hyper-rectangles.

:class:`Rect` is the single rectangle type used across the library: R-tree
minimum bounding rectangles, the dominance rectangles of Lemma 2, window
query ranges, and uncertain regions of pdf-model objects are all ``Rect``
instances.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionalityError
from repro.geometry.point import PointLike, as_point


class Rect:
    """A closed axis-aligned hyper-rectangle ``[lo, hi]`` in D dimensions.

    Instances are immutable by convention (the underlying arrays have
    ``writeable=False``); all combinators return new rectangles.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: PointLike, hi: PointLike):
        lo_arr = as_point(lo)
        hi_arr = as_point(hi, dims=lo_arr.shape[0])
        if np.any(lo_arr > hi_arr):
            raise ValueError(
                f"rectangle lower corner {lo_arr} exceeds upper corner {hi_arr}"
            )
        lo_arr.flags.writeable = False
        hi_arr.flags.writeable = False
        self.lo = lo_arr
        self.hi = hi_arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: PointLike) -> "Rect":
        """Degenerate rectangle covering a single point."""
        p = as_point(point)
        return cls(p, p.copy())

    @classmethod
    def from_center(cls, center: PointLike, half_extent: PointLike) -> "Rect":
        """Rectangle centred at *center* with per-dimension *half_extent*."""
        c = as_point(center)
        h = np.abs(as_point(half_extent, dims=c.shape[0]))
        return cls(c - h, c + h)

    @classmethod
    def bounding(cls, points: Iterable[PointLike]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection of points."""
        matrix = np.atleast_2d(np.asarray(list(points), dtype=np.float64))
        if matrix.size == 0:
            raise ValueError("cannot bound an empty point collection")
        return cls(matrix.min(axis=0), matrix.max(axis=0))

    @classmethod
    def union_all(cls, rects: Sequence["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection of rects."""
        if not rects:
            raise ValueError("cannot union an empty rectangle collection")
        lo = np.minimum.reduce([r.lo for r in rects])
        hi = np.maximum.reduce([r.hi for r in rects])
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.hi - self.lo

    def area(self) -> float:
        """Hyper-volume (product of side lengths)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree margin heuristic)."""
        return float(np.sum(self.extents))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: PointLike) -> bool:
        p = as_point(point)
        if p.shape[0] != self.dims:
            raise DimensionalityError(self.dims, p.shape[0], what="point")
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def contains_points(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized containment test for an ``(n, d)`` point matrix."""
        return np.logical_and(
            (matrix >= self.lo).all(axis=1), (matrix <= self.hi).all(axis=1)
        )

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Rect") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    # ------------------------------------------------------------------
    # combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Rect(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area()

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rect to also cover *other*."""
        return self.union(other).area() - self.area()

    def expanded_to_point(self, point: PointLike) -> "Rect":
        p = as_point(point, dims=self.dims)
        return Rect(np.minimum(self.lo, p), np.maximum(self.hi, p))

    # ------------------------------------------------------------------
    # distances / corners
    # ------------------------------------------------------------------
    def min_distance_sq(self, point: PointLike) -> float:
        """Squared Euclidean distance from *point* to the rectangle."""
        p = as_point(point, dims=self.dims)
        delta = np.maximum(np.maximum(self.lo - p, p - self.hi), 0.0)
        return float(np.dot(delta, delta))

    def farthest_corner(self, point: PointLike) -> np.ndarray:
        """The rectangle corner with maximal coordinate-wise distance to *point*."""
        p = as_point(point, dims=self.dims)
        return np.where(np.abs(self.lo - p) >= np.abs(self.hi - p), self.lo, self.hi)

    def nearest_corner(self, point: PointLike) -> np.ndarray:
        """The rectangle corner with minimal coordinate-wise distance to *point*."""
        p = as_point(point, dims=self.dims)
        return np.where(np.abs(self.lo - p) <= np.abs(self.hi - p), self.lo, self.hi)

    def corners(self) -> np.ndarray:
        """All ``2**d`` corners as an ``(2**d, d)`` matrix (small d only)."""
        d = self.dims
        grid = np.array(
            [[(self.hi if (i >> k) & 1 else self.lo)[k] for k in range(d)]
             for i in range(1 << d)],
            dtype=np.float64,
        )
        return grid

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:
        return f"Rect(lo={self.lo.tolist()}, hi={self.hi.tolist()})"
