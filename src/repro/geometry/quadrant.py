"""Sub-quadrant decomposition around a query object.

The pdf-model extension of algorithm CP (Section 3.2 of the paper) reasons
about the sub-quadrants that the query object ``q`` induces: ``q`` splits
the space into ``2**d`` orthants, and an uncertain region that spans several
of them contributes one dominance rectangle per overlapped orthant (formed
from the region's farthest corner to ``q`` inside that orthant).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect


def quadrant_of(point: PointLike, q: PointLike) -> int:
    """Bitmask orthant index of *point* relative to *q*.

    Bit ``i`` is set when ``point[i] >= q[i]``.  Points lying exactly on a
    splitting hyperplane are assigned to the upper orthant, which keeps the
    mapping a function (each point belongs to exactly one orthant).
    """
    p, qq = as_point(point), as_point(q)
    mask = 0
    for i, (pi, qi) in enumerate(zip(p, qq)):
        if pi >= qi:
            mask |= 1 << i
    return mask


def quadrant_rect(mask: int, q: PointLike, bounds: Rect) -> Rect:
    """The (clipped) orthant *mask* of *q* inside the universe *bounds*."""
    qq = as_point(q)
    lo = bounds.lo.copy()
    hi = bounds.hi.copy()
    for i in range(qq.shape[0]):
        if (mask >> i) & 1:
            lo[i] = max(lo[i], qq[i])
        else:
            hi[i] = min(hi[i], qq[i])
    if np.any(lo > hi):
        raise ValueError(f"orthant {mask} of {qq} does not intersect {bounds}")
    return Rect(lo, hi)


def overlapped_quadrants(region: Rect, q: PointLike) -> Iterator[int]:
    """Yield the orthant masks of *q* that *region* overlaps with positive extent.

    A region touching a splitting hyperplane only at its boundary is not
    reported on the degenerate side.
    """
    qq = as_point(q)
    d = qq.shape[0]
    per_dim: List[List[int]] = []
    for i in range(d):
        sides = []
        if region.lo[i] < qq[i]:
            sides.append(0)
        if region.hi[i] > qq[i]:
            sides.append(1)
        if not sides:  # region is flat exactly on the hyperplane
            sides.append(1)
        per_dim.append(sides)

    def rec(i: int, mask: int) -> Iterator[int]:
        if i == d:
            yield mask
            return
        for side in per_dim[i]:
            yield from rec(i + 1, mask | (side << i))

    yield from rec(0, 0)


def clip_to_quadrant(region: Rect, q: PointLike, mask: int) -> Rect | None:
    """Clip *region* to orthant *mask* of *q*; ``None`` when the clip is empty."""
    qq = as_point(q)
    lo = region.lo.copy()
    hi = region.hi.copy()
    for i in range(qq.shape[0]):
        if (mask >> i) & 1:
            lo[i] = max(lo[i], qq[i])
        else:
            hi[i] = min(hi[i], qq[i])
    if np.any(lo > hi):
        return None
    return Rect(lo, hi)


def split_by_quadrants(region: Rect, q: PointLike) -> List[Tuple[int, Rect]]:
    """Decompose *region* into per-orthant pieces around *q*.

    Returns ``(mask, piece)`` pairs whose pieces tile *region* (up to shared
    boundaries).  Used by the pdf model to build one dominance rectangle per
    overlapped orthant, per the Section 3.2 discussion and Fig. 3.
    """
    pieces = []
    for mask in overlapped_quadrants(region, q):
        piece = clip_to_quadrant(region, q, mask)
        if piece is not None:
            pieces.append((mask, piece))
    return pieces
