"""Dominance relations.

Two flavours of dominance appear in the paper:

* **Classic dominance** (smaller-is-better): ``a`` dominates ``b`` when
  ``a[i] <= b[i]`` in every dimension with at least one strict inequality.
  This underlies the static skyline operator.

* **Dynamic dominance** (Definition 3 / Papadias et al. [35]): ``p1``
  dominates ``p2`` *with respect to* ``p3`` when
  ``|p1[i] - p3[i]| <= |p2[i] - p3[i]|`` in every dimension, strictly in at
  least one.  Reverse skylines, PRSQ probabilities, and every lemma of the
  paper are phrased in terms of dynamic dominance.

The module also builds the *dominance rectangle* of Lemma 2: the set of
locations that could dynamically dominate the query point ``q`` w.r.t. a
sample ``s`` is exactly the hyper-rectangle centred at ``s`` whose
half-extent in dimension ``i`` is ``|q[i] - s[i]|``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect


def dominates(a: PointLike, b: PointLike) -> bool:
    """Classic (minimising) dominance: ``a`` dominates ``b``."""
    pa, pb = as_point(a), as_point(b)
    return bool(np.all(pa <= pb) and np.any(pa < pb))


def strictly_dominates(a: PointLike, b: PointLike) -> bool:
    """``a`` beats ``b`` strictly in every dimension."""
    pa, pb = as_point(a), as_point(b)
    return bool(np.all(pa < pb))


def dynamically_dominates(p1: PointLike, p2: PointLike, center: PointLike) -> bool:
    """Dynamic dominance ``p1 ≺_center p2`` (Definition 3).

    ``p1`` dominates ``p2`` w.r.t. ``center`` iff p1 is coordinate-wise at
    least as close to ``center`` as ``p2``, and strictly closer in at least
    one dimension.
    """
    d1 = np.abs(as_point(p1) - as_point(center))
    d2 = np.abs(as_point(p2) - as_point(center))
    return bool(np.all(d1 <= d2) and np.any(d1 < d2))


def dominance_vector(points: np.ndarray, target: PointLike, center: PointLike) -> np.ndarray:
    """Vectorized dynamic dominance of many *points* over *target* w.r.t. *center*.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of candidate dominators.
    target:
        the point being dominated (the query object ``q`` in the paper).
    center:
        the reference sample the distances are measured against.

    Returns
    -------
    numpy.ndarray
        Boolean vector of length ``n``; entry ``k`` is ``True`` iff
        ``points[k] ≺_center target``.
    """
    c = as_point(center)
    dt = np.abs(as_point(target) - c)
    dp = np.abs(points - c)
    return np.logical_and((dp <= dt).all(axis=1), (dp < dt).any(axis=1))


def dominance_rectangle(sample: PointLike, q: PointLike) -> Rect:
    """The Lemma-2 hyper-rectangle of locations that can dominate ``q`` w.r.t. *sample*.

    Centred at *sample* with per-dimension half-extent ``|q[i] - sample[i]|``.
    A point strictly inside it (or on its boundary but not maximally distant
    in every dimension) dynamically dominates ``q`` w.r.t. *sample*; the
    rectangle is therefore a complete, slightly-loose filter whose hits are
    confirmed with :func:`dynamically_dominates`.
    """
    s = as_point(sample)
    return Rect.from_center(s, np.abs(as_point(q) - s))


def dominated_by_any(points: np.ndarray, target: PointLike, center: PointLike) -> bool:
    """``True`` iff any row of *points* dynamically dominates *target* w.r.t. *center*."""
    if points.shape[0] == 0:
        return False
    return bool(dominance_vector(points, target, center).any())
