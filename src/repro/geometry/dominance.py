"""Dominance relations.

Two flavours of dominance appear in the paper:

* **Classic dominance** (smaller-is-better): ``a`` dominates ``b`` when
  ``a[i] <= b[i]`` in every dimension with at least one strict inequality.
  This underlies the static skyline operator.

* **Dynamic dominance** (Definition 3 / Papadias et al. [35]): ``p1``
  dominates ``p2`` *with respect to* ``p3`` when
  ``|p1[i] - p3[i]| <= |p2[i] - p3[i]|`` in every dimension, strictly in at
  least one.  Reverse skylines, PRSQ probabilities, and every lemma of the
  paper are phrased in terms of dynamic dominance.

The module also builds the *dominance rectangle* of Lemma 2: the set of
locations that could dynamically dominate the query point ``q`` w.r.t. a
sample ``s`` is exactly the hyper-rectangle centred at ``s`` whose
half-extent in dimension ``i`` is ``|q[i] - s[i]|``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect


def dominates(a: PointLike, b: PointLike) -> bool:
    """Classic (minimising) dominance: ``a`` dominates ``b``."""
    pa, pb = as_point(a), as_point(b)
    return bool(np.all(pa <= pb) and np.any(pa < pb))


def strictly_dominates(a: PointLike, b: PointLike) -> bool:
    """``a`` beats ``b`` strictly in every dimension."""
    pa, pb = as_point(a), as_point(b)
    return bool(np.all(pa < pb))


def dynamically_dominates(p1: PointLike, p2: PointLike, center: PointLike) -> bool:
    """Dynamic dominance ``p1 ≺_center p2`` (Definition 3).

    ``p1`` dominates ``p2`` w.r.t. ``center`` iff p1 is coordinate-wise at
    least as close to ``center`` as ``p2``, and strictly closer in at least
    one dimension.
    """
    d1 = np.abs(as_point(p1) - as_point(center))
    d2 = np.abs(as_point(p2) - as_point(center))
    return bool(np.all(d1 <= d2) and np.any(d1 < d2))


def dominance_vector(points: np.ndarray, target: PointLike, center: PointLike) -> np.ndarray:
    """Vectorized dynamic dominance of many *points* over *target* w.r.t. *center*.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of candidate dominators.
    target:
        the point being dominated (the query object ``q`` in the paper).
    center:
        the reference sample the distances are measured against.

    Returns
    -------
    numpy.ndarray
        Boolean vector of length ``n``; entry ``k`` is ``True`` iff
        ``points[k] ≺_center target``.
    """
    c = as_point(center)
    dt = np.abs(as_point(target) - c)
    dp = np.abs(points - c)
    return np.logical_and((dp <= dt).all(axis=1), (dp < dt).any(axis=1))


def _complete_bounds(s: np.ndarray, h: np.ndarray) -> tuple:
    """``[lo, hi]`` covering every float ``p`` with ``|p - s| <= h``.

    The naive bounds ``s ∓ h`` round to nearest, which can land strictly
    inside the set of points passing the :func:`dynamically_dominates`
    comparison ``|p - s| <= |q - s|`` (e.g. ``s=1, q=2.22e-16``: the point
    ``p=2.22e-16`` ties ``q``'s distance after rounding yet falls below
    ``fl(s - h)``).  Because ``|fl(p - s)|`` is monotone in ``p`` on either
    side of ``s``, probing one float past each bound is an exact
    completeness check; unsound bounds are stepped outward in units of one
    ``h``-ulp until the probe fails.  Sound bounds are returned untouched,
    so exact cases (and degenerate ``h = 0`` rectangles) keep their naive
    values.
    """
    lo = s - h
    hi = s + h
    # Infinite or overflowing inputs: an infinite-extent side already covers
    # every passing point, and ulp-stepping from +/-inf would never
    # terminate — keep the naive bounds.
    if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
        return lo, hi
    return _widen(s, h, lo, -np.inf), _widen(s, h, hi, np.inf)


def _widen(s: np.ndarray, h: np.ndarray, bound: np.ndarray, toward: float) -> np.ndarray:
    outward = np.minimum if toward < 0 else np.maximum
    step = h.copy()
    while True:
        probe = np.nextafter(bound, toward)
        bad = np.abs(probe - s) <= h
        if not bad.any():
            return bound
        # One float outward is the minimal widening; if the float after that
        # still passes, the gap is large relative to ulp(bound) (bounds near
        # zero from same-magnitude s and h), so jump in units of one h-ulp.
        new = np.where(bad, probe, bound)
        probe2 = np.nextafter(new, toward)
        still = bad & (np.abs(probe2 - s) <= h)
        if still.any():
            step = np.where(still, np.nextafter(step, np.inf), step)
            jump = s - step if toward < 0 else s + step
            new = np.where(still, outward(jump, probe2), new)
        bound = new


def dominance_rectangle(sample: PointLike, q: PointLike) -> Rect:
    """The Lemma-2 hyper-rectangle of locations that can dominate ``q`` w.r.t. *sample*.

    Centred at *sample* with per-dimension half-extent ``|q[i] - sample[i]|``.
    A point strictly inside it (or on its boundary but not maximally distant
    in every dimension) dynamically dominates ``q`` w.r.t. *sample*; the
    rectangle is therefore a complete, slightly-loose filter whose hits are
    confirmed with :func:`dynamically_dominates`.  Bounds are widened by at
    most a few ulps where float rounding would otherwise exclude boundary
    points that pass the dominance comparison.
    """
    s = as_point(sample)
    h = np.abs(as_point(q) - s)
    lo, hi = _complete_bounds(s, h)
    return Rect(lo, hi)


def dominated_by_any(points: np.ndarray, target: PointLike, center: PointLike) -> bool:
    """``True`` iff any row of *points* dynamically dominates *target* w.r.t. *center*."""
    if points.shape[0] == 0:
        return False
    return bool(dominance_vector(points, target, center).any())
