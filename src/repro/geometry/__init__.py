"""Geometry kernel: points, hyper-rectangles, dominance, quadrants."""

from repro.geometry.dominance import (
    dominance_rectangle,
    dominance_vector,
    dominated_by_any,
    dominates,
    dynamically_dominates,
    strictly_dominates,
)
from repro.geometry.point import (
    as_point,
    as_point_matrix,
    euclidean,
    l_infinity,
    points_equal,
)
from repro.geometry.quadrant import (
    clip_to_quadrant,
    overlapped_quadrants,
    quadrant_of,
    quadrant_rect,
    split_by_quadrants,
)
from repro.geometry.rectangle import Rect

__all__ = [
    "Rect",
    "as_point",
    "as_point_matrix",
    "clip_to_quadrant",
    "dominance_rectangle",
    "dominance_vector",
    "dominated_by_any",
    "dominates",
    "dynamically_dominates",
    "euclidean",
    "l_infinity",
    "overlapped_quadrants",
    "points_equal",
    "quadrant_of",
    "quadrant_rect",
    "split_by_quadrants",
    "strictly_dominates",
]
