"""Point utilities.

Points in this library are plain one-dimensional :class:`numpy.ndarray`
objects of dtype ``float64``.  Using raw arrays (rather than a wrapper
class) keeps the hot dominance-test loops allocation-free; these helpers
centralize validation and coercion at the API boundary.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import DimensionalityError

PointLike = Union[Sequence[float], np.ndarray]


def as_point(values: PointLike, dims: int | None = None) -> np.ndarray:
    """Coerce *values* to a float64 point array.

    Parameters
    ----------
    values:
        Any sequence of numbers (list, tuple, array).
    dims:
        If given, the required dimensionality; a mismatch raises
        :class:`~repro.exceptions.DimensionalityError`.
    """
    point = np.asarray(values, dtype=np.float64)
    if point.ndim != 1:
        raise DimensionalityError(1, point.ndim, what="point array rank")
    if dims is not None and point.shape[0] != dims:
        raise DimensionalityError(dims, point.shape[0], what="point")
    return point


def as_point_matrix(rows: Iterable[PointLike], dims: int | None = None) -> np.ndarray:
    """Coerce an iterable of points into an ``(n, d)`` float64 matrix."""
    matrix = np.atleast_2d(np.asarray(list(rows), dtype=np.float64))
    if matrix.size == 0:
        matrix = matrix.reshape(0, dims if dims is not None else 0)
    if dims is not None and matrix.shape[1] != dims:
        raise DimensionalityError(dims, matrix.shape[1], what="point matrix")
    return matrix


def points_equal(a: PointLike, b: PointLike, tol: float = 0.0) -> bool:
    """Exact (or tolerance-based) point equality."""
    pa, pb = as_point(a), as_point(b)
    if pa.shape != pb.shape:
        return False
    if tol == 0.0:
        return bool(np.array_equal(pa, pb))
    return bool(np.all(np.abs(pa - pb) <= tol))


def l_infinity(a: PointLike, b: PointLike) -> float:
    """Chebyshev (coordinate-wise maximum) distance between two points."""
    pa, pb = as_point(a), as_point(b)
    if pa.shape != pb.shape:
        raise DimensionalityError(pa.shape[0], pb.shape[0], what="point")
    if pa.size == 0:
        return 0.0
    return float(np.max(np.abs(pa - pb)))


def euclidean(a: PointLike, b: PointLike) -> float:
    """Euclidean distance between two points."""
    pa, pb = as_point(a), as_point(b)
    if pa.shape != pb.shape:
        raise DimensionalityError(pa.shape[0], pb.shape[0], what="point")
    return float(np.linalg.norm(pa - pb))
