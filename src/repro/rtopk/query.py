"""Reverse top-k queries (the substrate for the paper's future-work CRP).

Following the monochromatic/bichromatic reverse top-k formulation the
paper cites as [17]: given a product dataset ``P`` (smaller-is-better
attributes), a set ``W`` of user preference vectors (non-negative weights,
one per attribute), a query product ``q``, and ``k``, the reverse top-k
query returns the users ``w ∈ W`` for which ``q`` ranks among the top-k
products of ``P ∪ {q}`` under the linear score ``score_w(p) = w · p``
(lower is better).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from repro.geometry.point import PointLike, as_point, as_point_matrix
from repro.uncertain.dataset import CertainDataset


class WeightSet:
    """A named collection of user preference vectors."""

    def __init__(self, weights: Sequence[PointLike], ids: Sequence[Hashable] | None = None):
        matrix = as_point_matrix(weights)
        if matrix.shape[0] == 0:
            raise ValueError("at least one weight vector is required")
        if np.any(matrix < 0):
            raise ValueError("preference weights must be non-negative")
        if np.any(matrix.sum(axis=1) == 0):
            raise ValueError("a weight vector must have a positive entry")
        if ids is None:
            # Users and products live in different id namespaces; the
            # default prefix keeps a user id from colliding with a product
            # id (causality results mix both kinds).
            ids = [f"user-{i}" for i in range(matrix.shape[0])]
        if len(ids) != matrix.shape[0]:
            raise ValueError(
                f"{matrix.shape[0]} weight vectors but {len(ids)} ids"
            )
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate user ids")
        self.matrix = matrix
        self.ids = list(ids)

    @property
    def dims(self) -> int:
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def vector(self, user_id: Hashable) -> np.ndarray:
        return self.matrix[self.ids.index(user_id)]


def score(weight: np.ndarray, point: np.ndarray) -> float:
    """Linear preference score; smaller is better."""
    return float(np.dot(weight, point))


def better_products(
    products: CertainDataset, weight: PointLike, q: PointLike
) -> List[Hashable]:
    """Products strictly better than ``q`` for the given preference vector.

    Ties are resolved in ``q``'s favour, following the usual reverse top-k
    convention that the query product wins equal scores.
    """
    w = as_point(weight, dims=products.dims)
    q_score = score(w, as_point(q, dims=products.dims))
    scores = products.points @ w
    return [
        oid for oid, s in zip(products.ids(), scores) if s < q_score
    ]


def rank_of_query(
    products: CertainDataset, weight: PointLike, q: PointLike
) -> int:
    """1-based rank of ``q`` within ``P ∪ {q}`` under *weight*."""
    return len(better_products(products, weight, q)) + 1


def reverse_top_k(
    products: CertainDataset,
    users: WeightSet,
    q: PointLike,
    k: int,
) -> List[Hashable]:
    """Users for whom ``q`` is a top-k product."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [
        user_id
        for user_id in users.ids
        if rank_of_query(products, users.vector(user_id), q) <= k
    ]


def top_k_products(
    products: CertainDataset, weight: PointLike, k: int
) -> List[Hashable]:
    """The top-k products for one preference vector (ids, best first)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    w = as_point(weight, dims=products.dims)
    scores = products.points @ w
    order = np.argsort(scores, kind="stable")[:k]
    ids = products.ids()
    return [ids[int(i)] for i in order]


def rank_profile(
    products: CertainDataset, users: WeightSet, q: PointLike
) -> Dict[Hashable, int]:
    """The rank of ``q`` for every user (diagnostics / examples)."""
    return {
        user_id: rank_of_query(products, users.vector(user_id), q)
        for user_id in users.ids
    }
