"""Reverse top-k queries and their non-answer causality (paper future work)."""

from repro.rtopk.causality import (
    brute_force_causality_rtopk,
    compute_causality_rtopk,
)
from repro.rtopk.query import (
    WeightSet,
    better_products,
    rank_of_query,
    rank_profile,
    reverse_top_k,
    score,
    top_k_products,
)

__all__ = [
    "WeightSet",
    "better_products",
    "brute_force_causality_rtopk",
    "compute_causality_rtopk",
    "rank_of_query",
    "rank_profile",
    "reverse_top_k",
    "score",
    "top_k_products",
]
