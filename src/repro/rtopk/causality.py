"""CRP on reverse top-k non-answers — the paper's stated future work.

Section 7: *"we intend to investigate the CRP on other queries, such as
reverse top-k queries."*  This module carries the paper's Definition 1/2
machinery over.  A user ``w`` is a non-answer when the query product ``q``
ranks ``r > k`` for ``w``; deleting products can only improve ``q``'s
rank, so causality collapses to a closed form analogous to Lemma 7:

* the candidate causes are exactly the ``r - 1`` products scoring better
  than ``q`` under ``w`` (deleting anything else never changes the rank);
* every candidate is an actual cause: remove any other ``r - k - 1``
  better products and its own deletion moves ``q`` from rank ``k + 1`` to
  rank ``k``;
* minimal contingency sets have exactly ``r - k - 1`` elements, so every
  cause has responsibility ``1 / (r - k)`` — counterfactual when
  ``r = k + 1``.

A Definition-1 brute force over product subsets validates this closed
form in the tests.
"""

from __future__ import annotations

import itertools
import time
from typing import Hashable

from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.point import PointLike
from repro.rtopk.query import WeightSet, better_products
from repro.uncertain.dataset import CertainDataset


def compute_causality_rtopk(
    products: CertainDataset,
    users: WeightSet,
    user_id: Hashable,
    q: PointLike,
    k: int,
) -> CausalityResult:
    """All actual causes (with responsibilities) for user *user_id* not
    being a reverse top-k answer of product ``q``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    started = time.perf_counter()
    weight = users.vector(user_id)
    blockers = better_products(products, weight, q)
    rank = len(blockers) + 1
    if rank <= k:
        raise NotANonAnswerError(
            f"user {user_id!r} ranks q at {rank} <= k={k}; it is an answer"
        )

    need = rank - 1 - k  # minimal contingency size
    result = CausalityResult(an_oid=user_id, alpha=None)
    # Witnesses: the first `need` blockers form a shared minimal witness for
    # every cause outside it; causes inside it substitute the next blocker.
    # Sharing one frozenset keeps this O(r) instead of O(r^2) for the large
    # blocker sets reverse top-k produces.
    head = blockers[: need + 1]
    shared_witness = frozenset(head[:need])
    for oid in blockers:
        if need == 0:
            witness = frozenset()
        elif oid in shared_witness:
            witness = frozenset(b for b in head if b != oid)
        else:
            witness = shared_witness
        result.add(
            Cause(
                oid=oid,
                responsibility=1.0 / (need + 1),
                contingency_set=witness,
                kind=CauseKind.COUNTERFACTUAL if need == 0 else CauseKind.ACTUAL,
            )
        )
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = len(blockers)
    return result


def brute_force_causality_rtopk(
    products: CertainDataset,
    users: WeightSet,
    user_id: Hashable,
    q: PointLike,
    k: int,
    max_products: int = 12,
) -> CausalityResult:
    """Definition 1 applied literally to the reverse top-k query.

    Enumerates all product subsets as contingency sets; exponential, for
    validation only.
    """
    if len(products) > max_products:
        raise ValueError(
            f"brute force over {len(products)} products exceeds the cap "
            f"({max_products})"
        )
    weight = users.vector(user_id)
    blockers = set(better_products(products, weight, q))

    def is_answer_without(removed: frozenset) -> bool:
        # Rank of q over P - removed: only surviving better-scoring
        # products count (no dataset reconstruction needed, and removing
        # everything leaves q at rank 1).
        return len(blockers - removed) + 1 <= k

    if is_answer_without(frozenset()):
        raise NotANonAnswerError(f"user {user_id!r} is an answer")

    result = CausalityResult(an_oid=user_id, alpha=None)
    ids = products.ids()
    for p in ids:
        rest = [oid for oid in ids if oid != p]
        found = None
        for size in range(len(rest) + 1):
            for combo in itertools.combinations(rest, size):
                gamma = frozenset(combo)
                if not is_answer_without(gamma) and is_answer_without(
                    gamma | {p}
                ):
                    found = gamma
                    break
            if found is not None:
                break
        if found is not None:
            result.add(
                Cause(
                    oid=p,
                    responsibility=1.0 / (1.0 + len(found)),
                    contingency_set=found,
                    kind=(
                        CauseKind.COUNTERFACTUAL if not found else CauseKind.ACTUAL
                    ),
                )
            )
    return result
