"""Seeded end-to-end chaos scenarios: a fault plan vs. the full stack.

Each scenario derives **everything** — dataset, workload, fault schedule,
retry jitter — from one integer seed, so a failure reproduces exactly
from its seed alone.  Two scenario shapes cover the five seams:

* :func:`run_serve_chaos` boots an in-process :class:`ReproServer` with a
  generated :class:`FaultPlan` over the socket/stream/writer seams and
  drives a sequential mixed workload (reads, idempotency-keyed
  mutations, one streamed batch) through a retrying
  :class:`RemoteClient`.  It records, per logical request, exactly one
  outcome, then checks the three resilience invariants:

  1. **one response per request** — the workload loop never hangs and
     never double-counts (retries collapse into their logical request);
  2. **exactly-once mutations** — every acknowledged delta occupies its
     own ``session_version``, and replaying the acknowledged deltas on a
     fresh local session reproduces every observed read **bit-identically**
     (probabilities compared via ``float.hex``);
  3. **degradation is sticky and typed** — once a write fails with
     ``degraded``, every later write fails the same way and the server
     reports the dataset in its ``degraded`` list, while reads keep
     answering from the last published snapshot.

* :func:`run_executor_chaos` covers the ``worker.chunk`` seam: a
  :class:`ParallelExecutor` batch under SIGKILLed pool workers must
  either recover (respawn once, answers bit-identical to the serial
  baseline) or fail with a typed :class:`WorkerCrashError` — never hang,
  never return partial results.

This module deliberately lives outside ``repro.faults.__init__``'s
exports: it imports the serve and api layers, and pulling it in eagerly
would cycle the dependency graph (serve → faults → serve).
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.api.remote import RemoteClient
from repro.api.results import QueryResult
from repro.api.retry import RetryPolicy
from repro.engine.executor import (
    ParallelExecutor,
    SerialExecutor,
    _execute_captured,
)
from repro.engine.session import Session
from repro.engine.spec import PRSQSpec, UpdateSpec
from repro.exceptions import (
    DatasetDegradedError,
    DeadlineExceededError,
    OverloadedError,
    RemoteProtocolError,
    RemoteQueryError,
    WorkerCrashError,
)
from repro.faults.plan import SEAMS, FaultPlan
from repro.serve.protocol import ServeConfig
from repro.serve.server import ReproServer
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject

#: The seams an in-process serve scenario can actually reach (pool
#: workers never run: serve executes reads on threads, so the
#: ``worker.chunk`` seam belongs to :func:`run_executor_chaos`).
SERVE_SEAMS = tuple(s for s in SEAMS if s != "worker.chunk")

#: Generous per-request budget: chaos stalls are <= 0.25 s, so any
#: deadline_exceeded under this budget would be a real server bug.
_CHAOS_DEADLINE_MS = 30_000.0


def _chaos_objects(rng: random.Random, n: int, dims: int) -> List[UncertainObject]:
    return [
        UncertainObject(
            f"o{i}",
            [
                [rng.uniform(0.0, 10.0) for _ in range(dims)]
                for _ in range(rng.randint(1, 3))
            ],
        )
        for i in range(n)
    ]


def _fresh_dataset(objects: List[UncertainObject]) -> UncertainDataset:
    return UncertainDataset([
        UncertainObject(
            o.oid,
            [list(sample) for sample in o.samples],
            list(o.probabilities),
            name=o.name,
        )
        for o in objects
    ])


def _read_spec(rng: random.Random, dims: int) -> PRSQSpec:
    q = tuple(rng.uniform(2.0, 8.0) for _ in range(dims))
    want = ("answers", "non_answers", "probabilities")[rng.randint(0, 2)]
    return PRSQSpec(q=q, alpha=rng.uniform(0.1, 0.9), want=want)


def _semantic(envelope: QueryResult) -> object:
    """Bit-stable digest of an envelope (hex floats, sorted ids)."""
    if not envelope.ok:
        return ("error", envelope.error.code)
    value = envelope.value
    if value.probabilities is not None:
        return tuple(sorted(
            (repr(oid), float(p).hex())
            for oid, p in value.probabilities.items()
        ))
    return tuple(sorted(repr(oid) for oid in value.ids))


def _build_ops(
    rng: random.Random, dims: int, n_ops: int, seed: int
) -> List[Tuple[str, Any]]:
    """A deterministic op list: ~1/4 mutations, one streamed batch."""
    ops: List[Tuple[str, Any]] = []
    serial = 0
    for i in range(n_ops):
        if rng.random() < 0.25:
            obj = UncertainObject(
                f"chaos-{seed}-{serial}",
                [[rng.uniform(0.0, 10.0) for _ in range(dims)]],
            )
            serial += 1
            ops.append(("write", DatasetDelta.insertion(obj)))
        else:
            ops.append(("read", _read_spec(rng, dims)))
    # One streamed batch mid-workload exercises the stream.frame seam.
    batch_at = rng.randint(0, max(0, n_ops - 1))
    ops.insert(batch_at, ("batch", [_read_spec(rng, dims) for _ in range(3)]))
    return ops


async def _run_batch(
    client: RemoteClient, specs: List[PRSQSpec], policy: RetryPolicy
) -> List[Tuple[QueryResult, Optional[int]]]:
    """Run one streamed batch, retrying whole on connection loss.

    Batches have no automatic retry (partially-consumed streams are not
    idempotent as a unit), so the chaos driver retries the whole batch —
    read-only by construction — after reconnecting.
    """
    schedule = policy.schedule()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            if client._fatal is not None:
                await client._reconnect()
            builder = client.batch()
            for spec in specs:
                builder.add(spec)
            results: List[Tuple[QueryResult, Optional[int]]] = []
            async for envelope in builder.stream():
                results.append((envelope, client.session_version))
            return results
        except (RemoteProtocolError, OverloadedError):
            if attempt >= policy.max_attempts:
                raise
            await asyncio.sleep(next(schedule))
    raise AssertionError("unreachable: retry loop exits via return/raise")


async def _drive_workload(
    port: int, ops: List[Tuple[str, Any]], seed: int
) -> Dict[str, Any]:
    """Run the op list sequentially; one recorded outcome per op."""
    policy = RetryPolicy(max_attempts=5, base_s=0.01, cap_s=0.2, seed=seed)
    outcomes: List[Tuple[str, object]] = []
    semantics: Dict[Tuple[int, PRSQSpec], object] = {}
    deltas_by_version: Dict[int, DatasetDelta] = {}
    acked_inserts: List[str] = []
    degraded_seen = False
    client = await RemoteClient.connect(
        port=port, retry=policy, deadline_ms=_CHAOS_DEADLINE_MS
    )
    try:
        for index, (kind, payload) in enumerate(ops):
            try:
                if kind == "read":
                    envelope, version = await client.query_envelope(payload)
                    if envelope.ok:
                        semantics[(version, payload)] = _semantic(envelope)
                        outcomes.append(("ok", version))
                    else:
                        outcomes.append(("data_error", envelope.error.code))
                elif kind == "write":
                    spec = UpdateSpec.from_delta(payload)
                    idem = f"chaos-{seed}-op{index}"
                    envelope = await client.query(spec, idem=idem)
                    deltas_by_version[client.session_version] = payload
                    acked_inserts.append(payload.inserts[0].oid)
                    outcomes.append(("ok", client.session_version))
                else:  # batch
                    results = await _run_batch(client, payload, policy)
                    for (envelope, version), spec in zip(results, payload):
                        if envelope.ok:
                            semantics[(version, spec)] = _semantic(envelope)
                    outcomes.append(("ok", "batch"))
            except DatasetDegradedError:
                degraded_seen = True
                outcomes.append(("degraded", kind))
            except (RemoteQueryError, OverloadedError,
                    DeadlineExceededError, RemoteProtocolError) as exc:
                outcomes.append((type(exc).__name__, kind))
        # The final ping must survive any not-yet-fired drop rules too.
        for attempt in range(3):
            try:
                if client._fatal is not None:
                    await client._reconnect()
                ping = await client.ping()
                break
            except RemoteProtocolError:
                if attempt == 2:
                    raise
                await asyncio.sleep(0.01)
    finally:
        await client.close()
    return {
        "outcomes": outcomes,
        "semantics": semantics,
        "deltas_by_version": deltas_by_version,
        "acked_inserts": acked_inserts,
        "degraded_seen": degraded_seen,
        "ping": ping,
    }


def _verify_replay(
    initial: List[UncertainObject],
    deltas_by_version: Dict[int, DatasetDelta],
    semantics: Dict[Tuple[int, PRSQSpec], object],
) -> Tuple[int, int]:
    """Replay acknowledged deltas version-by-version on a local session,
    re-running every observed read; returns ``(checked, mismatches)``."""
    session = Session(_fresh_dataset(initial))
    by_version: Dict[int, List[PRSQSpec]] = {}
    for (version, spec) in semantics:
        by_version.setdefault(version, []).append(spec)
    checked = mismatches = 0
    current = 0
    for version in sorted(by_version):
        while current < version:
            current += 1
            delta = deltas_by_version.get(current)
            if delta is None:
                raise AssertionError(
                    f"read observed version {version} but no mutation was "
                    f"acknowledged at version {current}: a retried "
                    f"mutation applied more than once, or an ack was lost"
                )
            session.apply(delta)
        for spec in by_version[version]:
            outcome = _execute_captured(session, spec)
            envelope = QueryResult.from_outcome(
                outcome, fingerprint=session.fingerprint
            )
            checked += 1
            if _semantic(envelope) != semantics[(version, spec)]:
                mismatches += 1
    return checked, mismatches


async def _serve_chaos(seed: int, n_objects: int, n_ops: int) -> Dict[str, Any]:
    rng = random.Random(seed)
    dims = 2
    objects = _chaos_objects(rng, n_objects, dims)
    ops = _build_ops(rng, dims, n_ops, seed)
    plan = FaultPlan.generate(seed, seams=SERVE_SEAMS)
    config = ServeConfig(
        port=0, threads=2, cache_size=64, fault_plan=plan,
        drain_timeout_s=2.0,
    )
    async with ReproServer({"default": _fresh_dataset(objects)}, config) as srv:
        run = await _drive_workload(srv.port, ops, seed)

    checked, mismatches = _verify_replay(
        objects, run["deltas_by_version"], run["semantics"]
    )
    failures: List[str] = []
    if len(run["outcomes"]) != len(ops):
        failures.append(
            f"{len(ops)} requests but {len(run['outcomes'])} outcomes"
        )
    if mismatches:
        failures.append(
            f"{mismatches}/{checked} replayed reads diverged from the "
            f"fault-free baseline"
        )
    # Exactly-once: every acknowledged insert landed at its own version.
    if len(run["deltas_by_version"]) != len(run["acked_inserts"]):
        failures.append(
            f"{len(run['acked_inserts'])} acked mutations occupy "
            f"{len(run['deltas_by_version'])} versions (double-apply?)"
        )
    # Degradation surfaced: a degraded write means the server must
    # advertise the dataset as degraded (reads may still succeed).
    if run["degraded_seen"] and "default" not in run["ping"].get("degraded", []):
        failures.append("writes degraded but ping does not list the dataset")
    return {
        "seed": seed,
        "plan": plan.to_dict(),
        "requests": len(ops),
        "replayed_reads": checked,
        "acked_mutations": len(run["acked_inserts"]),
        "degraded": run["degraded_seen"],
        "failures": failures,
        "ok": not failures,
    }


def run_serve_chaos(
    seed: int, *, n_objects: int = 24, n_ops: int = 14
) -> Dict[str, Any]:
    """One seeded serve-layer chaos scenario; returns a report dict.

    ``report["ok"]`` is the verdict; ``report["failures"]`` lists every
    violated invariant; ``report["plan"]`` is the schedule that did it
    (feed it back through ``FaultPlan.from_dict`` to reproduce).
    """
    return asyncio.run(_serve_chaos(seed, n_objects, n_ops))


def run_executor_chaos(seed: int, *, n_objects: int = 40) -> Dict[str, Any]:
    """One seeded worker-crash scenario against :class:`ParallelExecutor`.

    Generates a ``worker.chunk`` plan, runs a parallel batch under it,
    and demands either full recovery (answers bit-identical to the
    serial baseline) or a typed :class:`WorkerCrashError` — a hang or a
    silent partial result fails the scenario (a hang fails the suite's
    timeout, not this function).
    """
    from repro import faults

    rng = random.Random(seed)
    dataset = _chaos_objects(rng, n_objects, 2)
    session = Session(_fresh_dataset(dataset))
    specs = [_read_spec(rng, 2) for _ in range(8)]
    baseline = session.execute_batch(specs, SerialExecutor())
    plan = FaultPlan.generate(
        seed, seams=("worker.chunk",), max_rules=3, max_hit=4
    )
    failures: List[str] = []
    crashed = False
    with faults.installed(plan):
        try:
            parallel = session.execute_batch(
                specs, ParallelExecutor(workers=2, chunk_size=2)
            )
        except WorkerCrashError:
            crashed = True
            parallel = None
    if parallel is not None:
        if len(parallel) != len(baseline):
            failures.append(
                f"recovered run returned {len(parallel)} of "
                f"{len(baseline)} outcomes"
            )
        else:
            for serial_out, parallel_out in zip(baseline, parallel):
                if _outcome_digest(serial_out) != _outcome_digest(parallel_out):
                    failures.append("recovered answers diverge from serial")
                    break
    return {
        "seed": seed,
        "plan": plan.to_dict(),
        "crashed": crashed,
        "failures": failures,
        "ok": not failures,
    }


def _outcome_digest(outcome: Any) -> object:
    envelope = QueryResult.from_outcome(outcome, fingerprint="x")
    return _semantic(envelope)
