"""Runtime fault matching: seams ask, the injector answers.

One process-global :class:`FaultInjector` (installed via :func:`install`
or the :func:`installed` context manager) counts passes through each
seam and hands back the :class:`~repro.faults.plan.FaultRule` whose
``hit`` matches — at most once per rule.  Instrumented code calls
:func:`check`; when nothing is installed that is a single global load
and ``None`` return, so production paths pay nothing.

The injector also keeps an ordered event log (seam, hit, action,
context) for the chaos NDJSON artifact, and bumps ``fault.injected`` /
``fault.injected.<seam>`` counters in the metrics registry so fired
faults show up in ``stats`` next to the retry/degradation counters they
provoke.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..obs import registry
from .plan import FaultPlan, FaultRule

__all__ = [
    "FaultInjector",
    "active",
    "check",
    "install",
    "installed",
    "uninstall",
]


class FaultInjector:
    """Matches seam passes against one :class:`FaultPlan`.

    Thread-safe: seams are crossed from the event loop, executor
    threads, and forked workers (each worker installs its own injector,
    so counters are per-process by construction).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired: set = set()
        self._events: List[Dict[str, Any]] = []

    def check(self, seam: str, **context: Any) -> Optional[FaultRule]:
        """Record one pass through *seam*; the rule to apply, if any."""
        with self._lock:
            count = self._hits.get(seam, 0) + 1
            self._hits[seam] = count
            for index, rule in enumerate(self.plan.rules):
                if (
                    index not in self._fired
                    and rule.seam == seam
                    and rule.hit == count
                ):
                    self._fired.add(index)
                    self._events.append(
                        {
                            "seam": seam,
                            "hit": count,
                            "action": rule.action,
                            "delay_s": rule.delay_s,
                            "context": context,
                        }
                    )
                    break
            else:
                return None
        reg = registry()
        reg.counter("fault.injected").inc()
        reg.counter(f"fault.injected.{seam}").inc()
        return rule

    def events(self) -> List[Dict[str, Any]]:
        """A copy of the fired-fault log, in firing order."""
        with self._lock:
            return [dict(event) for event in self._events]

    def exhausted(self) -> bool:
        """True once every rule in the plan has fired."""
        with self._lock:
            return len(self._fired) == len(self.plan.rules)


_LOCK = threading.Lock()
_ACTIVE: Optional[FaultInjector] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install *plan* process-globally; the injector (None for no-op plans)."""
    global _ACTIVE
    with _LOCK:
        if plan is None or not plan.rules:
            _ACTIVE = None
        else:
            _ACTIVE = FaultInjector(plan)
        return _ACTIVE


def uninstall() -> None:
    """Remove the active injector; seams go back to zero-cost."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


def check(seam: str, **context: Any) -> Optional[FaultRule]:
    """The rule firing at this pass of *seam*, or None (fast no-op path)."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.check(seam, **context)


@contextmanager
def installed(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultInjector]]:
    """Scope an injector to a ``with`` block (tests, chaos runs)."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()
