"""Deterministic fault schedules: what breaks, where, and on which hit.

A :class:`FaultPlan` is a seed plus a tuple of :class:`FaultRule`\\ s, each
naming a *seam* (an instrumented point in the serve/engine stack), the
1-based *hit* at which it fires, and an *action*.  Plans are pure data:
JSON round-trippable, hashable by content, and reproducible from their
seed via :meth:`FaultPlan.generate` — so a chaos failure is reported as
one integer that regenerates the exact schedule that broke.

Seams and their legal actions:

========================  ==========================================
seam                      actions
========================  ==========================================
``socket.read``           ``drop`` (close mid-read), ``stall`` (delay)
``socket.write``          ``drop`` (close before the response frame)
``worker.chunk``          ``kill`` (SIGKILL the pool worker)
``writer.apply``          ``error`` (raise inside the apply)
``stream.frame``          ``disconnect`` (cut a streamed batch mid-way)
========================  ==========================================

Nothing here performs the actions; :mod:`repro.faults.injector` matches
rules at runtime and the instrumented seams interpret them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..exceptions import InvalidSpecError

__all__ = [
    "FaultPlan",
    "FaultRule",
    "SEAMS",
    "SEAM_ACTIONS",
]

#: Legal actions per seam; the ordering of this mapping is the canonical
#: seam ordering used by :meth:`FaultPlan.generate`.
SEAM_ACTIONS: Dict[str, Tuple[str, ...]] = {
    "socket.read": ("drop", "stall"),
    "socket.write": ("drop",),
    "worker.chunk": ("kill",),
    "writer.apply": ("error",),
    "stream.frame": ("disconnect",),
}

#: All instrumented seams, in canonical order.
SEAMS: Tuple[str, ...] = tuple(SEAM_ACTIONS)

#: Stall delays stay small so chaos suites finish fast but still overlap
#: concurrent traffic; generate() samples from this range.
_STALL_RANGE_S = (0.02, 0.25)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``action`` on the ``hit``-th pass of ``seam``.

    ``hit`` counts seam passes *per process* (each forked worker starts
    at zero).  Rules fire at most once per injector.  ``sticky`` rules
    survive :meth:`FaultPlan.drop` — used to test give-up paths where a
    respawned worker must crash again.
    """

    seam: str
    hit: int
    action: str
    delay_s: float = 0.0
    message: str = ""
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.seam not in SEAM_ACTIONS:
            raise InvalidSpecError(
                f"unknown fault seam {self.seam!r}; expected one of {SEAMS}"
            )
        if self.action not in SEAM_ACTIONS[self.seam]:
            raise InvalidSpecError(
                f"action {self.action!r} invalid for seam {self.seam!r}; "
                f"expected one of {SEAM_ACTIONS[self.seam]}"
            )
        if self.hit < 1:
            raise InvalidSpecError(f"fault hit must be >= 1, got {self.hit}")
        if self.delay_s < 0:
            raise InvalidSpecError(
                f"fault delay_s must be >= 0, got {self.delay_s}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seam": self.seam,
            "hit": self.hit,
            "action": self.action,
            "delay_s": self.delay_s,
            "message": self.message,
            "sticky": self.sticky,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        try:
            return cls(
                seam=str(payload["seam"]),
                hit=int(payload["hit"]),
                action=str(payload["action"]),
                delay_s=float(payload.get("delay_s", 0.0)),
                message=str(payload.get("message", "")),
                sticky=bool(payload.get("sticky", False)),
            )
        except KeyError as exc:
            raise InvalidSpecError(f"fault rule missing field {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of :class:`FaultRule`\\ s."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def seams(self) -> Tuple[str, ...]:
        """The distinct seams this plan touches, in canonical order."""
        present = {rule.seam for rule in self.rules}
        return tuple(seam for seam in SEAMS if seam in present)

    def drop(self, seam: str) -> "FaultPlan":
        """A copy without the non-``sticky`` rules for *seam*.

        Used to disarm a seam on recovery — e.g. the respawned worker
        pool ships a plan minus ``worker.chunk`` kills so the retry is
        not re-killed by its own schedule.
        """
        kept = tuple(
            rule for rule in self.rules
            if rule.seam != seam or rule.sticky
        )
        return FaultPlan(seed=self.seed, rules=kept)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise InvalidSpecError("fault plan 'rules' must be a list")
        return cls(
            seed=int(payload.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in rules),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidSpecError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        seams: Sequence[str] = SEAMS,
        max_rules: int = 4,
        max_hit: int = 6,
    ) -> "FaultPlan":
        """The deterministic schedule for *seed*.

        Same seed, same plan — across processes and runs.  Rule count,
        seam choice, hit numbers and stall delays are all drawn from one
        ``random.Random(seed)`` stream.
        """
        import random

        rng = random.Random(seed)
        n_rules = rng.randint(1, max_rules)
        rules = []
        for _ in range(n_rules):
            seam = rng.choice(list(seams))
            action = rng.choice(SEAM_ACTIONS[seam])
            delay = 0.0
            if action == "stall":
                lo, hi = _STALL_RANGE_S
                delay = round(rng.uniform(lo, hi), 4)
            rules.append(
                FaultRule(
                    seam=seam,
                    hit=rng.randint(1, max_hit),
                    action=action,
                    delay_s=delay,
                    message=f"injected[{seed}] {seam}:{action}",
                )
            )
        # Deterministic order regardless of draw order; dedupe exact
        # (seam, hit) collisions — two rules on the same pass would mask
        # each other and make event logs ambiguous.
        unique: Dict[Tuple[str, int], FaultRule] = {}
        for rule in rules:
            unique.setdefault((rule.seam, rule.hit), rule)
        ordered = sorted(
            unique.values(), key=lambda r: (SEAMS.index(r.seam), r.hit)
        )
        return cls(seed=seed, rules=tuple(ordered))

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """A plan from CLI/env shorthand, or ``None`` for empty input.

        Accepts a bare integer (``"42"`` → :meth:`generate`), inline
        JSON (``'{"seed": ...}'``), or a path to a JSON file.
        """
        if text is None:
            return None
        text = text.strip()
        if not text:
            return None
        if text.lstrip("-").isdigit():
            return cls.generate(int(text))
        if text.startswith("{"):
            return cls.from_json(text)
        try:
            with open(text, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise InvalidSpecError(
                f"fault plan {text!r} is neither a seed, JSON, nor a "
                f"readable file: {exc}"
            ) from exc
