"""Deterministic fault injection for chaos testing the serve/engine stack.

``repro.faults`` is pure scheduling + matching: :class:`FaultPlan` (a
seed-reproducible list of :class:`FaultRule`\\ s) says *what* breaks and
*when*; :class:`FaultInjector` counts seam passes at runtime and hands
the matching rule to the instrumented seam, which performs the action
(drop the socket, stall the read, SIGKILL the worker, raise in the
writer, cut the stream).  Nothing imports this module on production
paths unless a plan is installed — seams call :func:`check`, which is a
single global load when inactive.

The chaos scenario runner lives in :mod:`repro.faults.chaos`; it imports
:mod:`repro.serve` and is therefore *not* re-exported here, keeping the
``serve → faults`` dependency edge acyclic.
"""

from .injector import (
    FaultInjector,
    active,
    check,
    install,
    installed,
    uninstall,
)
from .plan import SEAM_ACTIONS, SEAMS, FaultPlan, FaultRule

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "SEAMS",
    "SEAM_ACTIONS",
    "active",
    "check",
    "install",
    "installed",
    "uninstall",
]
