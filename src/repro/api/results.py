"""Typed result envelopes — the public API's answer to ``Any``.

Every query family returns its own payload dataclass (:class:`PRSQResult`,
:class:`CausalityAnswer`, ...) wrapped in one uniform :class:`QueryResult`
envelope carrying the schema version, the dataset fingerprint the result
was computed against, an echo of the spec, run stats (cache hit, wall
time, node accesses) and — for failed batch entries — a machine-actionable
:class:`ErrorInfo` drawn from the :mod:`repro.exceptions` taxonomy.

Envelopes are value objects: ``QueryResult.from_dict(env.to_dict()) ==
env`` holds exactly, including through a real JSON serialization (the
tagged :mod:`repro.api.wire` encoding preserves tuple ids, frozensets and
non-string dict keys).  ``to_raw()`` recovers the legacy payload shape
(the list / dict / :class:`~repro.core.model.CausalityResult` that
``Session.run`` used to return), which is what keeps the deprecation shims
honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.api import wire
from repro.core.model import Cause, CauseKind, CausalityResult, RunStats

SCHEMA_VERSION = 2


def _encode_ids(ids: Tuple[Hashable, ...]) -> List[Any]:
    return [wire.encode_value(v) for v in ids]


def _decode_ids(items: List[Any]) -> Tuple[Hashable, ...]:
    return tuple(wire.decode_value(v) for v in items)


# ---------------------------------------------------------------------------
# per-family payloads
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PRSQResult:
    """Probabilistic reverse skyline projection at one query point."""

    want: str
    alpha: float
    ids: Optional[Tuple[Hashable, ...]] = None          # answers / non_answers
    probabilities: Optional[Dict[Hashable, float]] = None

    @classmethod
    def from_raw(cls, value: Any, spec: Any) -> "PRSQResult":
        if spec.want == "probabilities":
            return cls(want=spec.want, alpha=spec.alpha,
                       probabilities=dict(value))
        return cls(want=spec.want, alpha=spec.alpha, ids=tuple(value))

    def to_raw(self) -> Any:
        if self.want == "probabilities":
            return dict(self.probabilities)
        return list(self.ids)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "want": self.want,
            "alpha": self.alpha,
            "ids": None if self.ids is None else _encode_ids(self.ids),
            "probabilities": (
                None
                if self.probabilities is None
                else wire.encode_value(self.probabilities)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PRSQResult":
        probabilities = payload.get("probabilities")
        if probabilities is not None:
            probabilities = wire.decode_value(probabilities)
        ids = payload.get("ids")
        return cls(
            want=payload["want"],
            alpha=payload["alpha"],
            ids=None if ids is None else _decode_ids(ids),
            probabilities=probabilities,
        )


@dataclass(frozen=True)
class CauseRecord:
    """One cause in a causality answer (wire form of :class:`Cause`)."""

    id: Hashable
    responsibility: float
    kind: str
    contingency_set: Tuple[Hashable, ...]  # sorted by repr, deterministic

    @classmethod
    def from_cause(cls, cause: Cause) -> "CauseRecord":
        return cls(
            id=cause.oid,
            responsibility=cause.responsibility,
            kind=cause.kind.value,
            contingency_set=tuple(sorted(cause.contingency_set, key=repr)),
        )

    def to_cause(self) -> Cause:
        return Cause(
            oid=self.id,
            responsibility=self.responsibility,
            contingency_set=frozenset(self.contingency_set),
            kind=CauseKind(self.kind),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": wire.encode_value(self.id),
            "responsibility": self.responsibility,
            "kind": self.kind,
            "contingency_set": _encode_ids(self.contingency_set),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CauseRecord":
        return cls(
            id=wire.decode_value(payload["id"]),
            responsibility=payload["responsibility"],
            kind=payload["kind"],
            contingency_set=_decode_ids(payload["contingency_set"]),
        )


@dataclass(frozen=True)
class StatsRecord:
    """Wire form of :class:`~repro.core.model.RunStats`."""

    node_accesses: int = 0
    cpu_time_s: float = 0.0
    candidates: int = 0
    oracle_evaluations: int = 0
    subsets_examined: int = 0

    @classmethod
    def from_stats(cls, stats: RunStats) -> "StatsRecord":
        return cls(
            node_accesses=stats.node_accesses,
            cpu_time_s=stats.cpu_time_s,
            candidates=stats.candidates,
            oracle_evaluations=stats.oracle_evaluations,
            subsets_examined=stats.subsets_examined,
        )

    def to_stats(self) -> RunStats:
        return RunStats(
            node_accesses=self.node_accesses,
            cpu_time_s=self.cpu_time_s,
            candidates=self.candidates,
            oracle_evaluations=self.oracle_evaluations,
            subsets_examined=self.subsets_examined,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_accesses": self.node_accesses,
            "cpu_time_s": self.cpu_time_s,
            "candidates": self.candidates,
            "oracle_evaluations": self.oracle_evaluations,
            "subsets_examined": self.subsets_examined,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StatsRecord":
        return cls(**payload)


@dataclass(frozen=True)
class CausalityAnswer:
    """Causes + responsibilities for one non-answer (CP, CR, pdf, skyband)."""

    an: Hashable
    alpha: Optional[float]
    causes: Tuple[CauseRecord, ...]
    stats: StatsRecord = field(default_factory=StatsRecord)

    @classmethod
    def from_raw(cls, value: CausalityResult, spec: Any = None) -> "CausalityAnswer":
        return cls(
            an=value.an_oid,
            alpha=value.alpha,
            causes=tuple(
                CauseRecord.from_cause(cause)
                for _oid, cause in sorted(
                    value.causes.items(), key=lambda kv: repr(kv[0])
                )
            ),
            stats=StatsRecord.from_stats(value.stats),
        )

    def to_raw(self) -> CausalityResult:
        result = CausalityResult(
            an_oid=self.an, alpha=self.alpha, stats=self.stats.to_stats()
        )
        for record in self.causes:
            result.add(record.to_cause())
        return result

    def ranked(self) -> List[Tuple[Hashable, float]]:
        """Causes by decreasing responsibility (mirrors the legacy model)."""
        return sorted(
            ((c.id, c.responsibility) for c in self.causes),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "an": wire.encode_value(self.an),
            "alpha": self.alpha,
            "causes": [record.to_dict() for record in self.causes],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CausalityAnswer":
        return cls(
            an=wire.decode_value(payload["an"]),
            alpha=payload["alpha"],
            causes=tuple(
                CauseRecord.from_dict(item) for item in payload["causes"]
            ),
            stats=StatsRecord.from_dict(payload["stats"]),
        )


@dataclass(frozen=True)
class ReverseSkylineResult:
    """Members of the reverse skyline of the query point."""

    ids: Tuple[Hashable, ...]

    @classmethod
    def from_raw(cls, value: Any, spec: Any = None) -> "ReverseSkylineResult":
        return cls(ids=tuple(value))

    def to_raw(self) -> List[Hashable]:
        return list(self.ids)

    def to_dict(self) -> Dict[str, Any]:
        return {"ids": _encode_ids(self.ids)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReverseSkylineResult":
        return cls(ids=_decode_ids(payload["ids"]))


@dataclass(frozen=True)
class ReverseKSkybandResult:
    """Members of the reverse k-skyband of the query point."""

    k: int
    ids: Tuple[Hashable, ...]

    @classmethod
    def from_raw(cls, value: Any, spec: Any) -> "ReverseKSkybandResult":
        return cls(k=spec.k, ids=tuple(value))

    def to_raw(self) -> List[Hashable]:
        return list(self.ids)

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.k, "ids": _encode_ids(self.ids)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReverseKSkybandResult":
        return cls(k=payload["k"], ids=_decode_ids(payload["ids"]))


@dataclass(frozen=True)
class ReverseTopKResult:
    """Users (weight-vector ids) for whom the query product ranks top-k."""

    k: int
    user_ids: Tuple[Hashable, ...]

    @classmethod
    def from_raw(cls, value: Any, spec: Any) -> "ReverseTopKResult":
        return cls(k=spec.k, user_ids=tuple(value))

    def to_raw(self) -> List[Hashable]:
        return list(self.user_ids)

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.k, "user_ids": _encode_ids(self.user_ids)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReverseTopKResult":
        return cls(k=payload["k"], user_ids=_decode_ids(payload["user_ids"]))


@dataclass(frozen=True)
class UpdateResult:
    """Acknowledgement of one applied dataset delta (the write family).

    ``fingerprint`` here is the *post-update* dataset fingerprint (the
    envelope's own ``fingerprint`` field matches it);
    ``previous_fingerprint`` is what cached results keyed before the
    update — entries under it can never be served again and age out of
    the LRU.
    """

    version: int
    n_objects: int
    deleted: int
    updated: int
    inserted: int
    previous_fingerprint: Optional[str] = None
    fingerprint: Optional[str] = None

    @classmethod
    def from_raw(cls, value: Dict[str, Any], spec: Any = None) -> "UpdateResult":
        return cls(**value)

    def to_raw(self) -> Dict[str, Any]:
        return self.to_dict()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "n_objects": self.n_objects,
            "deleted": self.deleted,
            "updated": self.updated,
            "inserted": self.inserted,
            "previous_fingerprint": self.previous_fingerprint,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "UpdateResult":
        return cls(**payload)


# ---------------------------------------------------------------------------
# the uniform envelope
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorInfo:
    """Machine-actionable failure: taxonomy code + exception type + text."""

    code: str
    type: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"code": self.code, "type": self.type, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "ErrorInfo":
        return cls(**payload)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        from repro.exceptions import error_code

        return cls(
            code=error_code(exc), type=type(exc).__name__, message=str(exc)
        )


@dataclass(frozen=True)
class RunInfo:
    """Execution metadata for one envelope.

    ``elapsed_s`` covers the full engine path — plan compilation, cache
    lookup, and (on a miss) execution — so a cache hit reports its real
    lookup cost.  ``phases`` is the per-phase wall-time breakdown
    (``filter``/``refine``/``probability``/``cache-lookup``/...) from the
    query's span tree; it is present only when the session was built with
    a :class:`repro.obs.Tracer`.
    """

    cached: bool = False
    elapsed_s: float = 0.0
    node_accesses: Optional[int] = None
    phases: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
            "node_accesses": self.node_accesses,
            "phases": None if self.phases is None else dict(self.phases),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunInfo":
        return cls(**payload)


@dataclass(frozen=True)
class QueryResult:
    """The uniform typed envelope every v2 API call returns."""

    spec: Any                      # the QuerySpec echo
    value: Optional[Any]           # typed per-family payload, None on error
    run: RunInfo = field(default_factory=RunInfo)
    fingerprint: Optional[str] = None
    error: Optional[ErrorInfo] = None
    schema_version: int = SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def kind(self) -> str:
        return self.spec.kind

    def to_raw(self) -> Any:
        """The legacy payload shape; raises if the query failed."""
        if self.error is not None:
            raise RuntimeError(
                f"query failed [{self.error.code}] {self.error.type}: "
                f"{self.error.message}"
            )
        return self.value.to_raw()

    def to_dict(self) -> Dict[str, Any]:
        from repro.api.registry import REGISTRY

        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "ok": self.ok,
            "spec": REGISTRY.spec_to_dict(self.spec),
            "value": None if self.value is None else self.value.to_dict(),
            "error": None if self.error is None else self.error.to_dict(),
            "run": self.run.to_dict(),
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryResult":
        from repro.api.registry import REGISTRY

        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported envelope schema_version {version!r}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        spec = REGISTRY.spec_from_dict(payload["spec"])
        family = REGISTRY.family(spec.kind)
        value = payload.get("value")
        error = payload.get("error")
        return cls(
            spec=spec,
            value=None if value is None else family.result_cls.from_dict(value),
            run=RunInfo.from_dict(payload["run"]),
            fingerprint=payload.get("fingerprint"),
            error=None if error is None else ErrorInfo.from_dict(error),
            schema_version=version,
        )

    @classmethod
    def from_outcome(
        cls, outcome: Any, fingerprint: Optional[str] = None
    ) -> "QueryResult":
        """Wrap an engine :class:`~repro.engine.session.QueryOutcome`."""
        from repro.api.registry import REGISTRY

        if outcome.error is not None:
            message = (
                outcome.error_message
                if outcome.error_message is not None
                else outcome.error
            )
            error = ErrorInfo(
                code=outcome.error_code or "internal_error",
                type=outcome.error_type or "Exception",
                message=message,
            )
            return cls(
                spec=outcome.spec,
                value=None,
                run=RunInfo(
                    cached=outcome.cached,
                    elapsed_s=outcome.elapsed_s,
                    phases=getattr(outcome, "phases", None),
                ),
                fingerprint=fingerprint,
                error=error,
            )
        family = REGISTRY.family_for_spec(outcome.spec)
        value = family.result_cls.from_raw(outcome.value, outcome.spec)
        node_accesses = None
        if isinstance(value, CausalityAnswer):
            node_accesses = value.stats.node_accesses
        return cls(
            spec=outcome.spec,
            value=value,
            run=RunInfo(
                cached=outcome.cached,
                elapsed_s=outcome.elapsed_s,
                node_accesses=node_accesses,
                phases=getattr(outcome, "phases", None),
            ),
            fingerprint=fingerprint,
        )
