"""Retry policy for the remote client: seeded, decorrelated-jitter backoff.

A :class:`RetryPolicy` decides **how long** to wait between attempts; the
client decides **what** is safe to retry (see
:meth:`~repro.api.remote.RemoteClient.query_envelope` — cacheable reads
and idempotency-keyed mutations only).  The schedule is *decorrelated
jitter* (each sleep drawn uniformly from ``[base_s, 3 * previous]``,
capped at ``cap_s``), which de-synchronizes retrying clients far better
than plain exponential backoff while keeping the expected wait bounded.

The jitter stream comes from a ``random.Random(seed)`` owned by each
schedule, so a fault-injection run replays bit-identically: same seed,
same sleeps, same interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import InvalidSpecError


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff parameters for automatic remote-client retries.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    initial attempt plus at most three retries.  ``base_s`` seeds (and
    floors) every sleep; ``cap_s`` ceilings it.  ``seed`` makes the
    jitter deterministic per schedule.
    """

    max_attempts: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidSpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise InvalidSpecError(
                f"need 0 < base_s <= cap_s, got base_s={self.base_s} "
                f"cap_s={self.cap_s}"
            )

    def schedule(self) -> Iterator[float]:
        """Yield successive sleep durations (decorrelated jitter).

        Infinite by design — the caller's attempt counter, not the
        schedule, terminates the loop.
        """
        rng = random.Random(self.seed)
        sleep = self.base_s
        while True:
            sleep = min(self.cap_s, rng.uniform(self.base_s, 3.0 * sleep))
            yield sleep
