"""JSON-safe value encoding for the public API wire format.

JSON alone cannot round-trip the id vocabulary the engine supports:
tuples become lists (and lists are not hashable, so they are rejected as
ids), frozensets have no JSON form at all, and non-string dict keys are
silently coerced to strings.  ``encode_value``/``decode_value`` close the
gap with a small tagged scheme::

    ("composite", 1)      <->  {"$tuple": ["composite", 1]}
    frozenset({"a", 2})   <->  {"$frozenset": [2, "a"]}      (sorted by repr)
    {3: 0.5}              <->  {"$map": [[3, 0.5]]}

Scalars and string-keyed dicts pass through untouched, so hand-written
spec files (``{"kind": "prsq", "q": [1, 2]}``) need no tags.  A plain dict
that happens to use a ``$``-prefixed key is escaped through the ``$map``
form, which keeps decoding unambiguous.  Encoding is deterministic
(insertion order preserved, sets sorted), so ``encode -> json -> decode ->
encode`` reproduces the original bytes — the property the envelope
round-trip tests pin down.
"""

from __future__ import annotations

from typing import Any

_TUPLE = "$tuple"
_FROZENSET = "$frozenset"
_MAP = "$map"
_TAGS = (_TUPLE, _FROZENSET, _MAP)


def encode_value(value: Any) -> Any:
    """Recursively encode *value* into a JSON-representable form."""
    if isinstance(value, tuple):
        return {_TUPLE: [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {_FROZENSET: [encode_value(v) for v in sorted(value, key=repr)]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        plain_keys = all(
            isinstance(k, str) and not k.startswith("$") for k in value
        )
        if plain_keys:
            return {k: encode_value(v) for k, v in value.items()}
        return {_MAP: [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag = next(iter(value))
            if tag == _TUPLE:
                return tuple(decode_value(v) for v in value[tag])
            if tag == _FROZENSET:
                return frozenset(decode_value(v) for v in value[tag])
            if tag == _MAP:
                return {
                    decode_value(k): decode_value(v) for k, v in value[tag]
                }
        return {k: decode_value(v) for k, v in value.items()}
    return value
