"""The query registry — one pluggable dispatch point for the whole zoo.

Before v2 the spec->planner mapping lived in a private dict in
:mod:`repro.engine.plan`, the kind->spec-class mapping in
:mod:`repro.engine.spec`, and the result->JSON conversion in ad-hoc CLI
helpers.  Adding a query family meant editing all three.  The registry
collapses them into one table: a :class:`QueryFamily` binds a spec class,
a planner, and a typed result envelope class under the spec's ``kind``
string, and every dispatch — planning, spec (de)serialization, envelope
decoding — goes through :data:`REGISTRY`.

A new family therefore plugs in with a single call and zero engine edits::

    from repro.api import REGISTRY

    REGISTRY.register(CountInWindowSpec, planner=plan_count_in_window,
                      result_cls=CountResult)

(the end-to-end proof lives in ``tests/test_api.py``).

This module is deliberately import-light: the engine dispatches through it
lazily, and the built-in families from :mod:`repro.api.families` are
loaded on first lookup, so ``repro.engine`` <-> ``repro.api`` never forms
an import cycle.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.api import wire
from repro.exceptions import InvalidSpecError, UnknownQueryKindError

#: Spec fields that are coordinate/weight sequences: serialized as plain
#: JSON arrays (the hand-written spec-file format) rather than tagged
#: tuples, and re-normalized by the spec's own ``__post_init__``.  Id
#: fields — including id *sequences* like ``user_ids`` — are not listed
#: here: they go through the tagged wire encoding so composite (tuple)
#: ids survive a real JSON round trip.  Hand-written JSON arrays still
#: decode fine for them (``decode_value`` passes plain lists through and
#: the spec's ``__post_init__`` re-tuples).
DEFAULT_SEQUENCE_FIELDS: Tuple[str, ...] = ("q", "weights")


@dataclass(frozen=True)
class QueryFamily:
    """Everything the system needs to know about one query kind."""

    kind: str
    spec_cls: Type
    planner: Callable[[Any], Any]  # spec -> repro.engine.plan.QueryPlan
    result_cls: Type               # typed envelope, see repro.api.results
    sequence_fields: Tuple[str, ...] = DEFAULT_SEQUENCE_FIELDS


class QueryRegistry:
    """Kind-keyed table of :class:`QueryFamily` entries."""

    def __init__(self, load_builtin: bool = False):
        self._families: Dict[str, QueryFamily] = {}
        self._load_builtin = load_builtin

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        spec_cls: Type,
        planner: Callable[[Any], Any],
        result_cls: Type,
        sequence_fields: Tuple[str, ...] = DEFAULT_SEQUENCE_FIELDS,
        replace: bool = False,
    ) -> QueryFamily:
        """Register one query family under ``spec_cls.kind``.

        ``replace=False`` (the default) treats double registration as a
        programming error; pass ``replace=True`` to shadow a family (e.g.
        to wrap a planner with instrumentation in tests).
        """
        kind = getattr(spec_cls, "kind", None)
        if not isinstance(kind, str) or not kind or kind == "abstract":
            raise ValueError(
                f"{spec_cls.__name__} needs a non-empty class-level 'kind'"
            )
        if not is_dataclass(spec_cls):
            raise ValueError(f"{spec_cls.__name__} must be a dataclass spec")
        self._ensure_builtin()
        if kind in self._families and not replace:
            raise ValueError(f"query kind {kind!r} is already registered")
        family = QueryFamily(
            kind=kind,
            spec_cls=spec_cls,
            planner=planner,
            result_cls=result_cls,
            sequence_fields=tuple(sequence_fields),
        )
        self._families[kind] = family
        return family

    def unregister(self, kind: str) -> None:
        self._families.pop(kind, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _ensure_builtin(self) -> None:
        if self._load_builtin:
            self._load_builtin = False  # before the import: it re-enters register()
            import repro.api.families  # noqa: F401 - registers the builtins

    def __contains__(self, kind: str) -> bool:
        self._ensure_builtin()
        return kind in self._families

    def kinds(self) -> List[str]:
        self._ensure_builtin()
        return sorted(self._families)

    def family(self, kind: str) -> QueryFamily:
        self._ensure_builtin()
        try:
            return self._families[kind]
        except KeyError:
            raise UnknownQueryKindError(
                f"unknown query kind {kind!r}; expected one of {sorted(self._families)}"
            ) from None

    def family_for_spec(self, spec: Any) -> QueryFamily:
        self._ensure_builtin()
        family = self._families.get(getattr(spec, "kind", None))
        if family is None or not isinstance(spec, family.spec_cls):
            raise TypeError(
                f"no registered query family for spec type {type(spec).__name__}"
            )
        return family

    # ------------------------------------------------------------------
    # spec wire format
    # ------------------------------------------------------------------
    @staticmethod
    def _nested_dataclass(spec_cls: Type, name: str) -> Optional[Type]:
        """The dataclass type of a config-style field, from its default.

        Spec fields holding a nested dataclass (``CausalitySpec.config``,
        or any custom family's equivalent) serialize as plain JSON objects.
        The target type is recovered from the field's default value, so
        the registry needs no per-type special cases.
        """
        f = spec_cls.__dataclass_fields__.get(name)
        if f is None:
            return None
        default = f.default
        if default is MISSING and f.default_factory is not MISSING:
            default = f.default_factory()
        if default is not MISSING and is_dataclass(default):
            return type(default)
        return None

    def spec_to_dict(self, spec: Any) -> Dict[str, Any]:
        """JSON-ready dict for a spec (inverse of :meth:`spec_from_dict`)."""
        family = self.family_for_spec(spec)
        payload: Dict[str, Any] = {"kind": family.kind}
        for f in fields(spec):
            value = getattr(spec, f.name)
            if is_dataclass(value) and not isinstance(value, type):
                value = {cf.name: getattr(value, cf.name) for cf in fields(value)}
            elif f.name in family.sequence_fields and isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            else:
                # Id-like fields go through the tagged wire encoding so a
                # tuple oid survives a *real* JSON round trip, not just an
                # in-memory one.
                value = wire.encode_value(value)
            payload[f.name] = value
        return payload

    def spec_from_dict(self, payload: Dict[str, Any]) -> Any:
        """Build a spec from its JSON dict form."""
        data = dict(payload)
        kind = data.pop("kind", None)
        family = self.family(kind)
        cls = family.spec_cls
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise InvalidSpecError(
                f"{kind}: unknown field(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        for name, value in data.items():
            nested_cls = self._nested_dataclass(cls, name)
            if nested_cls is not None and isinstance(value, dict):
                allowed_cfg = {f.name for f in fields(nested_cls)}
                unknown_cfg = set(value) - allowed_cfg
                if unknown_cfg:
                    raise InvalidSpecError(
                        f"{kind}: unknown {name} field(s) {sorted(unknown_cfg)}; "
                        f"allowed: {sorted(allowed_cfg)}"
                    )
                data[name] = nested_cls(**value)
            elif name not in family.sequence_fields:
                data[name] = wire.decode_value(data[name])
        return cls(**data)


#: The process-global registry every engine dispatch goes through.
REGISTRY = QueryRegistry(load_builtin=True)
