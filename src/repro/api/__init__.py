"""repro.api — the versioned public API (v2).

Three pillars:

* :data:`~repro.api.registry.REGISTRY` — one table binding every query
  family's spec class, planner and typed result envelope; planning, spec
  (de)serialization and envelope decoding all dispatch through it, so a
  new family plugs in with one ``register`` call and zero engine edits;
* :mod:`~repro.api.results` — per-family payload dataclasses wrapped in a
  uniform, schema-versioned :class:`~repro.api.results.QueryResult`
  envelope with run stats, dataset fingerprint, spec echo and a
  machine-actionable error taxonomy;
* :func:`~repro.api.client.connect` — the fluent
  :class:`~repro.api.client.Client` facade with per-family methods and a
  batch builder whose ``.stream()`` yields envelopes incrementally.

Legacy ``Session.run``/``Session.execute`` keep working through
deprecation shims; new code should go through this package.
"""

from repro.api import families as _families  # noqa: F401 - registers builtins
from repro.api.client import BatchBuilder, Client, connect, connect_pdf
from repro.api.remote import RemoteBatchBuilder, RemoteClient
from repro.api.retry import RetryPolicy
from repro.api.registry import (
    DEFAULT_SEQUENCE_FIELDS,
    QueryFamily,
    QueryRegistry,
    REGISTRY,
)
from repro.api.results import (
    CausalityAnswer,
    CauseRecord,
    ErrorInfo,
    PRSQResult,
    QueryResult,
    ReverseKSkybandResult,
    ReverseSkylineResult,
    ReverseTopKResult,
    RunInfo,
    SCHEMA_VERSION,
    StatsRecord,
    UpdateResult,
)
from repro.api.wire import decode_value, encode_value

__all__ = [
    "BatchBuilder",
    "CausalityAnswer",
    "CauseRecord",
    "Client",
    "DEFAULT_SEQUENCE_FIELDS",
    "ErrorInfo",
    "PRSQResult",
    "QueryFamily",
    "QueryRegistry",
    "QueryResult",
    "REGISTRY",
    "RemoteBatchBuilder",
    "RemoteClient",
    "RetryPolicy",
    "ReverseKSkybandResult",
    "ReverseSkylineResult",
    "ReverseTopKResult",
    "RunInfo",
    "SCHEMA_VERSION",
    "StatsRecord",
    "UpdateResult",
    "connect",
    "connect_pdf",
    "decode_value",
    "encode_value",
]
