"""The fluent client facade: ``repro.api.connect(dataset)`` and friends.

The client is the stable public surface over :mod:`repro.engine`.  Every
method builds the corresponding spec, executes it on the shared session,
and returns a typed :class:`~repro.api.results.QueryResult` envelope::

    client = repro.api.connect(dataset)
    answer = client.prsq((5.0, 5.0), alpha=0.5)
    print(answer.value.ids, answer.run.cached, answer.fingerprint)

    blame = client.causality(an="alice", q=(5.0, 5.0), alpha=0.5)
    print(blame.value.ranked())

Batches are assembled with the fluent builder and delivered either all at
once or as an incremental stream (the CLI's NDJSON ``batch --stream``
rides on the same path)::

    batch = client.batch().prsq(q, alpha=0.3).prsq(q, alpha=0.7)
    for envelope in batch.stream(workers=4):
        handle(envelope)        # arrives as chunks complete, input order

Single-query methods raise on failure; batch execution captures per-spec
errors into failed envelopes (``error.code`` from the
:mod:`repro.exceptions` taxonomy) so one bad query cannot discard the
rest.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Hashable, Iterable, Iterator, List, Optional, Sequence, Union

from repro import obs
from repro.api.results import QueryResult
from repro.engine.executor import Executor, ParallelExecutor, SerialExecutor
from repro.engine.session import Session
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    QuerySpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    UpdateSpec,
)
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import ContinuousUncertainObject


def connect(
    dataset: Union[UncertainDataset, str, Path],
    dataset_kind: str = "uncertain",
    trace: Any = None,
    **session_kwargs: Any,
) -> "Client":
    """Open a :class:`Client` over *dataset*.

    *dataset* may be an in-memory dataset or a CSV path (``dataset_kind``
    selects the ``uncertain`` long format or the ``certain`` wide format).
    Keyword arguments (``cache_size``, ``use_numpy``, ``cache``,
    ``build_index``, ``shards``) pass through to the underlying
    :class:`~repro.engine.session.Session`; ``shards=k`` STR-partitions
    the dataset into k spatial shards with bit-identical results.

    ``trace`` turns on phase-level tracing: pass ``True`` for an in-memory
    :class:`repro.obs.Tracer`, a path or writable stream for an NDJSON
    span sink, or an existing tracer to share one across clients.  Traced
    queries carry a ``run.phases`` breakdown in every envelope.
    """
    if isinstance(dataset, (str, Path)):
        from repro.io.csvio import load_certain_csv, load_uncertain_csv

        if dataset_kind == "certain":
            dataset = load_certain_csv(dataset)
        elif dataset_kind == "uncertain":
            dataset = load_uncertain_csv(dataset)
        else:
            raise ValueError(
                f"dataset_kind must be uncertain|certain, got {dataset_kind!r}"
            )
    if trace is not None:
        session_kwargs["tracer"] = obs.as_tracer(trace)
    return Client(Session(dataset, **session_kwargs))


def connect_pdf(
    objects: Sequence[ContinuousUncertainObject],
    samples_per_object: int = 64,
    seed: int = 0,
    trace: Any = None,
    **session_kwargs: Any,
) -> "Client":
    """A client over continuous pdf objects (Section 3.2 model).

    ``trace`` behaves exactly as in :func:`connect`.
    """
    if trace is not None:
        session_kwargs["tracer"] = obs.as_tracer(trace)
    return Client(
        Session.from_pdf_objects(
            objects,
            samples_per_object=samples_per_object,
            seed=seed,
            **session_kwargs,
        )
    )


class Client:
    """Fluent, typed access to one session's query zoo."""

    def __init__(self, session: Session):
        self.session = session

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        return self.session.fingerprint

    @property
    def shard_count(self) -> int:
        """Spatial shard count of the session's dataset (1 if unsharded)."""
        return self.session.shard_count

    @property
    def tracer(self) -> Optional[obs.Tracer]:
        """The session's tracer (``None`` unless opened with ``trace=``)."""
        return self.session.tracer

    def cache_stats(self) -> dict:
        return self.session.cache_stats()

    def metrics(self) -> dict:
        """Snapshot of the process-global metrics registry (plain dict)."""
        return obs.registry().snapshot()

    def close(self) -> None:
        """Close the tracer's owned sink, if any (idempotent)."""
        if self.session.tracer is not None:
            self.session.tracer.close()

    def query(self, spec: QuerySpec) -> QueryResult:
        """Execute any spec — including runtime-registered families."""
        return self.session.query(spec)

    def batch(self) -> "BatchBuilder":
        """Start a fluent batch; finish with ``.run()`` or ``.stream()``."""
        return BatchBuilder(self)

    # ------------------------------------------------------------------
    # one method per built-in query family
    # ------------------------------------------------------------------
    def prsq(
        self,
        q: Sequence[float],
        alpha: float = 0.5,
        want: str = "answers",
    ) -> QueryResult:
        return self.query(PRSQSpec(q=tuple(q), alpha=alpha, want=want))

    def causality(
        self,
        an: Hashable,
        q: Sequence[float],
        alpha: float = 0.5,
        config: Any = None,
    ) -> QueryResult:
        spec = (
            CausalitySpec(an=an, q=tuple(q), alpha=alpha)
            if config is None
            else CausalitySpec(an=an, q=tuple(q), alpha=alpha, config=config)
        )
        return self.query(spec)

    def pdf_causality(
        self,
        an: Hashable,
        q: Sequence[float],
        alpha: float = 0.5,
        config: Any = None,
    ) -> QueryResult:
        spec = (
            PdfCausalitySpec(an=an, q=tuple(q), alpha=alpha)
            if config is None
            else PdfCausalitySpec(an=an, q=tuple(q), alpha=alpha, config=config)
        )
        return self.query(spec)

    def causality_certain(
        self, an: Hashable, q: Sequence[float]
    ) -> QueryResult:
        return self.query(CausalityCertainSpec(an=an, q=tuple(q)))

    def k_skyband_causality(
        self, an: Hashable, q: Sequence[float], k: int = 1
    ) -> QueryResult:
        return self.query(KSkybandCausalitySpec(an=an, q=tuple(q), k=k))

    def reverse_skyline(self, q: Sequence[float]) -> QueryResult:
        return self.query(ReverseSkylineSpec(q=tuple(q)))

    def reverse_k_skyband(self, q: Sequence[float], k: int = 1) -> QueryResult:
        return self.query(ReverseKSkybandSpec(q=tuple(q), k=k))

    def reverse_top_k(
        self,
        q: Sequence[float],
        k: int,
        weights: Sequence[Sequence[float]],
        user_ids: Optional[Sequence[Hashable]] = None,
    ) -> QueryResult:
        return self.query(
            ReverseTopKSpec(
                q=tuple(q),
                k=k,
                weights=tuple(tuple(w) for w in weights),
                user_ids=None if user_ids is None else tuple(user_ids),
            )
        )

    # ------------------------------------------------------------------
    # live updates (the write path; see Session.apply)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_object(
        obj: Union[UncertainObject, Hashable],
        samples: Optional[Sequence[Sequence[float]]],
        probabilities: Optional[Sequence[float]],
        name: Optional[str],
    ) -> UncertainObject:
        if isinstance(obj, UncertainObject):
            if samples is not None or probabilities is not None or name is not None:
                raise ValueError(
                    "cannot combine an UncertainObject with samples=/"
                    "probabilities=/name= overrides; build the replacement "
                    "object yourself, or pass the bare id with samples="
                )
            return obj
        if samples is None:
            raise ValueError(
                "pass an UncertainObject, or an id plus samples= "
                "(and optionally probabilities=/name=)"
            )
        return UncertainObject(obj, samples, probabilities, name=name)

    def insert(
        self,
        obj: Union[UncertainObject, Hashable],
        samples: Optional[Sequence[Sequence[float]]] = None,
        probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> QueryResult:
        """Insert one object; accepts an object or ``(id, samples=...)``."""
        target = self._as_object(obj, samples, probabilities, name)
        return self.query(UpdateSpec(inserts=(target,)))

    def delete(self, oid: Hashable) -> QueryResult:
        """Delete the object with id *oid*."""
        return self.query(UpdateSpec(deletes=(oid,)))

    def update(
        self,
        obj: Union[UncertainObject, Hashable],
        samples: Optional[Sequence[Sequence[float]]] = None,
        probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> QueryResult:
        """Replace the object sharing the given id, keeping its position."""
        target = self._as_object(obj, samples, probabilities, name)
        return self.query(UpdateSpec(updates=(target,)))

    def apply(self, delta: DatasetDelta) -> QueryResult:
        """Apply a multi-op :class:`DatasetDelta` atomically."""
        return self.query(UpdateSpec.from_delta(delta))

    def __repr__(self) -> str:
        return f"<Client {self.session!r}>"


class BatchBuilder:
    """Accumulates specs fluently; executes with error-capturing envelopes."""

    def __init__(self, client: Client):
        self._client = client
        self._specs: List[QuerySpec] = []
        self._last_executor: Optional[Executor] = None

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def specs(self) -> List[QuerySpec]:
        return list(self._specs)

    # ------------------------------------------------------------------
    # fluent accumulation
    # ------------------------------------------------------------------
    def add(self, spec: QuerySpec) -> "BatchBuilder":
        self._specs.append(spec)
        return self

    def extend(self, specs: Iterable[QuerySpec]) -> "BatchBuilder":
        self._specs.extend(specs)
        return self

    def prsq(
        self, q: Sequence[float], alpha: float = 0.5, want: str = "answers"
    ) -> "BatchBuilder":
        return self.add(PRSQSpec(q=tuple(q), alpha=alpha, want=want))

    def causality(
        self, an: Hashable, q: Sequence[float], alpha: float = 0.5
    ) -> "BatchBuilder":
        return self.add(CausalitySpec(an=an, q=tuple(q), alpha=alpha))

    def causality_certain(
        self, an: Hashable, q: Sequence[float]
    ) -> "BatchBuilder":
        return self.add(CausalityCertainSpec(an=an, q=tuple(q)))

    def reverse_skyline(self, q: Sequence[float]) -> "BatchBuilder":
        return self.add(ReverseSkylineSpec(q=tuple(q)))

    def reverse_k_skyband(
        self, q: Sequence[float], k: int = 1
    ) -> "BatchBuilder":
        return self.add(ReverseKSkybandSpec(q=tuple(q), k=k))

    def insert(self, obj: UncertainObject) -> "BatchBuilder":
        """Queue an insert (serial execution only; see ``UpdateSpec``)."""
        return self.add(UpdateSpec(inserts=(obj,)))

    def delete(self, oid: Hashable) -> "BatchBuilder":
        return self.add(UpdateSpec(deletes=(oid,)))

    def update(self, obj: UncertainObject) -> "BatchBuilder":
        return self.add(UpdateSpec(updates=(obj,)))

    def apply(self, delta: DatasetDelta) -> "BatchBuilder":
        return self.add(UpdateSpec.from_delta(delta))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _executor(self, workers: int, executor: Optional[Executor]) -> Executor:
        if executor is not None:
            return executor
        if workers > 1:
            return ParallelExecutor(workers=workers)
        return SerialExecutor()

    def stream(
        self, workers: int = 1, executor: Optional[Executor] = None
    ) -> Iterator[QueryResult]:
        """Yield one envelope per spec, incrementally, in input order.

        The fingerprint is re-read per envelope so a serial batch that
        interleaves ``update`` specs stamps each result with the dataset
        version it was actually computed against.
        """
        session = self._client.session
        chosen = self._executor(workers, executor)
        self._last_executor = chosen
        for outcome in chosen.stream(session, list(self._specs)):
            yield QueryResult.from_outcome(
                outcome, fingerprint=session.fingerprint
            )

    def run(
        self, workers: int = 1, executor: Optional[Executor] = None
    ) -> List[QueryResult]:
        """Execute the batch and return all envelopes at once."""
        return list(self.stream(workers=workers, executor=executor))

    def cache_stats(self) -> Optional[dict]:
        """Merged hit/miss/eviction counters for the last run.

        For a parallel run this aggregates the per-worker cache deltas
        (workers hold private caches), so churn-induced cold-cache
        regressions show up even though the parent session's own cache
        saw no traffic.  ``None`` before the first ``run()``/``stream()``.
        """
        if (
            self._last_executor is None
            or self._last_executor.last_cache_stats is None
        ):
            return None
        return self._last_executor.last_cache_stats.as_dict()

    def metrics(self) -> Optional[dict]:
        """Metrics delta for the last run, in registry-snapshot shape.

        For a parallel run this is the merged worker hand-back (also
        folded into the process-global registry); ``None`` before the
        first ``run()``/``stream()``.
        """
        if self._last_executor is None:
            return None
        return self._last_executor.last_metrics
