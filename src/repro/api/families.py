"""Built-in query family registrations — the one place the zoo is wired.

Each line binds a spec class, its planner and its typed result envelope
under the spec's ``kind``.  Everything else — ``compile_plan``,
``spec_to_dict``/``spec_from_dict``, CLI JSON/NDJSON emission, the client
facade methods — dispatches through :data:`~repro.api.registry.REGISTRY`,
so this table *is* the query zoo.  A new family (in user code or a future
PR) is one more ``REGISTRY.register(...)`` call; no engine edits.

This module is imported lazily by the registry on first lookup; it must
not be imported directly by engine modules at module level.
"""

from __future__ import annotations

from repro.api.registry import REGISTRY
from repro.api.results import (
    CausalityAnswer,
    PRSQResult,
    ReverseKSkybandResult,
    ReverseSkylineResult,
    ReverseTopKResult,
    UpdateResult,
)
from repro.engine.plan import (
    plan_causality,
    plan_causality_certain,
    plan_k_skyband_causality,
    plan_pdf_causality,
    plan_prsq,
    plan_reverse_k_skyband,
    plan_reverse_skyline,
    plan_reverse_top_k,
    plan_update,
)
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    QuerySpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    UpdateSpec,
)

_BUILTIN = (
    (PRSQSpec, plan_prsq, PRSQResult),
    (CausalitySpec, plan_causality, CausalityAnswer),
    (PdfCausalitySpec, plan_pdf_causality, CausalityAnswer),
    (CausalityCertainSpec, plan_causality_certain, CausalityAnswer),
    (KSkybandCausalitySpec, plan_k_skyband_causality, CausalityAnswer),
    (ReverseSkylineSpec, plan_reverse_skyline, ReverseSkylineResult),
    (ReverseKSkybandSpec, plan_reverse_k_skyband, ReverseKSkybandResult),
    (ReverseTopKSpec, plan_reverse_top_k, ReverseTopKResult),
    (UpdateSpec, plan_update, UpdateResult),
)

for _spec_cls, _planner, _result_cls in _BUILTIN:
    if _spec_cls.kind not in REGISTRY:  # idempotent under re-import
        REGISTRY.register(_spec_cls, planner=_planner, result_cls=_result_cls)

del _spec_cls, _planner, _result_cls

__all__ = ["QuerySpec"]
