"""Async remote client: the :class:`~repro.api.client.Client` facade over
a socket.

One TCP connection speaks the NDJSON protocol and multiplexes: every
request carries a fresh ``id``, a background reader task demultiplexes
response frames by it, so **many requests can be in flight on one
connection at once** — ``asyncio.gather`` over twenty ``prsq`` calls is
the intended usage, not a protocol violation.

The method surface mirrors the local client one-for-one (``prsq``,
``causality``, ``insert``, ``batch()...``), and the payloads *are* the
local payloads: responses carry v2 envelopes verbatim, decoded back into
typed :class:`~repro.api.results.QueryResult` objects whose values round
-trip bit-identically.  Single-query methods raise on failure — an
``overloaded`` rejection raises :class:`~repro.exceptions.
OverloadedError` with the server's ``retry_after_s`` hint, an envelope
error raises :class:`~repro.exceptions.RemoteQueryError` carrying the
server-side taxonomy code.  ``query_envelope`` returns failed envelopes
instead, for batch-style consumers.

Every response's ``session_version`` is remembered on
:attr:`RemoteClient.session_version`, so a writer can fence subsequent
reads (\"was this answer computed at or after my update?\").

    async with await RemoteClient.connect(port=port) as client:
        answer = await client.prsq((5.0, 5.0), alpha=0.5)
        await client.insert("new", samples=[[1, 1]], probabilities=[1.0])
        results = await client.batch().prsq(q, alpha=0.3).run()
"""

from __future__ import annotations

import asyncio
import itertools
import json
import uuid
from typing import (
    Any,
    AsyncIterator,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.api.client import Client
from repro.api.registry import REGISTRY
from repro.api.results import QueryResult
from repro.api.retry import RetryPolicy
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    QuerySpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    UpdateSpec,
)
from repro.exceptions import (
    DatasetDegradedError,
    DeadlineExceededError,
    InvalidRequestError,
    OverloadedError,
    RemoteProtocolError,
    RemoteQueryError,
    UnknownDatasetError,
)
from repro.serve.wire import DEFAULT_DATASET, DEFAULT_PORT, encode_frame
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject

#: Extra client-side wait beyond ``deadline_ms`` before giving up
#: locally — covers wire latency so the server's own deadline answer
#: (the authoritative one) usually arrives first.
_DEADLINE_GRACE_S = 1.0


class RemoteClient:
    """One multiplexed NDJSON connection to a ``repro serve`` server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        dataset: str = DEFAULT_DATASET,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[float] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.dataset = dataset
        self.retry = retry
        self.deadline_ms = deadline_ms
        self.session_version: Optional[int] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Queue"] = {}
        self._write_lock = asyncio.Lock()
        self._fatal: Optional[BaseException] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        # Reconnect coordinates (set by connect(); stream-constructed
        # clients have no address and therefore never auto-reconnect).
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._limit: int = 1 << 20
        self._conn_lock = asyncio.Lock()
        metrics = obs.registry()
        self._retries = metrics.counter("retry.attempts")
        self._reconnects = metrics.counter("retry.reconnects")

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        dataset: str = DEFAULT_DATASET,
        limit: int = 1 << 20,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[float] = None,
    ) -> "RemoteClient":
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        client = cls(
            reader, writer, dataset=dataset, retry=retry,
            deadline_ms=deadline_ms,
        )
        client._host, client._port, client._limit = host, port, limit
        return client

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    self._fatal = RemoteProtocolError(
                        f"server sent undecodable frame: {exc}"
                    )
                    break
                queue = self._pending.get(payload.get("id"))
                if queue is not None:
                    queue.put_nowait(payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fatal = RemoteProtocolError(f"connection lost: {exc}")
        finally:
            if self._fatal is None:
                self._fatal = RemoteProtocolError(
                    "connection closed by server"
                )
            for request_id in sorted(self._pending):
                self._pending[request_id].put_nowait(None)  # wake every waiter

    async def _send(self, payload: Dict[str, Any]) -> None:
        if self._fatal is not None:
            raise self._fatal
        frame = encode_frame(payload)
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except ConnectionError as exc:
            raise RemoteProtocolError(f"send failed: {exc}") from exc

    async def _reconnect(self) -> None:
        """Re-dial the remembered address after a connection loss.

        Only clients built via :meth:`connect` know their address;
        stream-constructed ones re-raise the fatal error.  Concurrent
        retriers serialize on a lock — whoever gets it first re-dials,
        the rest see ``_fatal`` already cleared and return.
        """
        if self._host is None or self._port is None:
            raise self._fatal or RemoteProtocolError("connection lost")
        async with self._conn_lock:
            if self._fatal is None:
                return  # another coroutine already reconnected
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            try:
                reader, writer = await asyncio.open_connection(
                    self._host, self._port, limit=self._limit
                )
            except OSError as exc:
                raise RemoteProtocolError(
                    f"reconnect to {self._host}:{self._port} failed: {exc}"
                ) from exc
            self._reader = reader
            self._writer = writer
            self._fatal = None
            self._reader_task = asyncio.ensure_future(self._read_loop())
            self._reconnects.inc()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "RemoteClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def _note_version(self, response: Dict[str, Any]) -> None:
        version = response.get("session_version")
        if version is not None:
            self.session_version = version

    def _raise_request_error(self, response: Dict[str, Any]) -> None:
        """Map a request-level error frame onto a typed exception."""
        error = response.get("error") or {}
        code = error.get("code", "internal_error")
        message = error.get("message", "")
        if code == "overloaded":
            raise OverloadedError(
                message or "server overloaded",
                retry_after_s=response.get("retry_after_s", 0.1),
            )
        if code == "unknown_dataset":
            raise UnknownDatasetError(message)
        if code == "invalid_request":
            raise InvalidRequestError(message)
        if code == "deadline_exceeded":
            raise DeadlineExceededError(message or "deadline exceeded")
        if code == "degraded":
            raise DatasetDegradedError(message or "dataset degraded")
        raise RemoteQueryError(code, error.get("type", "Exception"), message)

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one single-response request; return the raw response frame.

        Raises the mapped exception for request-level errors; envelope
        failures (``result`` present, ``ok`` false) come back as-is.  A
        ``deadline_ms`` field in *payload* also bounds the client-side
        wait (budget plus a grace margin for the wire), so a server that
        stalls past the deadline cannot park the caller forever.
        """
        request_id = next(self._ids)
        queue: "asyncio.Queue" = asyncio.Queue()
        self._pending[request_id] = queue
        budget_ms = payload.get("deadline_ms")
        try:
            await self._send({"id": request_id, **payload})
            if budget_ms is None:
                response = await queue.get()
            else:
                try:
                    response = await asyncio.wait_for(
                        queue.get(), budget_ms / 1000.0 + _DEADLINE_GRACE_S
                    )
                except asyncio.TimeoutError:
                    raise DeadlineExceededError(
                        f"no response within deadline_ms={budget_ms} "
                        f"(+{_DEADLINE_GRACE_S}s grace)"
                    ) from None
        finally:
            self._pending.pop(request_id, None)
        if response is None:
            raise self._fatal or RemoteProtocolError("connection closed")
        self._note_version(response)
        if not response.get("ok", False) and "result" not in response:
            self._raise_request_error(response)
        return response

    async def _request_with_retry(
        self, payload: Dict[str, Any], *, retryable: bool
    ) -> Dict[str, Any]:
        """One request, retried per :attr:`retry` when *retryable*.

        Retries only ``overloaded`` rejections (sleeping at least the
        server's ``retry_after_s`` hint) and connection losses (after
        re-dialing).  Deadline, degraded, and query errors are final —
        retrying cannot change their answer.
        """
        policy = self.retry
        if policy is None or not retryable:
            return await self.request(payload)
        schedule = policy.schedule()
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._fatal is not None:
                    await self._reconnect()
                return await self.request(payload)
            except (OverloadedError, RemoteProtocolError) as exc:
                if attempt >= policy.max_attempts:
                    raise
                delay = next(schedule)
                if isinstance(exc, OverloadedError):
                    delay = max(delay, exc.retry_after_s)
                self._retries.inc()
                await asyncio.sleep(delay)

    async def query_envelope(
        self,
        spec: QuerySpec,
        *,
        dataset: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        idem: Optional[str] = None,
    ) -> Tuple[QueryResult, Optional[int]]:
        """``(envelope, session_version)`` — never raises for data errors.

        *deadline_ms* (or the client default) rides the request frame and
        is enforced at every server checkpoint.  Mutations get *idem* (or
        a generated key) so automatic retries apply **exactly once**;
        reads auto-retry only when the spec is deterministic
        (``cacheable`` and not ``mutates``) — a replay is then
        indistinguishable from the first attempt.
        """
        payload: Dict[str, Any] = {
            "op": "query",
            "spec": REGISTRY.spec_to_dict(spec),
            "dataset": dataset or self.dataset,
        }
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            payload["deadline_ms"] = budget
        mutates = bool(getattr(spec, "mutates", False))
        if mutates:
            payload["idem"] = idem if idem is not None else uuid.uuid4().hex
        retryable = mutates or (
            bool(getattr(spec, "cacheable", False)) and not mutates
        )
        response = await self._request_with_retry(
            payload, retryable=retryable
        )
        envelope = QueryResult.from_dict(response["result"])
        return envelope, response.get("session_version")

    async def query(
        self,
        spec: QuerySpec,
        *,
        dataset: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        idem: Optional[str] = None,
    ) -> QueryResult:
        """Execute one spec remotely; raise on failure (like ``Client``)."""
        envelope, _version = await self.query_envelope(
            spec, dataset=dataset, deadline_ms=deadline_ms, idem=idem
        )
        if not envelope.ok:
            error = envelope.error
            raise RemoteQueryError(error.code, error.type, error.message)
        return envelope

    # ------------------------------------------------------------------
    # service ops
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def datasets(self) -> List[str]:
        return (await self.ping())["datasets"]

    async def stats(self) -> Dict[str, Any]:
        """The server's stats payload (SLO quantiles, cache, admission)."""
        return await self.request({"op": "stats"})

    # ------------------------------------------------------------------
    # the Client facade, one awaitable per family
    # ------------------------------------------------------------------
    async def prsq(
        self, q: Sequence[float], alpha: float = 0.5, want: str = "answers"
    ) -> QueryResult:
        return await self.query(PRSQSpec(q=tuple(q), alpha=alpha, want=want))

    async def causality(
        self,
        an: Hashable,
        q: Sequence[float],
        alpha: float = 0.5,
        config: Any = None,
    ) -> QueryResult:
        spec = (
            CausalitySpec(an=an, q=tuple(q), alpha=alpha)
            if config is None
            else CausalitySpec(an=an, q=tuple(q), alpha=alpha, config=config)
        )
        return await self.query(spec)

    async def pdf_causality(
        self,
        an: Hashable,
        q: Sequence[float],
        alpha: float = 0.5,
        config: Any = None,
    ) -> QueryResult:
        spec = (
            PdfCausalitySpec(an=an, q=tuple(q), alpha=alpha)
            if config is None
            else PdfCausalitySpec(an=an, q=tuple(q), alpha=alpha, config=config)
        )
        return await self.query(spec)

    async def causality_certain(
        self, an: Hashable, q: Sequence[float]
    ) -> QueryResult:
        return await self.query(CausalityCertainSpec(an=an, q=tuple(q)))

    async def k_skyband_causality(
        self, an: Hashable, q: Sequence[float], k: int = 1
    ) -> QueryResult:
        return await self.query(KSkybandCausalitySpec(an=an, q=tuple(q), k=k))

    async def reverse_skyline(self, q: Sequence[float]) -> QueryResult:
        return await self.query(ReverseSkylineSpec(q=tuple(q)))

    async def reverse_k_skyband(
        self, q: Sequence[float], k: int = 1
    ) -> QueryResult:
        return await self.query(ReverseKSkybandSpec(q=tuple(q), k=k))

    async def reverse_top_k(
        self,
        q: Sequence[float],
        k: int,
        weights: Sequence[Sequence[float]],
        user_ids: Optional[Sequence[Hashable]] = None,
    ) -> QueryResult:
        return await self.query(
            ReverseTopKSpec(
                q=tuple(q),
                k=k,
                weights=tuple(tuple(w) for w in weights),
                user_ids=None if user_ids is None else tuple(user_ids),
            )
        )

    # ------------------------------------------------------------------
    # live updates (serialized server-side through the single writer)
    # ------------------------------------------------------------------
    async def insert(
        self,
        obj: Union[UncertainObject, Hashable],
        samples: Optional[Sequence[Sequence[float]]] = None,
        probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> QueryResult:
        target = Client._as_object(obj, samples, probabilities, name)
        return await self.query(UpdateSpec(inserts=(target,)))

    async def delete(self, oid: Hashable) -> QueryResult:
        return await self.query(UpdateSpec(deletes=(oid,)))

    async def update(
        self,
        obj: Union[UncertainObject, Hashable],
        samples: Optional[Sequence[Sequence[float]]] = None,
        probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> QueryResult:
        target = Client._as_object(obj, samples, probabilities, name)
        return await self.query(UpdateSpec(updates=(target,)))

    async def apply(self, delta: DatasetDelta) -> QueryResult:
        return await self.query(UpdateSpec.from_delta(delta))

    # ------------------------------------------------------------------
    def batch(self) -> "RemoteBatchBuilder":
        """Start a fluent batch; finish with ``.run()`` or ``.stream()``."""
        return RemoteBatchBuilder(self)

    def __repr__(self) -> str:
        return (
            f"<RemoteClient dataset={self.dataset!r} "
            f"session_version={self.session_version}>"
        )


class RemoteBatchBuilder:
    """The fluent batch builder, streamed over one ``batch`` frame.

    ``stream()`` yields one :class:`QueryResult` per spec in input order
    as the server produces them; per-spec *data* errors arrive as failed
    envelopes (exactly the local ``BatchBuilder`` contract).  A per-spec
    admission rejection — possible only under overload — raises
    :class:`OverloadedError` mid-stream; retry the batch (or its tail)
    after the hint.
    """

    def __init__(self, client: RemoteClient):
        self._client = client
        self._specs: List[QuerySpec] = []

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def specs(self) -> List[QuerySpec]:
        return list(self._specs)

    # -- fluent accumulation (mirrors BatchBuilder) ---------------------
    def add(self, spec: QuerySpec) -> "RemoteBatchBuilder":
        self._specs.append(spec)
        return self

    def extend(self, specs: Iterable[QuerySpec]) -> "RemoteBatchBuilder":
        self._specs.extend(specs)
        return self

    def prsq(
        self, q: Sequence[float], alpha: float = 0.5, want: str = "answers"
    ) -> "RemoteBatchBuilder":
        return self.add(PRSQSpec(q=tuple(q), alpha=alpha, want=want))

    def causality(
        self, an: Hashable, q: Sequence[float], alpha: float = 0.5
    ) -> "RemoteBatchBuilder":
        return self.add(CausalitySpec(an=an, q=tuple(q), alpha=alpha))

    def causality_certain(
        self, an: Hashable, q: Sequence[float]
    ) -> "RemoteBatchBuilder":
        return self.add(CausalityCertainSpec(an=an, q=tuple(q)))

    def reverse_skyline(self, q: Sequence[float]) -> "RemoteBatchBuilder":
        return self.add(ReverseSkylineSpec(q=tuple(q)))

    def reverse_k_skyband(
        self, q: Sequence[float], k: int = 1
    ) -> "RemoteBatchBuilder":
        return self.add(ReverseKSkybandSpec(q=tuple(q), k=k))

    def insert(self, obj: UncertainObject) -> "RemoteBatchBuilder":
        return self.add(UpdateSpec(inserts=(obj,)))

    def delete(self, oid: Hashable) -> "RemoteBatchBuilder":
        return self.add(UpdateSpec(deletes=(oid,)))

    def update(self, obj: UncertainObject) -> "RemoteBatchBuilder":
        return self.add(UpdateSpec(updates=(obj,)))

    def apply(self, delta: DatasetDelta) -> "RemoteBatchBuilder":
        return self.add(UpdateSpec.from_delta(delta))

    # -- execution ------------------------------------------------------
    async def stream(self) -> AsyncIterator[QueryResult]:
        client = self._client
        request_id = next(client._ids)
        queue: "asyncio.Queue" = asyncio.Queue()
        client._pending[request_id] = queue
        frame: Dict[str, Any] = {
            "id": request_id,
            "op": "batch",
            "specs": [REGISTRY.spec_to_dict(s) for s in self._specs],
            "dataset": client.dataset,
        }
        if client.deadline_ms is not None:
            frame["deadline_ms"] = client.deadline_ms
        try:
            await client._send(frame)
            while True:
                response = await queue.get()
                if response is None:
                    raise client._fatal or RemoteProtocolError(
                        "connection closed mid-batch"
                    )
                client._note_version(response)
                if response.get("done"):
                    return
                if "result" in response:
                    yield QueryResult.from_dict(response["result"])
                else:
                    client._raise_request_error(response)
        finally:
            client._pending.pop(request_id, None)

    async def run(self) -> List[QueryResult]:
        return [envelope async for envelope in self.stream()]
