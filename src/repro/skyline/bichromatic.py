"""Bichromatic reverse skyline queries and their non-answer causality.

In the bichromatic setting (Wu et al. [42], surveyed by the paper) there
are two datasets: customers ``A`` and products ``B``.  A customer
``a ∈ A`` is in the bichromatic reverse skyline of a query product ``q``
when no *product* ``b ∈ B`` dynamically dominates ``q`` w.r.t. ``a`` —
i.e. q would be on customer a's dynamic skyline over the product catalog.

Causality for a non-answer customer mirrors Lemma 7, with the twist that
causes are drawn from the *product* dataset: every product dominating
``q`` w.r.t. the customer is an actual cause, sharing responsibility
``1 / |D|``.
"""

from __future__ import annotations

import time
from typing import Hashable, List

from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import CertainDataset


def product_dominators(
    customers: CertainDataset,
    products: CertainDataset,
    customer_id: Hashable,
    q: PointLike,
    use_index: bool = True,
) -> List[Hashable]:
    """Products that dynamically dominate ``q`` w.r.t. *customer_id*."""
    center = customers.point_of(customer_id)
    qq = as_point(q, dims=customers.dims)
    if products.dims != customers.dims:
        raise ValueError(
            f"customers have {customers.dims} dims, products {products.dims}"
        )
    if use_index:
        window = dominance_rectangle(center, qq)
        pool = products.rtree.range_search(window)
    else:
        pool = products.ids()
    return sorted(
        (
            oid
            for oid in pool
            if dynamically_dominates(products.point_of(oid), qq, center)
        ),
        key=repr,
    )


def bichromatic_reverse_skyline(
    customers: CertainDataset, products: CertainDataset, q: PointLike
) -> List[Hashable]:
    """Customers for which no product dominates ``q`` w.r.t. them."""
    return [
        customer.oid
        for customer in customers
        if not product_dominators(customers, products, customer.oid, q)
    ]


def compute_causality_bichromatic(
    customers: CertainDataset,
    products: CertainDataset,
    customer_id: Hashable,
    q: PointLike,
    use_index: bool = True,
) -> CausalityResult:
    """Causality for a customer missing from the bichromatic reverse skyline.

    One window query over the *product* R-tree; every dominating product is
    an actual cause with responsibility ``1 / |D|`` (Lemma 7 transplanted
    to the bichromatic setting).
    """
    started = time.perf_counter()
    if use_index:
        with products.rtree.stats.measure() as snapshot:
            dominators = product_dominators(
                customers, products, customer_id, q, use_index=True
            )
        accesses = snapshot.node_accesses
    else:
        dominators = product_dominators(
            customers, products, customer_id, q, use_index=False
        )
        accesses = 0

    if not dominators:
        raise NotANonAnswerError(
            f"customer {customer_id!r} is in the bichromatic reverse skyline of q"
        )

    result = CausalityResult(an_oid=customer_id, alpha=None)
    total = len(dominators)
    for oid in dominators:
        gamma = frozenset(d for d in dominators if d != oid)
        result.add(
            Cause(
                oid=oid,
                responsibility=1.0 / total,
                contingency_set=gamma,
                kind=CauseKind.COUNTERFACTUAL if total == 1 else CauseKind.ACTUAL,
            )
        )
    result.stats.node_accesses = accesses
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = total
    return result
