"""Bichromatic reverse skyline queries and their non-answer causality.

In the bichromatic setting (Wu et al. [42], surveyed by the paper) there
are two datasets: customers ``A`` and products ``B``.  A customer
``a ∈ A`` is in the bichromatic reverse skyline of a query product ``q``
when no *product* ``b ∈ B`` dynamically dominates ``q`` w.r.t. ``a`` —
i.e. q would be on customer a's dynamic skyline over the product catalog.

Causality for a non-answer customer mirrors Lemma 7, with the twist that
causes are drawn from the *product* dataset: every product dominating
``q`` w.r.t. the customer is an actual cause, sharing responsibility
``1 / |D|``.
"""

from __future__ import annotations

import time
from typing import Hashable, List, Optional

from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import CertainDataset


def product_dominators(
    customers: CertainDataset,
    products: CertainDataset,
    customer_id: Hashable,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Products that dynamically dominate ``q`` w.r.t. *customer_id*."""
    center = customers.point_of(customer_id)
    qq = as_point(q, dims=customers.dims)
    if products.dims != customers.dims:
        raise ValueError(
            f"customers have {customers.dims} dims, products {products.dims}"
        )
    if use_index:
        window = dominance_rectangle(center, qq)
        pool = products.spatial_index(use_numpy).range_search(window)
    else:
        pool = products.ids()
    return sorted(
        (
            oid
            for oid in pool
            if dynamically_dominates(products.point_of(oid), qq, center)
        ),
        key=repr,
    )


def bichromatic_reverse_skyline(
    customers: CertainDataset,
    products: CertainDataset,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Customers for which no product dominates ``q`` w.r.t. them.

    On the ``use_numpy`` path all customers' window queries over the
    product index run as one batched multi-window pass; membership and
    node accounting match the per-customer loop exactly.
    """
    from repro.engine.kernels import resolve_use_numpy

    if not resolve_use_numpy(use_numpy):
        return [
            customer.oid
            for customer in customers
            if not product_dominators(
                customers, products, customer.oid, q, use_numpy=False
            )
        ]
    qq = as_point(q, dims=customers.dims)
    if products.dims != customers.dims:
        raise ValueError(
            f"customers have {customers.dims} dims, products {products.dims}"
        )
    centers = [customer.samples[0] for customer in customers]
    windows = [dominance_rectangle(center, qq) for center in centers]
    hits_per = products.spatial_index(True).range_search_many(windows)
    members: List[Hashable] = []
    for customer, center, hits in zip(customers, centers, hits_per):
        if not any(
            dynamically_dominates(products.point_of(hit), qq, center)
            for hit in hits
        ):
            members.append(customer.oid)
    return members


def compute_causality_bichromatic(
    customers: CertainDataset,
    products: CertainDataset,
    customer_id: Hashable,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> CausalityResult:
    """Causality for a customer missing from the bichromatic reverse skyline.

    One window query over the *product* R-tree; every dominating product is
    an actual cause with responsibility ``1 / |D|`` (Lemma 7 transplanted
    to the bichromatic setting).
    """
    started = time.perf_counter()
    if use_index:
        with products.access_stats.measure() as snapshot:
            dominators = product_dominators(
                customers, products, customer_id, q, use_index=True,
                use_numpy=use_numpy,
            )
        accesses = snapshot.node_accesses
    else:
        dominators = product_dominators(
            customers, products, customer_id, q, use_index=False
        )
        accesses = 0

    if not dominators:
        raise NotANonAnswerError(
            f"customer {customer_id!r} is in the bichromatic reverse skyline of q"
        )

    result = CausalityResult(an_oid=customer_id, alpha=None)
    total = len(dominators)
    for oid in dominators:
        gamma = frozenset(d for d in dominators if d != oid)
        result.add(
            Cause(
                oid=oid,
                responsibility=1.0 / total,
                contingency_set=gamma,
                kind=CauseKind.COUNTERFACTUAL if total == 1 else CauseKind.ACTUAL,
            )
        )
    result.stats.node_accesses = accesses
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = total
    return result
