"""Classic (static) skyline operator, smaller-is-better.

The skyline of a point set is the subset not dominated by any other point.
This is the building block the dynamic and reverse skyline operators reduce
to after coordinate transformation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.geometry.point import as_point_matrix


def skyline_indices(points: np.ndarray) -> List[int]:
    """Indices of skyline points of an ``(n, d)`` matrix.

    Block-nested-loop with a presort on coordinate sum: a point can only be
    dominated by points with a smaller or equal sum, so one pass over the
    sorted order with an incremental window suffices.  Duplicates of a
    skyline point are all kept (dominance is strict in one dimension).
    """
    matrix = as_point_matrix(points)
    n = matrix.shape[0]
    if n == 0:
        return []
    sums = matrix.sum(axis=1)
    order = np.argsort(sums, kind="stable")
    window: List[int] = []
    for idx in order:
        candidate = matrix[idx]
        dominated = False
        for kept in window:
            keeper = matrix[kept]
            if np.all(keeper <= candidate) and np.any(keeper < candidate):
                dominated = True
                break
        if not dominated:
            # Float rounding can tie the sums of a dominating/dominated
            # pair (e.g. 1e-165 vanishing into 1.0), and the stable sort
            # may then visit the dominated point first — evict any
            # equal-sum keeper the new point dominates.  Exact arithmetic
            # forbids a strictly larger float sum for a dominator, so
            # only ties need the back-check.
            window = [
                kept
                for kept in window
                if sums[kept] != sums[idx]
                or not (
                    np.all(candidate <= matrix[kept])
                    and np.any(candidate < matrix[kept])
                )
            ]
            window.append(int(idx))
    return sorted(window)


def skyline_points(points: np.ndarray) -> np.ndarray:
    """The skyline rows themselves."""
    matrix = as_point_matrix(points)
    return matrix[skyline_indices(matrix)]


def is_skyline_point(points: np.ndarray, index: int) -> bool:
    """Is row *index* of *points* on the skyline?"""
    matrix = as_point_matrix(points)
    target = matrix[index]
    others = np.delete(matrix, index, axis=0)
    if others.shape[0] == 0:
        return True
    dominated = np.logical_and(
        (others <= target).all(axis=1), (others < target).any(axis=1)
    )
    return not bool(dominated.any())
