"""Reverse skyline queries on certain data (Definition 3, Dellis & Seeger).

Two implementations are provided:

* :func:`reverse_skyline_bruteforce` — the quadratic reference used as the
  ground truth in tests;
* :func:`reverse_skyline` — the index-assisted algorithm: a point ``p`` is
  in the reverse skyline of ``q`` iff the dominance rectangle of ``p``
  (Lemma 2's geometry specialized to certain data) contains no other point
  that dynamically dominates ``q`` w.r.t. ``p``, which one R-tree window
  query per point answers.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.geometry.dominance import dominance_rectangle, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.skyline.dynamic import q_in_dynamic_skyline
from repro.uncertain.dataset import CertainDataset


def is_reverse_skyline_bruteforce(
    dataset: CertainDataset, oid: Hashable, q: PointLike
) -> bool:
    """Linear-scan membership test: does *oid* take ``q`` in its dynamic skyline?"""
    center = dataset.point_of(oid)
    others = [obj.samples[0] for obj in dataset.others(oid)]
    return q_in_dynamic_skyline(others, center, q)


def reverse_skyline_bruteforce(dataset: CertainDataset, q: PointLike) -> List[Hashable]:
    """Reverse skyline of ``q`` by the quadratic reference algorithm."""
    return [
        obj.oid
        for obj in dataset
        if is_reverse_skyline_bruteforce(dataset, obj.oid, q)
    ]


def is_reverse_skyline(dataset: CertainDataset, oid: Hashable, q: PointLike) -> bool:
    """Index-assisted membership test (one window query on the dataset R-tree)."""
    center = dataset.point_of(oid)
    qq = as_point(q, dims=dataset.dims)
    window = dominance_rectangle(center, qq)
    for hit_oid in dataset.rtree.range_search(window):
        if hit_oid == oid:
            continue
        if dynamically_dominates(dataset.point_of(hit_oid), qq, center):
            return False
    return True


def reverse_skyline(
    dataset: CertainDataset,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Reverse skyline of ``q`` using the dataset R-tree.

    On the ``use_numpy`` path all per-object window queries run as one
    batched multi-window pass over the packed index — the reverse skyline
    is exactly the reverse 1-skyband, so the batched traversal lives in
    :func:`repro.skyline.skyband.reverse_k_skyband`.  The membership set,
    its order (dataset order) and the node-access accounting are identical
    to the per-object pointer loop.
    """
    from repro.engine.kernels import resolve_use_numpy
    from repro.skyline.skyband import reverse_k_skyband

    if resolve_use_numpy(use_numpy):
        return reverse_k_skyband(dataset, q, 1, use_numpy=True)
    return [obj.oid for obj in dataset if is_reverse_skyline(dataset, obj.oid, q)]
