"""Reverse k-skyband queries and their non-answer causality.

The reverse k-skyband (Gao et al. [19], one of the variant queries the
paper surveys) relaxes the reverse skyline: an object ``p`` belongs to the
reverse k-skyband of ``q`` when *fewer than k* objects dynamically
dominate ``q`` w.r.t. ``p``; ``k = 1`` is exactly the reverse skyline.

Causality generalizes Lemma 7 cleanly.  For a non-answer ``an`` with
dominator set ``D`` (``|D| = m >= k``):

* every ``d ∈ D`` is an actual cause — remove any other ``m - k`` of them
  and ``d``'s removal brings the count from ``k`` to ``k - 1``;
* nothing outside ``D`` is a cause (it cannot change the count);
* the minimal contingency set has exactly ``m - k`` elements, so every
  cause has responsibility ``1 / (m - k + 1)``.
"""

from __future__ import annotations

import time
from typing import Hashable, List, Optional

from repro.core.model import Cause, CauseKind, CausalityResult
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.obs import span as _span
from repro.uncertain.dataset import CertainDataset


def dominators_of_query(
    dataset: CertainDataset,
    oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Objects that dynamically dominate ``q`` w.r.t. object *oid*."""
    an_point = dataset.point_of(oid)
    qq = as_point(q, dims=dataset.dims)
    if use_index:
        window = dominance_rectangle(an_point, qq)
        pool = dataset.spatial_index(use_numpy).range_search(window)
    else:
        pool = dataset.ids()
    return sorted(
        (
            other
            for other in pool
            if other != oid
            and dynamically_dominates(dataset.point_of(other), qq, an_point)
        ),
        key=repr,
    )


def is_reverse_k_skyband(
    dataset: CertainDataset, oid: Hashable, q: PointLike, k: int
) -> bool:
    """Membership test: fewer than *k* dominators of ``q`` w.r.t. *oid*."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return len(dominators_of_query(dataset, oid, q)) < k


def reverse_k_skyband(
    dataset: CertainDataset,
    q: PointLike,
    k: int,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """The reverse k-skyband of ``q`` (``k = 1`` is the reverse skyline).

    On the ``use_numpy`` path every object's window query runs in one
    batched multi-window pass over the packed index; membership, order
    and node accesses match the per-object pointer loop exactly.
    """
    from repro.engine.kernels import resolve_use_numpy

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not resolve_use_numpy(use_numpy):
        return [
            obj.oid
            for obj in dataset
            if len(dominators_of_query(dataset, obj.oid, q, use_numpy=False)) < k
        ]
    qq = as_point(q, dims=dataset.dims)
    centers = [obj.samples[0] for obj in dataset]
    windows = [dominance_rectangle(center, qq) for center in centers]
    hits_per = dataset.spatial_index(True).range_search_many(windows)
    members: List[Hashable] = []
    for obj, center, hits in zip(dataset, centers, hits_per):
        dominators = sum(
            1
            for hit in hits
            if hit != obj.oid
            and dynamically_dominates(dataset.point_of(hit), qq, center)
        )
        if dominators < k:
            members.append(obj.oid)
    return members


def compute_causality_k_skyband(
    dataset: CertainDataset,
    an_oid: Hashable,
    q: PointLike,
    k: int,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> CausalityResult:
    """Causality & responsibility for a reverse k-skyband non-answer.

    Extends algorithm CR beyond the paper (its future-work direction of
    applying CRP to other queries): one window query finds the dominator
    set ``D``; every member is an actual cause with responsibility
    ``1 / (|D| - k + 1)`` and a minimal contingency witness of ``|D| - k``
    other dominators.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    started = time.perf_counter()

    with _span("filter", use_index=use_index, k=k) as filter_span:
        if use_index:
            with dataset.access_stats.measure() as snapshot:
                dominators = dominators_of_query(
                    dataset, an_oid, q, use_index=True, use_numpy=use_numpy
                )
            accesses = snapshot.node_accesses
        else:
            dominators = dominators_of_query(
                dataset, an_oid, q, use_index=False
            )
            accesses = 0
        filter_span.set(dominators=len(dominators))

    m = len(dominators)
    if m < k:
        raise NotANonAnswerError(
            f"object {an_oid!r} has only {m} dominator(s); it is in the "
            f"reverse {k}-skyband of q"
        )

    result = CausalityResult(an_oid=an_oid, alpha=None)
    need = m - k  # minimal contingency size
    # Shared-witness construction (O(m) instead of O(m^2)): the first
    # `need` dominators witness every cause outside that prefix; causes
    # inside it swap themselves for the next dominator.
    head = dominators[: need + 1]
    shared_witness = frozenset(head[:need])
    with _span("refine", candidates=m):
        for oid in dominators:
            if need == 0:
                witness = frozenset()
            elif oid in shared_witness:
                witness = frozenset(d for d in head if d != oid)
            else:
                witness = shared_witness
            result.add(
                Cause(
                    oid=oid,
                    responsibility=1.0 / (need + 1),
                    contingency_set=witness,
                    kind=(
                        CauseKind.COUNTERFACTUAL
                        if need == 0
                        else CauseKind.ACTUAL
                    ),
                )
            )

    result.stats.node_accesses = accesses
    result.stats.cpu_time_s = time.perf_counter() - started
    result.stats.candidates = m
    return result
