"""Dynamic skyline operator.

The *dynamic skyline* of a point ``p`` over a dataset contains every point
not dynamically dominated w.r.t. ``p`` by any other point — equivalently,
the classic skyline after the coordinate transform ``x ↦ |x − p|``.
The reverse skyline of ``q`` (Definition 3) is the set of points whose
dynamic skyline contains ``q``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.geometry.dominance import dominance_vector
from repro.geometry.point import PointLike, as_point, as_point_matrix
from repro.skyline.classic import skyline_indices


def dynamic_skyline_indices(points: np.ndarray, center: PointLike) -> List[int]:
    """Indices of the dynamic skyline of *center* over *points*."""
    matrix = as_point_matrix(points)
    transformed = np.abs(matrix - as_point(center, dims=matrix.shape[1]))
    return skyline_indices(transformed)


def q_in_dynamic_skyline(
    points: np.ndarray, center: PointLike, q: PointLike
) -> bool:
    """Does ``q`` belong to the dynamic skyline of *center* over *points*?

    True iff no point in *points* dynamically dominates ``q`` w.r.t.
    *center* — the membership test at the heart of the reverse skyline
    definition.  *points* must exclude *center* itself.
    """
    matrix = as_point_matrix(points)
    if matrix.shape[0] == 0:
        return True
    qq = as_point(q, dims=matrix.shape[1])
    return not bool(dominance_vector(matrix, qq, as_point(center)).any())
