"""BBS — branch-and-bound skyline over an R-tree (Papadias et al. [35]).

The paper's dominance machinery builds on the progressive skyline work of
Papadias et al.; this module provides that substrate: an index-based
skyline that expands R-tree entries in ascending order of their minimum
coordinate-sum and prunes every entry dominated by an already-reported
skyline point.  A transformed variant computes *dynamic* skylines (the
operator underlying reverse skylines) by measuring every coordinate as a
distance to a center point.

Both functions touch only the nodes they must (counted through the tree's
:class:`~repro.index.stats.AccessStats`), and are validated against the
quadratic operators in :mod:`repro.skyline.classic` / ``.dynamic``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, List, Optional

import numpy as np

from repro.geometry.dominance import dominates
from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree
from repro.uncertain.dataset import CertainDataset


def _transformed_lo(rect: Rect, center: Optional[np.ndarray]) -> np.ndarray:
    """Lower corner of *rect* in skyline space.

    Plain skyline: the rect's own lower corner.  Dynamic skyline around
    *center*: the coordinate-wise minimum of ``|x - center|`` over the
    rect, which is 0 inside the projection and the nearer edge outside.
    """
    if center is None:
        return rect.lo
    below = center - rect.hi   # positive where rect is entirely below center
    above = rect.lo - center   # positive where rect is entirely above center
    return np.maximum(np.maximum(below, above), 0.0)


def _transformed_point(point: np.ndarray, center: Optional[np.ndarray]) -> np.ndarray:
    if center is None:
        return point
    return np.abs(point - center)


def skyline_bbs(
    tree: RTree, center: Optional[PointLike] = None
) -> List[Hashable]:
    """Skyline payloads of a point R-tree via best-first branch-and-bound.

    With *center* given, computes the dynamic skyline w.r.t. *center*
    (coordinates transformed to ``|x - center|``); otherwise the classic
    minimising skyline.  Entries whose (transformed) lower corner is
    dominated by a found skyline point are pruned unexpanded — the BBS
    access-optimality argument.
    """
    center_arr = as_point(center, dims=tree.dims) if center is not None else None
    tree.stats.record_query()
    counter = itertools.count()  # tie-breaker: heap entries must not compare nodes
    heap: list = []

    def push(node_or_entry, is_node: bool) -> None:
        if is_node:
            rect = node_or_entry.mbr
            if rect is None:
                return
            lo = _transformed_lo(rect, center_arr)
        else:
            rect, _payload = node_or_entry
            lo = _transformed_point(rect.lo, center_arr)
        heapq.heappush(
            heap, (float(lo.sum()), next(counter), lo, is_node, node_or_entry)
        )

    push(tree.root, True)
    skyline_points: List[np.ndarray] = []
    result: List[Hashable] = []

    while heap:
        _key, _tie, lo, is_node, item = heapq.heappop(heap)
        if any(dominates(s, lo) for s in skyline_points):
            continue  # the whole entry is dominated
        if is_node:
            tree.stats.record_node(item.is_leaf)
            if item.is_leaf:
                for entry in item.entries:
                    push(entry, False)
            else:
                for child in item.children:
                    push(child, True)
        else:
            rect, payload = item
            point = _transformed_point(rect.lo, center_arr)
            if not any(dominates(s, point) for s in skyline_points):
                skyline_points.append(point)
                result.append(payload)
    return result


def dynamic_skyline_bbs(dataset: CertainDataset, center: PointLike) -> List[Hashable]:
    """Dynamic skyline of *center* over a certain dataset, index-based.

    The object at *center* itself (distance vector 0) would dominate
    everything, so objects located exactly at *center* are excluded, as in
    the definition's ``p' ≠ p`` quantification.
    """
    center_arr = as_point(center, dims=dataset.dims)
    members = skyline_bbs(dataset.rtree, center=center_arr)
    return [
        oid
        for oid in members
        if not np.array_equal(dataset.point_of(oid), center_arr)
    ]
