"""Skyline operators: classic, dynamic, reverse, BBS, k-skyband, bichromatic."""

from repro.skyline.bbs import dynamic_skyline_bbs, skyline_bbs
from repro.skyline.bichromatic import (
    bichromatic_reverse_skyline,
    compute_causality_bichromatic,
    product_dominators,
)
from repro.skyline.classic import is_skyline_point, skyline_indices, skyline_points
from repro.skyline.dynamic import dynamic_skyline_indices, q_in_dynamic_skyline
from repro.skyline.reverse import (
    is_reverse_skyline,
    is_reverse_skyline_bruteforce,
    reverse_skyline,
    reverse_skyline_bruteforce,
)
from repro.skyline.skyband import (
    compute_causality_k_skyband,
    dominators_of_query,
    is_reverse_k_skyband,
    reverse_k_skyband,
)

__all__ = [
    "bichromatic_reverse_skyline",
    "compute_causality_bichromatic",
    "compute_causality_k_skyband",
    "dominators_of_query",
    "dynamic_skyline_bbs",
    "dynamic_skyline_indices",
    "is_reverse_k_skyband",
    "is_reverse_skyline",
    "is_reverse_skyline_bruteforce",
    "is_skyline_point",
    "product_dominators",
    "q_in_dynamic_skyline",
    "reverse_k_skyband",
    "reverse_skyline",
    "reverse_skyline_bruteforce",
    "skyline_bbs",
    "skyline_indices",
    "skyline_points",
]
