"""Synthetic CarDB dataset (real-data substitute, Sec. 5.2 / Table 4).

The paper's CR case study runs on CarDB — 45,311 used-car listings
(Price, Mileage) extracted from Yahoo! Autos, which is not available.
This module synthesizes a two-dimensional population with the same
behaviour: strongly negatively correlated price and mileage (cheap cars
have high mileage), plus the case-study actors pinned at the paper's
coordinates — the non-answer ``an = (7510, 10180)``, the query
``q = (11580, 49000)``, and a handful of cars inside ``an``'s dominance
box toward ``q`` (the Table-4 causes, led by ``c = (10995, 34493)``).

Only the dominance geometry matters to algorithm CR, which the
substitution preserves.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.rng import SeedLike, make_rng
from repro.uncertain.dataset import CertainDataset

#: Case-study coordinates from the paper.
DEFAULT_QUERY = (11_580.0, 49_000.0)
NON_ANSWER_CAR = (7_510.0, 10_180.0)
NON_ANSWER_ID = "an-7510-10180"

#: Cars guaranteed to dominate q w.r.t. the non-answer (Table-4-style causes):
#: price within |11580-7510| = 4070 of 7510, mileage within 38820 of 10180.
_PINNED_CAUSES: List[Tuple[float, float]] = [
    (10_995.0, 34_493.0),
    (9_300.0, 21_850.0),
    (8_775.0, 30_200.0),
    (7_995.0, 26_410.0),
    (7_200.0, 18_900.0),
    (6_650.0, 33_470.0),
    (5_980.0, 24_030.0),
    (5_450.0, 40_120.0),
    (4_880.0, 36_750.0),
    (4_100.0, 44_980.0),
]

PRICE_RANGE = (500.0, 60_000.0)
MILEAGE_RANGE = (1_000.0, 220_000.0)


def generate_cardb(
    n: int = 45_311,
    seed: SeedLike = 11,
    include_case_study: bool = True,
) -> CertainDataset:
    """Synthesize the CarDB-like certain dataset.

    Listings follow ``mileage ≈ M_max · exp(-price / scale)`` with
    log-normal noise — the classic depreciation curve that yields the
    negative correlation of the original data.  With *include_case_study*
    the paper's non-answer car and its pinned causes are appended (ids
    ``an-7510-10180`` and ``cause-<k>``).
    """
    if n < len(_PINNED_CAUSES) + 1:
        raise ValueError(f"n must be at least {len(_PINNED_CAUSES) + 1}")
    rng = make_rng(seed)

    pinned = len(_PINNED_CAUSES) + 1 if include_case_study else 0
    population = n - pinned

    prices = rng.uniform(*PRICE_RANGE, size=population)
    depreciation = MILEAGE_RANGE[1] * np.exp(-prices / 18_000.0)
    mileage = depreciation * rng.lognormal(mean=0.0, sigma=0.35, size=population)
    mileage = np.clip(mileage, *MILEAGE_RANGE)
    points = np.column_stack([prices, mileage])
    ids: List[object] = [f"car-{i:05d}" for i in range(population)]

    if include_case_study:
        extra = np.array([NON_ANSWER_CAR] + _PINNED_CAUSES)
        points = np.vstack([points, extra])
        ids.append(NON_ANSWER_ID)
        ids.extend(f"cause-{k:02d}" for k in range(len(_PINNED_CAUSES)))

    return CertainDataset(points, ids=ids)


def pinned_cause_points() -> List[Tuple[float, float]]:
    """The Table-4-style cause coordinates appended by the generator."""
    return list(_PINNED_CAUSES)
