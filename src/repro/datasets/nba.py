"""Synthetic NBA career dataset (real-data substitute, Sec. 5.2 / Table 3).

The paper's case study uses the NBA dataset from
``www.databasebasketball.com`` — 15,272 season records of 3,542 players on
four attributes: total points (PTS), total field goals (FG), total
rebounds (REB), and total assists (AST).  That archive is offline and not
redistributable, so this module synthesizes a dataset with the same shape:

* one uncertain object per player whose samples are his season records,
  each season equally probable (the paper's convention);
* a heavy-tailed skill distribution so a few dozen star players produce
  elite seasons while the bulk of the league does not;
* a roster of *named legends* (the players appearing in Table 3) with
  hand-tuned elite season ranges, plus the designated non-answer
  "Steve John" — a strong-but-not-elite player whose samples sit close to
  the paper's query position ``q = (3500, 1500, 600, 800)``.

What CP consumes is only the dominance geometry between season records,
the per-player sample counts, and the equal appearance probabilities — all
preserved by this substitution (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.rng import SeedLike, make_rng
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject

#: The query position used in the paper's Table 3 case study.
DEFAULT_QUERY = (3500.0, 1500.0, 600.0, 800.0)

#: The designated non-answer of the case study.
STEVE_JOHN = "Steve John"

#: Legends named in Table 3, with (seasons, per-season stat ranges) tuned so
#: their elite seasons fall inside the dominance box of Steve John w.r.t. q.
#:
#: Two tiers, mirroring the structure the paper's responsibilities imply:
#: the *blocker* tier dominates q w.r.t. every Steve John season with
#: probability 1 (they populate Lemma 4's ``Γ₁``), while the *partial* tier
#: has season ranges dipping below the dominance boxes, producing the
#: heterogeneous domination probabilities that make responsibilities vary.
_LEGENDS: List[Tuple[str, int, Tuple[float, float]]] = [
    # blocker tier — every season inside every dominance box
    ("LeBron James", 13, (0.90, 1.00)),
    ("Wilt Chamberlain", 14, (0.91, 1.00)),
    ("Oscar Robertson", 14, (0.88, 0.99)),
    ("Michael Jordan", 15, (0.89, 1.00)),
    ("Kareem Abdul-Jabbar", 17, (0.86, 0.99)),
    ("Larry Bird", 13, (0.85, 0.98)),
    ("Hakeem Olajuwon", 17, (0.84, 0.97)),
    ("Tim Duncan", 17, (0.83, 0.96)),
    ("Kobe Bryant", 17, (0.85, 0.99)),
    ("Karl Malone", 17, (0.84, 0.97)),
    ("Allen Iverson", 14, (0.83, 0.96)),
    ("Gary Payton", 17, (0.82, 0.95)),
    ("George Gervin", 14, (0.82, 0.95)),
    ("Pete Maravich", 10, (0.83, 0.96)),
    ("Charles Barkley", 16, (0.82, 0.95)),
    ("Kevin Garnett", 17, (0.81, 0.95)),
    # partial tier — ranges straddle the box lower edges (factor band
    # ~0.55-0.77 across Steve John's seasons), so their domination
    # probabilities vary from near-1 down to a handful of qualifying
    # seasons; the weakest of them are "keepable" in a contingency search,
    # which is what differentiates the responsibilities.
    ("Dennis Rodman", 14, (0.70, 0.95)),
    ("Dave Debusschere", 12, (0.67, 0.92)),
    ("John Havlicek", 16, (0.64, 0.89)),
    ("Shaquille O'neal", 17, (0.61, 0.86)),
    ("Jason Kidd", 17, (0.58, 0.83)),
    ("Bill Sharman", 11, (0.55, 0.80)),
    ("Dwyane Wade", 12, (0.52, 0.77)),
    ("Kevin Johnson", 12, (0.49, 0.74)),
    ("Chris Webber", 15, (0.46, 0.71)),
    ("Alex English", 15, (0.43, 0.68)),
]

#: Per-attribute scale of an elite season: (PTS, FG, REB, AST).
_ELITE_SEASON = np.array([3200.0, 1350.0, 560.0, 740.0])


def generate_nba(
    n_players: int = 3542,
    seed: SeedLike = 7,
) -> UncertainDataset:
    """Synthesize the NBA-like uncertain dataset.

    Returns a dataset of *n_players* uncertain objects (named legends plus
    ``Steve John`` plus anonymous rank-and-file players) on the four
    attributes (PTS, FG, REB, AST), one sample per season.
    """
    if n_players < len(_LEGENDS) + 1:
        raise ValueError(
            f"n_players must be at least {len(_LEGENDS) + 1} to fit the roster"
        )
    rng = make_rng(seed)
    objects = []

    for name, seasons, (lo, hi) in _LEGENDS:
        factors = rng.uniform(lo, hi, size=(seasons, 1))
        noise = rng.normal(1.0, 0.015, size=(seasons, 4))
        samples = np.maximum(_ELITE_SEASON * factors * noise, 0.0)
        objects.append(UncertainObject(name, samples, name=name))

    # Steve John: consistently strong seasons just shy of elite, so that the
    # elite box around his records (toward q) contains the legends' seasons.
    # The spread of his seasons varies the box lower edges, which is what
    # differentiates the partial tier's domination probabilities.
    john_seasons = 12
    factors = rng.uniform(0.83, 0.92, size=(john_seasons, 1))
    noise = rng.normal(1.0, 0.008, size=(john_seasons, 4))
    john_samples = _ELITE_SEASON * factors * noise
    objects.append(UncertainObject(STEVE_JOHN, john_samples, name=STEVE_JOHN))

    # Rank-and-file league: log-normal skill, 1-17 seasons each, attribute
    # mix varying by role (scorers, big men, playmakers).  Skill is capped
    # below the dominance boxes of the case study so the candidate set stays
    # the legends (plus at most a couple of borderline journeymen).
    remaining = n_players - len(objects)
    skills = np.clip(rng.lognormal(mean=-1.2, sigma=0.55, size=remaining), 0.0, 0.62)
    role_mix = rng.dirichlet(np.ones(4), size=remaining) * 4.0
    for i in range(remaining):
        seasons = int(rng.integers(1, 18))
        base = _ELITE_SEASON * np.minimum(
            skills[i] * (0.6 + 0.4 * role_mix[i]), 0.52
        )
        trajectory = rng.uniform(0.55, 1.0, size=(seasons, 1))
        noise = rng.normal(1.0, 0.05, size=(seasons, 4))
        samples = np.maximum(base * trajectory * noise, 0.0)
        objects.append(UncertainObject(f"player-{i:05d}", samples))

    return UncertainDataset(objects)


def legend_names() -> List[str]:
    """The Table-3 roster (expected causes of the case study)."""
    return [name for name, _seasons, _range in _LEGENDS]
