"""Synthetic certain datasets (Sec. 5.1, following [14], [18]).

The four standard skyline-benchmark distributions over ``[0, 10000]^d``:

* **Independent** — coordinates i.i.d. uniform;
* **Correlated** — points concentrated along the main diagonal;
* **Anti-correlated** — points concentrated on the anti-diagonal
  hyperplane (good in one dimension, bad in another);
* **Clustered** — Gaussian clusters around a handful of random centres.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.rng import SeedLike, make_rng
from repro.uncertain.dataset import CertainDataset

DOMAIN = 10_000.0
CERTAIN_DISTRIBUTIONS = ("independent", "correlated", "anticorrelated", "clustered")
# Paper figure labels.
LABELS = {
    "independent": "IND",
    "correlated": "COR",
    "anticorrelated": "ANT",
    "clustered": "CLU",
}


def generate_certain_dataset(
    n: int,
    dims: int,
    distribution: str = "independent",
    domain: float = DOMAIN,
    clusters: int = 5,
    spread: float = 0.05,
    seed: SeedLike = None,
) -> CertainDataset:
    """Generate one synthetic certain dataset.

    *spread* controls the relative noise of the correlated /
    anti-correlated / clustered families as a fraction of the domain.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = make_rng(seed)
    sigma = spread * domain

    if distribution == "independent":
        points = rng.uniform(0.0, domain, size=(n, dims))
    elif distribution == "correlated":
        diagonal = rng.uniform(0.0, domain, size=(n, 1))
        points = diagonal + rng.normal(0.0, sigma, size=(n, dims))
    elif distribution == "anticorrelated":
        # Points near the hyperplane sum(x) = d * domain/2: draw a level,
        # spread it across dimensions with zero-sum jitter.
        level = rng.normal(domain / 2.0, sigma, size=(n, 1))
        jitter = rng.uniform(-domain / 2.0, domain / 2.0, size=(n, dims))
        jitter -= jitter.mean(axis=1, keepdims=True)
        points = level + jitter
    elif distribution == "clustered":
        centers = rng.uniform(0.0, domain, size=(clusters, dims))
        assignment = rng.integers(0, clusters, size=n)
        points = centers[assignment] + rng.normal(0.0, sigma, size=(n, dims))
    else:
        raise ValueError(
            f"distribution must be one of {CERTAIN_DISTRIBUTIONS}, "
            f"got {distribution!r}"
        )

    points = np.clip(points, 0.0, domain)
    return CertainDataset(points)
