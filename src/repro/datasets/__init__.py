"""Workload generators: synthetic uncertain/certain data and the real-data
substitutes for the paper's NBA and CarDB case studies."""

from repro.datasets.cardb import (
    DEFAULT_QUERY as CARDB_QUERY,
    NON_ANSWER_CAR,
    NON_ANSWER_ID,
    generate_cardb,
    pinned_cause_points,
)
from repro.datasets.nba import (
    DEFAULT_QUERY as NBA_QUERY,
    STEVE_JOHN,
    generate_nba,
    legend_names,
)
from repro.datasets.rng import make_rng
from repro.datasets.synthetic_certain import (
    CERTAIN_DISTRIBUTIONS,
    LABELS as CERTAIN_LABELS,
    generate_certain_dataset,
)
from repro.datasets.synthetic_uncertain import (
    DISTRIBUTION_NAMES,
    generate_named,
    generate_uncertain_dataset,
)

__all__ = [
    "CARDB_QUERY",
    "CERTAIN_DISTRIBUTIONS",
    "CERTAIN_LABELS",
    "DISTRIBUTION_NAMES",
    "NBA_QUERY",
    "NON_ANSWER_CAR",
    "NON_ANSWER_ID",
    "STEVE_JOHN",
    "generate_cardb",
    "generate_certain_dataset",
    "generate_named",
    "generate_nba",
    "generate_uncertain_dataset",
    "legend_names",
    "make_rng",
    "pinned_cause_points",
]
