"""Deterministic random-number helpers shared by the generators."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_centers(rng: np.random.Generator, n: int, dims: int, domain: float) -> np.ndarray:
    """Uniformly distributed object centres (the paper's ``lU`` mode)."""
    return rng.uniform(0.0, domain, size=(n, dims))


def skewed_centers(
    rng: np.random.Generator, n: int, dims: int, domain: float, shape: float = 3.0
) -> np.ndarray:
    """Skewed centres concentrated toward the origin (the paper's ``lS`` mode)."""
    return domain * rng.beta(1.0, shape, size=(n, dims))


def uniform_radii(
    rng: np.random.Generator, n: int, r_min: float, r_max: float
) -> np.ndarray:
    """Uniform radii in ``[r_min, r_max]`` (the paper's ``rU`` mode)."""
    return rng.uniform(r_min, r_max, size=n)


def gaussian_radii(
    rng: np.random.Generator, n: int, r_min: float, r_max: float
) -> np.ndarray:
    """Gaussian radii centred mid-range, truncated to ``[r_min, r_max]``
    (the paper's ``rG`` mode)."""
    mean = (r_min + r_max) / 2.0
    std = max((r_max - r_min) / 6.0, 1e-12)
    return np.clip(rng.normal(mean, std, size=n), r_min, r_max)
