"""Synthetic uncertain datasets (Sec. 5.1).

Following the paper (which follows [26], [27]): each uncertain object gets

1. a centre ``C_u`` drawn in ``[0, 10000]^d`` — *Uniform* (``lU``) or
   *Skew* (``lS``);
2. a radius ``r`` in ``[r_min, r_max]`` — *Uniform* (``rU``) or *Gaussian*
   (``rG``) — bounding the maximum deviation from ``C_u``;
3. a random hyper-rectangle tightly bounded by the sphere of radius ``r``
   around ``C_u`` (we inscribe it: random positive direction scaled to
   Euclidean norm ``r``);
4. uniformly distributed samples inside that rectangle, with equal
   appearance probabilities.

The four combinations are named ``lUrU``, ``lUrG``, ``lSrU``, ``lSrG``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.rng import (
    SeedLike,
    gaussian_radii,
    make_rng,
    skewed_centers,
    uniform_centers,
    uniform_radii,
)
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject

DOMAIN = 10_000.0
CENTER_DISTRIBUTIONS = ("uniform", "skew")
RADIUS_DISTRIBUTIONS = ("uniform", "gauss")
DISTRIBUTION_NAMES = ("lUrU", "lUrG", "lSrU", "lSrG")


def _parse_name(name: str) -> Tuple[str, str]:
    mapping = {
        "lUrU": ("uniform", "uniform"),
        "lUrG": ("uniform", "gauss"),
        "lSrU": ("skew", "uniform"),
        "lSrG": ("skew", "gauss"),
    }
    if name not in mapping:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(mapping)}"
        )
    return mapping[name]


def generate_uncertain_dataset(
    n: int,
    dims: int,
    center_distribution: str = "uniform",
    radius_distribution: str = "uniform",
    radius_range: Tuple[float, float] = (0.0, 5.0),
    samples_range: Tuple[int, int] = (2, 4),
    domain: float = DOMAIN,
    seed: SeedLike = None,
) -> UncertainDataset:
    """Generate one synthetic uncertain dataset.

    Parameters mirror Table 2 of the paper: *radius_range* is
    ``[r_min, r_max]``; *samples_range* is the inclusive range of samples
    per object (the running example uses two through four).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 <= radius_range[0] <= radius_range[1]:
        raise ValueError(f"invalid radius range {radius_range}")
    if not 1 <= samples_range[0] <= samples_range[1]:
        raise ValueError(f"invalid samples range {samples_range}")
    rng = make_rng(seed)

    if center_distribution == "uniform":
        centers = uniform_centers(rng, n, dims, domain)
    elif center_distribution == "skew":
        centers = skewed_centers(rng, n, dims, domain)
    else:
        raise ValueError(
            f"center_distribution must be one of {CENTER_DISTRIBUTIONS}, "
            f"got {center_distribution!r}"
        )

    if radius_distribution == "uniform":
        radii = uniform_radii(rng, n, *radius_range)
    elif radius_distribution == "gauss":
        radii = gaussian_radii(rng, n, *radius_range)
    else:
        raise ValueError(
            f"radius_distribution must be one of {RADIUS_DISTRIBUTIONS}, "
            f"got {radius_distribution!r}"
        )

    # Random rectangle inscribed in the radius-r sphere: positive random
    # direction normalized to Euclidean length r gives the half-extents.
    directions = np.abs(rng.normal(size=(n, dims))) + 1e-9
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    half_extents = directions * radii[:, None]

    counts = rng.integers(samples_range[0], samples_range[1] + 1, size=n)
    objects = []
    for i in range(n):
        lo = np.clip(centers[i] - half_extents[i], 0.0, domain)
        hi = np.clip(centers[i] + half_extents[i], 0.0, domain)
        samples = rng.uniform(lo, hi, size=(int(counts[i]), dims))
        objects.append(UncertainObject(i, samples))
    return UncertainDataset(objects)


def generate_named(
    name: str,
    n: int,
    dims: int,
    radius_range: Tuple[float, float] = (0.0, 5.0),
    samples_range: Tuple[int, int] = (2, 4),
    seed: SeedLike = None,
) -> UncertainDataset:
    """Generate one of the paper's four named distributions (``lUrU`` ...)."""
    center_dist, radius_dist = _parse_name(name)
    return generate_uncertain_dataset(
        n,
        dims,
        center_distribution=center_dist,
        radius_distribution=radius_dist,
        radius_range=radius_range,
        samples_range=samples_range,
        seed=seed,
    )
