"""repro.engine — batched, cached, parallel query execution.

The engine layers a production-style execution model over the paper's
algorithms:

* :class:`~repro.engine.session.Session` — owns a dataset and its
  bulk-loaded R-tree, reusing both across queries;
* :mod:`~repro.engine.spec` — declarative :class:`QuerySpec` values for
  the full query zoo (CP/CR/pdf causality, PRSQ, reverse skyline,
  reverse k-skyband, reverse top-k);
* :mod:`~repro.engine.plan` — compiles specs into executable plans,
  choosing between vectorized kernels and scalar paths;
* :mod:`~repro.engine.executor` — serial and multiprocess batch
  execution with deterministic result ordering;
* :mod:`~repro.engine.cache` — LRU result/probability cache keyed by
  dataset fingerprint, query identity and threshold;
* :mod:`~repro.engine.kernels` — NumPy-vectorized dominance and
  candidate-pruning kernels, bit-compatible with the scalar fallbacks.
"""

from repro.engine.cache import CacheStats, LRUCache, NullCache
from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ShardScatter,
)
from repro.engine.plan import QueryPlan, compile_plan
from repro.engine.session import (
    QueryOutcome,
    Session,
    dataset_fingerprint,
)
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    QuerySpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    SPEC_KINDS,
    UpdateSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.uncertain.delta import DatasetDelta

__all__ = [
    "CacheStats",
    "CausalityCertainSpec",
    "CausalitySpec",
    "DatasetDelta",
    "Executor",
    "KSkybandCausalitySpec",
    "LRUCache",
    "NullCache",
    "ParallelExecutor",
    "PdfCausalitySpec",
    "PRSQSpec",
    "QueryOutcome",
    "QueryPlan",
    "QuerySpec",
    "ReverseKSkybandSpec",
    "ReverseSkylineSpec",
    "ReverseTopKSpec",
    "SPEC_KINDS",
    "SerialExecutor",
    "Session",
    "ShardScatter",
    "UpdateSpec",
    "compile_plan",
    "dataset_fingerprint",
    "spec_from_dict",
    "spec_to_dict",
]
