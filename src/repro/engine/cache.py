"""LRU result cache for the query-execution engine.

Keys are opaque hashable tuples built by :class:`repro.engine.session.
Session` from the dataset fingerprint, the partition-layout digest when
the dataset is sharded, and the query spec's own cache key.  The
fingerprint component lets a session over a modified dataset share a
cache object with its predecessor without ever hitting stale entries (the
old entries simply age out of the LRU order); the layout component keeps
re-shardings of the *same* data disjoint, since execution metadata —
node accesses, phase timings — is partition-dependent even though result
values are not.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Tuple

from repro.obs import span as _span


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0


class LRUCache:
    """A bounded least-recently-used cache with hit/miss accounting.

    Safe under concurrent access: one lock serializes every lookup,
    insert and eviction *and* the :class:`CacheStats` increments, so the
    serve layer can share one result cache across all reader threads.
    The probe-only ``cache-lookup`` span wraps the locked region but the
    span object itself is ambient thread-local state, so spans never race
    the stats.  A miss's compute runs **outside** the lock — two threads
    missing the same key may compute it twice (results are deterministic,
    so last-put-wins is sound), but no thread ever blocks the cache for
    the duration of a query.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — computes and stores on miss.

        The ``cache-lookup`` span covers only the probe (and, on a hit,
        the retrieval) — a miss's compute runs *outside* the span, so
        trace phase totals keep lookup cost separate from execution cost.
        """
        with _span("cache-lookup") as sp:
            with self._lock:
                if key in self._entries:
                    self.stats.hits += 1
                    self._entries.move_to_end(key)
                    sp.set(outcome="hit")
                    return self._entries[key], True
                self.stats.misses += 1
            sp.set(outcome="miss")
        value = compute()
        self.put(key, value)
        return value, False

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"<LRUCache {len(self)}/{self.maxsize} hits={self.stats.hits} "
            f"misses={self.stats.misses}>"
        )


class NullCache:
    """The ``--no-cache`` cache: never stores, every lookup is a miss."""

    def __init__(self):
        self.maxsize = 0
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return 0

    def __contains__(self, key: Hashable) -> bool:
        return False

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        with self._lock:  # shared by concurrent readers in the serve layer
            self.stats.misses += 1
        return compute(), False

    def put(self, key: Hashable, value: Any) -> None:
        pass

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"<NullCache misses={self.stats.misses}>"
