"""Sessions: long-lived query-execution contexts over one dataset.

The seed entry points rebuild the R-tree and re-evaluate PRSQ
probabilities from scratch for every query point.  A :class:`Session`
amortizes that work across queries:

* the dataset R-tree is bulk-loaded **once**, at session construction;
* results (and the expensive PRSQ probability maps) are memoized in an
  LRU cache keyed by ``(dataset fingerprint, query identity)``, so a
  cache object can outlive the session — or be shared between sessions —
  without stale hits;
* batches fan out through an :class:`~repro.engine.executor.Executor`
  (serial or multiprocess) with deterministic result ordering.

Typical use::

    session = Session(dataset)
    envelope = session.query(PRSQSpec(q=(5.0, 5.0), alpha=0.5))
    outcomes = session.execute_batch(specs, executor=ParallelExecutor(4))

(Most callers should prefer the :func:`repro.api.connect` client facade;
the legacy ``run``/``execute`` methods remain as deprecation shims.)
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.model import CausalityResult
from repro.engine.cache import LRUCache, NullCache
from repro.engine.plan import QueryPlan, compile_plan
from repro.engine.spec import QuerySpec
from repro.exceptions import SpecMismatchError
from repro.prsq.query import prsq_probabilities as _prsq_probabilities
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.pdf import ContinuousUncertainObject

CacheLike = Union[LRUCache, NullCache]

_DEFAULT = object()  # sentinel: "build a private cache"


def _copy_out(value: Any) -> Any:
    """Copy cached results so caller mutation can't poison the cache.

    Lists/dicts are shallow-copied; a :class:`CausalityResult` gets a fresh
    causes dict and stats (the :class:`Cause` values themselves are frozen).
    """
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, CausalityResult):
        return CausalityResult(
            an_oid=value.an_oid,
            alpha=value.alpha,
            causes=dict(value.causes),
            stats=replace(value.stats),
        )
    return value


def dataset_fingerprint(dataset: UncertainDataset) -> str:
    """Content hash of a dataset: ids, names, samples, probabilities.

    Two datasets fingerprint equal iff they hold the same objects in the
    same order with bit-identical sample/probability arrays, so the
    fingerprint is a sound cache-key component: any data change — an
    added, removed, reordered or perturbed object — changes the key and
    silently invalidates every cached result for the old contents.  Every
    field is length-prefixed (and arrays carry their shape) so no two
    distinct datasets can concatenate to the same byte stream.
    """
    hasher = hashlib.sha1()

    def feed(data: bytes) -> None:
        hasher.update(str(len(data)).encode())
        hasher.update(b":")
        hasher.update(data)

    feed(type(dataset).__name__.encode())
    feed(str(dataset.dims).encode())
    feed(str(len(dataset)).encode())
    for obj in dataset:
        feed(repr(obj.oid).encode())
        feed(repr(obj.name).encode())
        feed(repr(obj.samples.shape).encode())
        feed(obj.samples.tobytes())
        feed(obj.probabilities.tobytes())
    return hasher.hexdigest()


@dataclass
class QueryOutcome:
    """One executed query: the spec, its value, and execution metadata.

    Batch executors capture per-spec data errors (unknown ids, non-answers
    that are answers, ...) instead of aborting the batch: a failed outcome
    has ``value None``, ``error`` set to the legacy ``"Type: message"``
    string, and the machine-actionable split — ``error_type`` (exception
    class name), ``error_code`` (:func:`repro.exceptions.error_code`
    taxonomy), ``error_message`` (bare text) — filled in alongside.
    """

    spec: QuerySpec
    value: Any
    cached: bool
    elapsed_s: float
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        tag = (
            f"error={self.error!r}"
            if self.error is not None
            else ("cached" if self.cached else "computed")
        )
        return (
            f"<QueryOutcome {self.spec.kind} {tag} "
            f"{self.elapsed_s * 1e3:.2f} ms>"
        )


class Session:
    """A reusable execution context: dataset + bulk-loaded index + cache.

    Parameters
    ----------
    dataset:
        The dataset all queries run against (uncertain or certain).
    cache:
        ``None`` disables caching; omit it for a private
        :class:`~repro.engine.cache.LRUCache`; pass an explicit cache to
        share one across sessions (fingerprinted keys keep them disjoint).
    cache_size:
        Capacity of the private cache when one is built; ``0`` disables
        caching (same convention as the executor and the CLI).
    use_numpy:
        Select the vectorized kernels (default) or the scalar fallback
        paths; both produce identical results.
    build_index:
        Bulk-load the R-tree eagerly at construction (default) instead of
        on first use.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        cache: Any = _DEFAULT,
        cache_size: int = 4096,
        use_numpy: bool = True,
        build_index: bool = True,
    ):
        self.dataset = dataset
        self.use_numpy = use_numpy
        if cache is _DEFAULT:
            self.cache: CacheLike = (
                LRUCache(cache_size) if cache_size > 0 else NullCache()
            )
        elif cache is None:
            self.cache = NullCache()
        else:
            self.cache = cache
        # Lazy: a parent session that only validates and dispatches (the
        # parallel CLI path) never pays the O(data) hashing pass.
        self._fingerprint: Optional[str] = None
        self._pdf_objects: Dict[Hashable, ContinuousUncertainObject] = {}
        if build_index:
            dataset.rtree  # noqa: B018 - bulk-load now, reuse for every query

    # ------------------------------------------------------------------
    # construction variants
    # ------------------------------------------------------------------
    @classmethod
    def from_pdf_objects(
        cls,
        objects: Sequence[ContinuousUncertainObject],
        samples_per_object: int = 64,
        seed: int = 0,
        **kwargs: Any,
    ) -> "Session":
        """A session over continuous pdf objects (Section 3.2).

        The objects are discretized **once** into the session dataset; pdf
        causality queries reuse both the discretization and the exact
        region geometry instead of re-sampling per query.
        """
        rng = np.random.default_rng(seed)
        dataset = UncertainDataset(
            [obj.discretize(samples_per_object, rng) for obj in objects]
        )
        session = cls(dataset, **kwargs)
        session._pdf_objects = {obj.oid: obj for obj in objects}
        return session

    # ------------------------------------------------------------------
    # properties / helpers
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = dataset_fingerprint(self.dataset)
        return self._fingerprint

    @property
    def is_certain(self) -> bool:
        return isinstance(self.dataset, CertainDataset)

    @property
    def has_pdf_objects(self) -> bool:
        return bool(self._pdf_objects)

    def pdf_object(self, oid: Hashable) -> ContinuousUncertainObject:
        if not self._pdf_objects:
            raise ValueError(
                "this session was not created with Session.from_pdf_objects; "
                "pdf causality queries need the continuous objects"
            )
        try:
            return self._pdf_objects[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown pdf object {oid!r}") from None

    def cache_stats(self) -> Dict[str, float]:
        return self.cache.stats.as_dict()

    def _key(self, *parts: Hashable) -> Tuple:
        return (self.fingerprint,) + parts

    def _check_spec(self, spec: QuerySpec) -> None:
        if spec.dataset_kind == "certain" and not self.is_certain:
            raise SpecMismatchError(
                f"{spec.kind} queries need a CertainDataset session"
            )
        if spec.dataset_kind == "pdf" and not self.has_pdf_objects:
            raise SpecMismatchError(
                f"{spec.kind} queries need a Session.from_pdf_objects session"
            )

    # ------------------------------------------------------------------
    # shared cached sub-computations
    # ------------------------------------------------------------------
    def prsq_probabilities(self, q: Sequence[float]) -> Dict[Hashable, float]:
        """``Pr(u)`` for every object at query point *q*, cached.

        The probability map is alpha-independent, so PRSQ queries at the
        same point with different thresholds share one evaluation — this
        is the engine's single biggest amortization for multi-user traffic
        against a common catalogue.
        """
        q_tuple = tuple(float(v) for v in q)
        # use_numpy deliberately stays out of the cache key: both kernel
        # paths are bit-compatible (property-tested), so sessions with
        # different switches can share one cache without divergent hits.
        key = self._key("prsq-probabilities", q_tuple)
        value, _ = self.cache.get_or_compute(
            key,
            lambda: _prsq_probabilities(
                self.dataset, q_tuple, use_numpy=self.use_numpy
            ),
        )
        return dict(value)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> QueryPlan:
        """Compile (but do not run) the plan for *spec*."""
        self._check_spec(spec)
        return compile_plan(spec)

    def _run_raw(self, spec: QuerySpec) -> Any:
        """Execute *spec* bypassing the result cache (sub-caches still apply)."""
        return self.plan(spec).execute(self)

    def _execute_outcome(self, spec: QuerySpec) -> QueryOutcome:
        """Execute *spec* with result caching; returns the outcome record."""
        plan = self.plan(spec)
        key = self._key(*spec.cache_key())
        started = time.perf_counter()
        value, was_hit = self.cache.get_or_compute(
            key, lambda: plan.execute(self)
        )
        return QueryOutcome(
            spec=spec,
            value=_copy_out(value),
            cached=was_hit,
            elapsed_s=time.perf_counter() - started,
        )

    def query(self, spec: QuerySpec) -> "QueryResult":
        """Execute *spec* and return the typed v2 envelope.

        This is the canonical single-query entry point; prefer the
        :func:`repro.api.connect` client facade, which builds specs for
        you.  Errors raise; batch paths capture them into envelopes
        instead.
        """
        from repro.api.results import QueryResult

        return QueryResult.from_outcome(
            self._execute_outcome(spec), fingerprint=self.fingerprint
        )

    # -- legacy v1 shims ------------------------------------------------
    def run(self, spec: QuerySpec) -> Any:
        """Deprecated: use :meth:`query` (or the :func:`repro.api.connect`
        client) and ``.to_raw()`` for the old payload shape."""
        warnings.warn(
            "Session.run(spec) is deprecated; use Session.query(spec) / "
            "repro.api.connect(...) which return typed QueryResult envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_raw(spec)

    def execute(self, spec: QuerySpec) -> QueryOutcome:
        """Deprecated: use :meth:`query` for a typed, versioned envelope."""
        warnings.warn(
            "Session.execute(spec) is deprecated; use Session.query(spec) / "
            "repro.api.connect(...) which return typed QueryResult envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._execute_outcome(spec)

    def execute_batch(
        self,
        specs: Iterable[QuerySpec],
        executor: Optional["Executor"] = None,
    ) -> List[QueryOutcome]:
        """Execute a batch of specs, preserving input order.

        With no executor the batch runs serially in-process; pass a
        :class:`~repro.engine.executor.ParallelExecutor` to fan out across
        worker processes (results come back in the same order either way).

        Spec/session mismatches fail the whole batch up front; per-spec
        data errors (unknown id, an answer posed as a non-answer, ...) are
        captured in the corresponding outcome's ``error`` field so one bad
        query cannot discard the rest of the batch.
        """
        from repro.engine.executor import SerialExecutor

        executor = executor or SerialExecutor()
        return executor.map(self, list(specs))

    # ------------------------------------------------------------------
    # dataset lifecycle
    # ------------------------------------------------------------------
    def replace_dataset(self, dataset: UncertainDataset) -> None:
        """Swap in a new dataset version.

        The fingerprint is recomputed, so previously cached results can
        never be served for the new contents; old entries age out of the
        LRU naturally.
        """
        self.dataset = dataset
        self._fingerprint = None
        self._pdf_objects = {}
        dataset.rtree  # noqa: B018 - rebuild the index eagerly

    def __repr__(self) -> str:
        kind = "certain" if self.is_certain else "uncertain"
        fp = self._fingerprint[:10] if self._fingerprint else "(lazy)"
        return (
            f"<Session {kind} n={len(self.dataset)} dims={self.dataset.dims} "
            f"fingerprint={fp} cache={self.cache!r}>"
        )
