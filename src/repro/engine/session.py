"""Sessions: long-lived query-execution contexts over one dataset.

The seed entry points rebuild the R-tree and re-evaluate PRSQ
probabilities from scratch for every query point.  A :class:`Session`
amortizes that work across queries:

* the dataset R-tree is bulk-loaded **once**, at session construction;
* results (and the expensive PRSQ probability maps) are memoized in an
  LRU cache keyed by ``(dataset fingerprint, query identity)``, so a
  cache object can outlive the session — or be shared between sessions —
  without stale hits;
* batches fan out through an :class:`~repro.engine.executor.Executor`
  (serial or multiprocess) with deterministic result ordering.

Typical use::

    session = Session(dataset)
    envelope = session.query(PRSQSpec(q=(5.0, 5.0), alpha=0.5))
    outcomes = session.execute_batch(specs, executor=ParallelExecutor(4))

(Most callers should prefer the :func:`repro.api.connect` client facade;
the legacy ``run``/``execute`` methods remain as deprecation shims.)
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import obs
from repro.core.model import CausalityResult
from repro.engine.cache import LRUCache, NullCache
from repro.engine.plan import QueryPlan, compile_plan
from repro.engine.spec import QuerySpec
from repro.exceptions import SpecMismatchError
from repro.prsq.query import prsq_probabilities as _prsq_probabilities
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.pdf import ContinuousUncertainObject

CacheLike = Union[LRUCache, NullCache]

_DEFAULT = object()  # sentinel: "build a private cache"


def _copy_out(value: Any) -> Any:
    """Copy cached results so caller mutation can't poison the cache.

    Lists/dicts are shallow-copied; a :class:`CausalityResult` gets a fresh
    causes dict and stats (the :class:`Cause` values themselves are frozen).
    """
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, CausalityResult):
        return CausalityResult(
            an_oid=value.an_oid,
            alpha=value.alpha,
            causes=dict(value.causes),
            stats=replace(value.stats),
        )
    return value


def dataset_fingerprint(dataset: UncertainDataset) -> str:
    """Content hash of a dataset: ids, names, samples, probabilities.

    Two datasets fingerprint equal iff they hold the same objects in the
    same order with bit-identical sample/probability arrays, so the
    fingerprint is a sound cache-key component: any data change — an
    added, removed, reordered or perturbed object — changes the key and
    silently invalidates every cached result for the old contents.  Every
    field is length-prefixed (and arrays carry their shape) so no two
    distinct datasets can concatenate to the same byte stream.

    The hash combines per-object digests cached on the (immutable) objects
    — see :meth:`repro.uncertain.dataset.UncertainDataset.content_digest`
    — so after an incremental :meth:`Session.apply` only changed objects
    are re-hashed and the refresh costs O(changed), not O(n) sample bytes.
    """
    return dataset.content_digest()


@dataclass
class QueryOutcome:
    """One executed query: the spec, its value, and execution metadata.

    Batch executors capture per-spec data errors (unknown ids, non-answers
    that are answers, ...) instead of aborting the batch: a failed outcome
    has ``value None``, ``error`` set to the legacy ``"Type: message"``
    string, and the machine-actionable split — ``error_type`` (exception
    class name), ``error_code`` (:func:`repro.exceptions.error_code`
    taxonomy), ``error_message`` (bare text) — filled in alongside.
    """

    spec: QuerySpec
    value: Any
    cached: bool
    elapsed_s: float
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    #: Per-phase wall-time totals (``filter``/``refine``/``probability``/
    #: ``cache-lookup``/...) aggregated from the query's span tree; only
    #: filled when the session has a tracer.  Plain picklable floats, so
    #: worker outcomes carry their breakdowns back to the parent.
    phases: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        tag = (
            f"error={self.error!r}"
            if self.error is not None
            else ("cached" if self.cached else "computed")
        )
        return (
            f"<QueryOutcome {self.spec.kind} {tag} "
            f"{self.elapsed_s * 1e3:.2f} ms>"
        )


class Session:
    """A reusable execution context: dataset + bulk-loaded index + cache.

    Parameters
    ----------
    dataset:
        The dataset all queries run against (uncertain or certain).
    cache:
        ``None`` disables caching; omit it for a private
        :class:`~repro.engine.cache.LRUCache`; pass an explicit cache to
        share one across sessions (fingerprinted keys keep them disjoint).
    cache_size:
        Capacity of the private cache when one is built; ``0`` disables
        caching (same convention as the executor and the CLI).
    use_numpy:
        Select the vectorized kernels (default) or the scalar fallback
        paths; both produce identical results.
    build_index:
        Bulk-load the R-tree eagerly at construction (default) instead of
        on first use.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When set, every query runs
        under a root ``query`` span, instrumented phases (filter, refine,
        probability, cache-lookup, index-search, ...) nest beneath it,
        and each outcome carries a ``phases`` wall-time breakdown.  With
        ``None`` (the default) the instrumentation sites resolve to a
        shared no-op span.
    shards:
        With ``shards > 1`` the dataset is STR-partitioned into that many
        spatial shards (:func:`repro.uncertain.sharded.shard_dataset`)
        and every window-filter phase scatter-gathers across the
        per-shard indexes; results stay bit-identical to ``shards=1``
        (property-tested).  An already-sharded dataset is used as-is; the
        default ``None`` leaves an unsharded dataset unsharded.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        cache: Any = _DEFAULT,
        cache_size: int = 4096,
        use_numpy: bool = True,
        build_index: bool = True,
        tracer: Optional[obs.Tracer] = None,
        shards: Optional[int] = None,
    ):
        if (
            shards is not None
            and shards > 1
            and dataset.layout_digest() is None
        ):
            from repro.uncertain.sharded import shard_dataset

            dataset = shard_dataset(dataset, shards)
        self.dataset = dataset
        self.use_numpy = use_numpy
        self.build_index = build_index
        self.tracer = tracer
        #: Monotonic dataset version: 0 at construction, bumped by every
        #: :meth:`apply` / :meth:`replace_dataset`.  Purely informational —
        #: cache soundness rides on the fingerprint, not the version.
        self.version = 0
        if cache is _DEFAULT:
            self.cache: CacheLike = (
                LRUCache(cache_size) if cache_size > 0 else NullCache()
            )
        elif cache is None:
            self.cache = NullCache()
        else:
            self.cache = cache
        self._pdf_objects: Dict[Hashable, ContinuousUncertainObject] = {}
        if build_index:
            self._build_index_for(dataset)

    def _build_index_for(self, dataset: UncertainDataset) -> None:
        """Eagerly build the traversal structure this session will query.

        ``use_numpy`` sessions run the packed level-frontier kernels, so
        the packed snapshot(s) are frozen now — if the dataset already
        holds them (the worker array handoff), this is a no-op and **no
        pointer tree is built at all**; otherwise the bulk load runs once
        and the freeze adds a single O(n) array pass.  Scalar sessions
        bulk-load the pointer tree(s) as before.  Delegating to the
        dataset's ``warm_index`` lets sharded datasets warm every
        per-shard structure behind the same call.
        """
        dataset.warm_index(self.use_numpy)

    # ------------------------------------------------------------------
    # construction variants
    # ------------------------------------------------------------------
    @classmethod
    def from_pdf_objects(
        cls,
        objects: Sequence[ContinuousUncertainObject],
        samples_per_object: int = 64,
        seed: int = 0,
        **kwargs: Any,
    ) -> "Session":
        """A session over continuous pdf objects (Section 3.2).

        The objects are discretized **once** into the session dataset; pdf
        causality queries reuse both the discretization and the exact
        region geometry instead of re-sampling per query.
        """
        rng = np.random.default_rng(seed)
        dataset = UncertainDataset(
            [obj.discretize(samples_per_object, rng) for obj in objects]
        )
        session = cls(dataset, **kwargs)
        session._pdf_objects = {obj.oid: obj for obj in objects}
        return session

    # ------------------------------------------------------------------
    # properties / helpers
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The live dataset's content digest (cache-key material).

        Delegates to the dataset, which caches the combined digest and
        invalidates it on every mutation — so a dataset mutated directly
        through its own ``insert_object``/``delete_object``/``apply_delta``
        API (or through another session sharing it) can never leave this
        session serving results under a stale fingerprint.  Lazy: a parent
        session that only validates and dispatches (the parallel CLI path)
        never pays the hashing pass.
        """
        return self.dataset.content_digest()

    @property
    def is_certain(self) -> bool:
        return isinstance(self.dataset, CertainDataset)

    @property
    def has_pdf_objects(self) -> bool:
        return bool(self._pdf_objects)

    def pdf_object(self, oid: Hashable) -> ContinuousUncertainObject:
        if not self._pdf_objects:
            raise ValueError(
                "this session was not created with Session.from_pdf_objects; "
                "pdf causality queries need the continuous objects"
            )
        try:
            return self._pdf_objects[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown pdf object {oid!r}") from None

    def cache_stats(self) -> Dict[str, float]:
        return self.cache.stats.as_dict()

    @property
    def shard_count(self) -> int:
        """Spatial shard count of the underlying dataset (1 if unsharded)."""
        return self.dataset.shard_count

    def _key(self, *parts: Hashable) -> Tuple:
        """Result-cache key: fingerprint, partition layout (if any), spec.

        The layout digest rides along whenever the dataset is sharded.
        Results are bit-identical across layouts (property-tested), but
        execution metadata — node accesses, phase timings — is not, and a
        re-shard of the same data must never serve entries whose stats
        describe a different partition.  Unsharded sessions keep the
        historical ``(fingerprint, *spec)`` keys, so existing shared
        caches stay warm across this change.
        """
        layout = self.dataset.layout_digest()
        if layout is not None:
            return (self.fingerprint, "layout", layout) + parts
        return (self.fingerprint,) + parts

    def _check_spec(self, spec: QuerySpec) -> None:
        if spec.dataset_kind == "certain" and not self.is_certain:
            raise SpecMismatchError(
                f"{spec.kind} queries need a CertainDataset session"
            )
        if spec.dataset_kind == "pdf" and not self.has_pdf_objects:
            raise SpecMismatchError(
                f"{spec.kind} queries need a Session.from_pdf_objects session"
            )

    # ------------------------------------------------------------------
    # shared cached sub-computations
    # ------------------------------------------------------------------
    def prsq_probabilities(self, q: Sequence[float]) -> Dict[Hashable, float]:
        """``Pr(u)`` for every object at query point *q*, cached.

        The probability map is alpha-independent, so PRSQ queries at the
        same point with different thresholds share one evaluation — this
        is the engine's single biggest amortization for multi-user traffic
        against a common catalogue.
        """
        q_tuple = tuple(float(v) for v in q)
        # use_numpy deliberately stays out of the cache key: both kernel
        # paths are bit-compatible (property-tested), so sessions with
        # different switches can share one cache without divergent hits.
        key = self._key("prsq-probabilities", q_tuple)
        value, _ = self.cache.get_or_compute(
            key,
            lambda: _prsq_probabilities(
                self.dataset, q_tuple, use_numpy=self.use_numpy
            ),
        )
        return dict(value)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan(self, spec: QuerySpec) -> QueryPlan:
        """Compile (but do not run) the plan for *spec*."""
        self._check_spec(spec)
        return compile_plan(spec)

    def _run_raw(self, spec: QuerySpec) -> Any:
        """Execute *spec* bypassing the result cache (sub-caches still apply)."""
        return self.plan(spec).execute(self)

    def _run_cached(self, plan: QueryPlan, spec: QuerySpec) -> Tuple[Any, bool]:
        """``(value, was_hit)`` through the result cache.

        Specs flagged ``cacheable = False`` (dataset updates) bypass the
        result cache entirely: caching a mutation would let a repeated
        identical update hit the cache and silently not apply.
        """
        if not getattr(spec, "cacheable", True):
            return plan.execute(self), False
        key = self._key(*spec.cache_key())
        return self.cache.get_or_compute(key, lambda: plan.execute(self))

    def _execute_outcome(self, spec: QuerySpec) -> QueryOutcome:
        """Execute *spec* with result caching; returns the outcome record.

        ``elapsed_s`` spans plan compilation through cache lookup and
        execution, so a cache *hit* reports its actual lookup cost rather
        than a near-zero residue.  Per-family latency histograms, result
        cache hit/miss counters and the node-access counter always record
        into the global :func:`repro.obs.registry`; the span tree (and the
        per-outcome ``phases`` breakdown) is built only when this session
        has a tracer.
        """
        started = time.perf_counter()
        plan = self.plan(spec)
        access_before = self.dataset.access_stats.snapshot()
        tracer = self.tracer
        if tracer is None:
            value, was_hit = self._run_cached(plan, spec)
            phases: Optional[Dict[str, float]] = None
        else:
            with tracer.activate():
                with tracer.span("query", kind=spec.kind) as root:
                    value, was_hit = self._run_cached(plan, spec)
                    root.set(
                        cached=was_hit,
                        node_accesses=(
                            self.dataset.access_stats.snapshot()
                            - access_before
                        ).node_accesses,
                        use_numpy=self.use_numpy,
                    )
            phases = root.phase_totals()
        elapsed = time.perf_counter() - started

        metrics = obs.registry()
        metrics.counter(f"query.{spec.kind}.count").inc()
        metrics.counter(
            "cache.result.hits" if was_hit else "cache.result.misses"
        ).inc()
        access_delta = self.dataset.access_stats.snapshot() - access_before
        if access_delta.node_accesses:
            metrics.counter("index.node_accesses").inc(
                access_delta.node_accesses
            )
        metrics.histogram(f"query.{spec.kind}.latency_s").observe(elapsed)

        return QueryOutcome(
            spec=spec,
            value=_copy_out(value),
            cached=was_hit,
            elapsed_s=elapsed,
            phases=phases,
        )

    def query(self, spec: QuerySpec) -> "QueryResult":
        """Execute *spec* and return the typed v2 envelope.

        This is the canonical single-query entry point; prefer the
        :func:`repro.api.connect` client facade, which builds specs for
        you.  Errors raise; batch paths capture them into envelopes
        instead.
        """
        from repro.api.results import QueryResult

        return QueryResult.from_outcome(
            self._execute_outcome(spec), fingerprint=self.fingerprint
        )

    # -- legacy v1 shims ------------------------------------------------
    def run(self, spec: QuerySpec) -> Any:
        """Deprecated: use :meth:`query` (or the :func:`repro.api.connect`
        client) and ``.to_raw()`` for the old payload shape."""
        warnings.warn(
            "Session.run(spec) is deprecated; use Session.query(spec) / "
            "repro.api.connect(...) which return typed QueryResult envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_raw(spec)

    def execute(self, spec: QuerySpec) -> QueryOutcome:
        """Deprecated: use :meth:`query` for a typed, versioned envelope."""
        warnings.warn(
            "Session.execute(spec) is deprecated; use Session.query(spec) / "
            "repro.api.connect(...) which return typed QueryResult envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._execute_outcome(spec)

    def execute_batch(
        self,
        specs: Iterable[QuerySpec],
        executor: Optional["Executor"] = None,
    ) -> List[QueryOutcome]:
        """Execute a batch of specs, preserving input order.

        With no executor the batch runs serially in-process; pass a
        :class:`~repro.engine.executor.ParallelExecutor` to fan out across
        worker processes (results come back in the same order either way).

        Spec/session mismatches fail the whole batch up front; per-spec
        data errors (unknown id, an answer posed as a non-answer, ...) are
        captured in the corresponding outcome's ``error`` field so one bad
        query cannot discard the rest of the batch.
        """
        from repro.engine.executor import SerialExecutor

        executor = executor or SerialExecutor()
        return executor.map(self, list(specs))

    # ------------------------------------------------------------------
    # snapshot isolation (the serve layer's read path)
    # ------------------------------------------------------------------
    def read_snapshot(self) -> "Session":
        """A snapshot-isolated read view of this session, frozen now.

        The returned session shares this session's result cache
        (fingerprinted keys keep entries sound across versions) and every
        immutable structure — objects, tensor, packed-index arrays — but
        owns its id maps and access counters, so a later :meth:`apply` or
        :meth:`replace_dataset` here can never be observed by queries
        already running against the snapshot: they keep serving the old
        frozen arrays.  Cost per call is O(n) pointer copies plus one
        O(n) packed re-freeze (``use_numpy`` sessions); see
        :meth:`repro.uncertain.dataset.UncertainDataset.snapshot`.

        This is the publish step of the serve layer's single-writer
        scheme: the writer applies deltas to the live session, then
        publishes ``read_snapshot()`` for new readers; in-flight readers
        finish on the previous snapshot.
        """
        snapshot = Session(
            self.dataset.snapshot(freeze_packed=self.use_numpy),
            cache=self.cache,
            use_numpy=self.use_numpy,
            build_index=False,
        )
        if not self.use_numpy:
            # Scalar readers traverse the pointer tree(s): bulk-load once
            # here so per-request views share them instead of each paying
            # their own O(n log n) build.
            snapshot.dataset.warm_index(False)
        snapshot.version = self.version
        snapshot._pdf_objects = dict(self._pdf_objects)
        return snapshot

    def reader(self) -> "Session":
        """An O(1) per-caller view for concurrent reads of one snapshot.

        Shares the dataset's maps/arrays and this session's result cache,
        but owns the node-access counters, so parallel readers of one
        :meth:`read_snapshot` result each measure deterministic per-query
        ``node_accesses`` (causality stats stay bit-identical to a serial
        replay).  Only take readers of immutable snapshot sessions — a
        reader of a *live* session shares maps its writer would patch.
        """
        view = Session(
            self.dataset.view(),
            cache=self.cache,
            use_numpy=self.use_numpy,
            build_index=False,
        )
        view.version = self.version
        view._pdf_objects = self._pdf_objects
        return view

    # ------------------------------------------------------------------
    # dataset lifecycle
    # ------------------------------------------------------------------
    def apply(self, delta: DatasetDelta) -> Dict[str, Any]:
        """Apply *delta* to the live dataset incrementally.

        The dataset patches its own derived state in O(changed) work (the
        R-tree via ``insert``/``delete`` — only if it was already built,
        honoring ``build_index=False`` —, the cached tensor by row, the
        content digest by re-combining cached per-object digests).  The
        session then bumps :attr:`version` and refreshes its fingerprint,
        so every cached result keyed by the old fingerprint can never be
        served again; with a shared cache the old entries simply age out
        of the LRU.

        Returns a summary dict (the raw payload the ``update`` query
        family wraps): old/new fingerprints, the new version, op counts,
        and the resulting object count.

        Pdf sessions are refused: their dataset is a discretization of the
        continuous objects, and patching one side would silently desync
        the other — rebuild via :meth:`from_pdf_objects`, or use
        :meth:`replace_dataset` with ``pdf_objects=``.
        """
        if self.has_pdf_objects:
            raise ValueError(
                "cannot apply a dataset delta to a Session.from_pdf_objects "
                "session: the discrete dataset is derived from the continuous "
                "objects; rebuild with Session.from_pdf_objects(...) or use "
                "replace_dataset(dataset, pdf_objects=...)"
            )
        previous = self.fingerprint
        self.dataset.apply_delta(delta)
        self.version += 1
        return {
            "version": self.version,
            "n_objects": len(self.dataset),
            "deleted": len(delta.deletes),
            "updated": len(delta.updates),
            "inserted": len(delta.inserts),
            "previous_fingerprint": previous,
            "fingerprint": self.fingerprint,
        }

    def replace_dataset(
        self,
        dataset: UncertainDataset,
        pdf_objects: Optional[Sequence[ContinuousUncertainObject]] = None,
    ) -> None:
        """Swap in a new dataset wholesale — the full-rebuild fallback.

        Prefer :meth:`apply` for small changes; use this when most of the
        dataset changed (bulk reload beats replaying a long delta).  The
        fingerprint is recomputed, so previously cached results can never
        be served for the new contents; old entries age out of the LRU
        naturally.

        A session built with :meth:`from_pdf_objects` must pass matching
        *pdf_objects* (the continuous objects *dataset* discretizes) or an
        empty sequence to explicitly drop the pdf side; omitting the
        argument raises instead of silently breaking later pdf causality
        queries.  The session's ``build_index`` choice is honored: with
        ``build_index=False`` the new index stays lazy.
        """
        if pdf_objects is None and self._pdf_objects:
            raise ValueError(
                "this session was created with Session.from_pdf_objects; "
                "replace_dataset needs the matching pdf_objects= (or an "
                "explicit empty sequence to drop pdf support)"
            )
        self.dataset = dataset
        self.version += 1
        if pdf_objects is not None:
            self._pdf_objects = {obj.oid: obj for obj in pdf_objects}
        if self.build_index:
            self._build_index_for(dataset)

    def __repr__(self) -> str:
        kind = "certain" if self.is_certain else "uncertain"
        digest = self.dataset._content_digest
        fp = digest[:10] if digest else "(lazy)"
        return (
            f"<Session {kind} n={len(self.dataset)} dims={self.dataset.dims} "
            f"fingerprint={fp} cache={self.cache!r}>"
        )
