"""Declarative query specifications — the engine's plan-layer input.

A :class:`QuerySpec` is an immutable, hashable, JSON-serializable value
describing *what* to compute; :mod:`repro.engine.plan` decides *how*.  The
spec zoo covers every query family in the repository:

================================  =========================================
spec                              underlying computation
================================  =========================================
:class:`PRSQSpec`                 probabilistic reverse skyline (Def. 4)
:class:`CausalitySpec`            algorithm CP on one PRSQ non-answer
:class:`PdfCausalitySpec`         CP under the continuous pdf model
:class:`CausalityCertainSpec`     algorithm CR (certain data)
:class:`KSkybandCausalitySpec`    CR generalized to reverse k-skybands
:class:`ReverseSkylineSpec`       reverse skyline (certain data)
:class:`ReverseKSkybandSpec`      reverse k-skyband (certain data)
:class:`ReverseTopKSpec`          reverse top-k user query
================================  =========================================

``spec_to_dict`` / ``spec_from_dict`` give the CLI a stable JSON wire
format; ``cache_key()`` gives the session a hashable identity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Hashable, Optional, Tuple, Type

from repro.core.cp import CPConfig
from repro.geometry.point import PointLike
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject


def _point_tuple(q: PointLike) -> Tuple[float, ...]:
    try:
        return tuple(float(v) for v in q)
    except TypeError:
        raise ValueError(
            f"query point must be a sequence of numbers, got {q!r}"
        ) from None


def _validate_alpha(alpha: float) -> None:
    # bool is an int subclass; alpha=True must fail like _validate_k's k=True.
    if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
        raise ValueError(f"alpha must be a number, got {alpha!r}")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")


def _validate_k(k: int) -> None:
    if not isinstance(k, int) or isinstance(k, bool):
        raise ValueError(f"k must be an integer >= 1, got {k!r}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def _require_hashable(name: str, value: Any) -> None:
    """Specs must be cache-key material; reject unhashable JSON (lists...)."""
    try:
        hash(value)
    except TypeError:
        raise ValueError(
            f"{name} must be hashable, got {type(value).__name__}: {value!r}"
        ) from None


@dataclass(frozen=True)
class QuerySpec:
    """Base class for all engine query specifications."""

    kind: ClassVar[str] = "abstract"
    dataset_kind: ClassVar[str] = "uncertain"  # uncertain | certain | pdf
    #: Results of this spec may be served from the LRU result cache.  Specs
    #: with side effects (dataset updates) must opt out, or a repeated
    #: identical op would hit the cache and silently not run.
    cacheable: ClassVar[bool] = True
    #: This spec changes session state.  Parallel executors refuse mutating
    #: specs: worker processes hold dataset copies, so a mutation applied
    #: in a worker would be lost — and batch order vs. other chunks is
    #: undefined anyway.
    mutates: ClassVar[bool] = False

    def cache_key(self) -> Tuple:
        """Hashable identity of the spec (kind + every field value)."""
        parts: Tuple = (self.kind,)
        for f in fields(self):
            parts += (f.name, getattr(self, f.name))
        return parts

    def describe(self) -> str:
        args = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{self.kind}({args})"


@dataclass(frozen=True)
class PRSQSpec(QuerySpec):
    """Probabilistic reverse skyline query at one query point.

    ``want`` selects the projection: ``"answers"`` (ids with
    ``Pr >= alpha``), ``"non_answers"``, or ``"probabilities"`` (the full
    id -> probability map).
    """

    q: Tuple[float, ...] = ()
    alpha: float = 0.5
    want: str = "answers"

    kind: ClassVar[str] = "prsq"
    dataset_kind: ClassVar[str] = "uncertain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _validate_alpha(self.alpha)
        if self.want not in ("answers", "non_answers", "probabilities"):
            raise ValueError(
                f"want must be answers|non_answers|probabilities, got {self.want!r}"
            )


@dataclass(frozen=True)
class CausalitySpec(QuerySpec):
    """Algorithm CP: causality & responsibility for one PRSQ non-answer."""

    an: Hashable = None
    q: Tuple[float, ...] = ()
    alpha: float = 0.5
    config: CPConfig = CPConfig()

    kind: ClassVar[str] = "causality"
    dataset_kind: ClassVar[str] = "uncertain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _require_hashable("an", self.an)
        _validate_alpha(self.alpha)


@dataclass(frozen=True)
class PdfCausalitySpec(QuerySpec):
    """Algorithm CP under the continuous pdf model (Section 3.2).

    Requires a session created with :meth:`repro.engine.session.Session.
    from_pdf_objects`, which owns both the pdf objects (for the exact
    filter-region geometry) and their one shared discretization.
    """

    an: Hashable = None
    q: Tuple[float, ...] = ()
    alpha: float = 0.5
    config: CPConfig = CPConfig()

    kind: ClassVar[str] = "pdf_causality"
    dataset_kind: ClassVar[str] = "pdf"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _require_hashable("an", self.an)
        _validate_alpha(self.alpha)


@dataclass(frozen=True)
class CausalityCertainSpec(QuerySpec):
    """Algorithm CR: causality for one reverse-skyline non-answer."""

    an: Hashable = None
    q: Tuple[float, ...] = ()

    kind: ClassVar[str] = "causality_certain"
    dataset_kind: ClassVar[str] = "certain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _require_hashable("an", self.an)


@dataclass(frozen=True)
class KSkybandCausalitySpec(QuerySpec):
    """Causality for a reverse k-skyband non-answer (certain data)."""

    an: Hashable = None
    q: Tuple[float, ...] = ()
    k: int = 1

    kind: ClassVar[str] = "k_skyband_causality"
    dataset_kind: ClassVar[str] = "certain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _require_hashable("an", self.an)
        _validate_k(self.k)


@dataclass(frozen=True)
class ReverseSkylineSpec(QuerySpec):
    """The reverse skyline of one query point (certain data)."""

    q: Tuple[float, ...] = ()

    kind: ClassVar[str] = "reverse_skyline"
    dataset_kind: ClassVar[str] = "certain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))


@dataclass(frozen=True)
class ReverseKSkybandSpec(QuerySpec):
    """The reverse k-skyband of one query point (certain data)."""

    q: Tuple[float, ...] = ()
    k: int = 1

    kind: ClassVar[str] = "reverse_k_skyband"
    dataset_kind: ClassVar[str] = "certain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        _validate_k(self.k)


@dataclass(frozen=True)
class ReverseTopKSpec(QuerySpec):
    """Reverse top-k: users (weight vectors) for whom ``q`` is top-k."""

    q: Tuple[float, ...] = ()
    k: int = 1
    weights: Tuple[Tuple[float, ...], ...] = ()
    user_ids: Optional[Tuple[Hashable, ...]] = None

    kind: ClassVar[str] = "reverse_top_k"
    dataset_kind: ClassVar[str] = "certain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", _point_tuple(self.q))
        object.__setattr__(
            self, "weights", tuple(_point_tuple(w) for w in self.weights)
        )
        if self.user_ids is not None:
            object.__setattr__(self, "user_ids", tuple(self.user_ids))
            _require_hashable("user_ids", self.user_ids)
        _validate_k(self.k)
        if not self.weights:
            raise ValueError("at least one weight vector is required")


#: Wire form of one object in an :class:`UpdateSpec`:
#: ``(id, samples, probabilities, name)`` with nested float tuples.
ObjectEntry = Tuple[Hashable, Tuple[Tuple[float, ...], ...],
                    Optional[Tuple[float, ...]], Optional[str]]


def object_entry(obj: UncertainObject) -> ObjectEntry:
    """The hashable, JSON-safe wire form of one uncertain object."""
    return (
        obj.oid,
        tuple(tuple(float(v) for v in row) for row in obj.samples),
        tuple(float(p) for p in obj.probabilities),
        obj.name,
    )


def entry_object(entry: ObjectEntry) -> UncertainObject:
    """Rebuild the :class:`UncertainObject` an :func:`object_entry` encodes."""
    oid, samples, probabilities, name = entry
    return UncertainObject(
        oid,
        [list(row) for row in samples],
        None if probabilities is None else list(probabilities),
        name=name,
    )


def _normalize_entry(label: str, entry: Any) -> ObjectEntry:
    if isinstance(entry, UncertainObject):
        return object_entry(entry)
    try:
        oid, samples, probabilities, name = entry
    except (TypeError, ValueError):
        raise ValueError(
            f"{label} entries must be (id, samples, probabilities, name) "
            f"4-tuples or UncertainObject instances, got {entry!r}"
        ) from None
    _require_hashable(f"{label} id", oid)
    samples_t = tuple(_point_tuple(row) for row in samples)
    if not samples_t:
        raise ValueError(f"{label} entry {oid!r} has no samples")
    probabilities_t = (
        None
        if probabilities is None
        else tuple(float(p) for p in probabilities)
    )
    if name is not None and not isinstance(name, str):
        raise ValueError(
            f"{label} entry {oid!r}: name must be a string or None, "
            f"got {name!r}"
        )
    return (oid, samples_t, probabilities_t, name)


@dataclass(frozen=True)
class UpdateSpec(QuerySpec):
    """A dataset delta as a registered query family (the write path).

    ``deletes`` removes ids, ``updates`` replaces objects in place,
    ``inserts`` appends new ones — applied in exactly that order by
    :meth:`repro.engine.session.Session.apply`.  Objects travel as
    :data:`ObjectEntry` tuples so the spec stays hashable and survives the
    JSON wire format; pass :class:`~repro.uncertain.object.UncertainObject`
    instances and they are converted on construction.

    Updates are never cached (``cacheable = False``) and never fan out to
    worker processes (``mutates = True``): workers hold dataset copies, so
    a mutation applied there would be silently lost.
    """

    deletes: Tuple[Hashable, ...] = ()
    updates: Tuple[ObjectEntry, ...] = ()
    inserts: Tuple[ObjectEntry, ...] = ()

    kind: ClassVar[str] = "update"
    dataset_kind: ClassVar[str] = "uncertain"  # accepted by any session
    cacheable: ClassVar[bool] = False
    mutates: ClassVar[bool] = True

    def __post_init__(self):
        if isinstance(self.deletes, str):
            # tuple("hot-1") would silently explode into per-char deletes
            raise ValueError(
                f"deletes must be a sequence of ids, got the bare string "
                f"{self.deletes!r}; wrap it: deletes=({self.deletes!r},)"
            )
        deletes = tuple(self.deletes)
        for oid in deletes:
            _require_hashable("deletes id", oid)
        object.__setattr__(self, "deletes", deletes)
        object.__setattr__(
            self,
            "updates",
            tuple(_normalize_entry("updates", e) for e in self.updates),
        )
        object.__setattr__(
            self,
            "inserts",
            tuple(_normalize_entry("inserts", e) for e in self.inserts),
        )
        seen = set()
        for oid in (
            *self.deletes,
            *(e[0] for e in self.updates),
            *(e[0] for e in self.inserts),
        ):
            if oid in seen:
                raise ValueError(
                    f"id {oid!r} appears in more than one update op; "
                    "a delete + insert of the same id is an update"
                )
            seen.add(oid)
        if not seen:
            raise ValueError(
                "empty update: no deletes, updates, or inserts"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_delta(cls, delta: DatasetDelta) -> "UpdateSpec":
        return cls(
            deletes=delta.deletes,
            updates=tuple(object_entry(o) for o in delta.updates),
            inserts=tuple(object_entry(o) for o in delta.inserts),
        )

    def to_delta(self) -> DatasetDelta:
        """The executable :class:`DatasetDelta` this spec encodes.

        Object construction — and therefore probability validation —
        happens here, at execution time, so a malformed entry in a batch
        becomes a captured per-spec data error instead of a parse failure.
        """
        return DatasetDelta(
            deletes=self.deletes,
            updates=tuple(entry_object(e) for e in self.updates),
            inserts=tuple(entry_object(e) for e in self.inserts),
        )


#: Legacy view of the built-in kind -> spec-class mapping.  The
#: authoritative table is :data:`repro.api.registry.REGISTRY` (which also
#: holds planners, result codecs, and any runtime-registered families);
#: this dict remains for import compatibility only.
SPEC_KINDS: Dict[str, Type[QuerySpec]] = {
    cls.kind: cls
    for cls in (
        PRSQSpec,
        CausalitySpec,
        PdfCausalitySpec,
        CausalityCertainSpec,
        KSkybandCausalitySpec,
        ReverseSkylineSpec,
        ReverseKSkybandSpec,
        ReverseTopKSpec,
        UpdateSpec,
    )
}


def spec_to_dict(spec: QuerySpec) -> Dict[str, Any]:
    """JSON-ready dict for a spec (inverse of :func:`spec_from_dict`).

    Dispatches through the query registry, so runtime-registered families
    serialize exactly like the builtins — including the tagged wire
    encoding that lets tuple ids survive a real JSON round trip.
    """
    from repro.api.registry import REGISTRY

    return REGISTRY.spec_to_dict(spec)


def spec_from_dict(payload: Dict[str, Any]) -> QuerySpec:
    """Build a spec from its JSON dict form (registry-dispatched)."""
    from repro.api.registry import REGISTRY

    return REGISTRY.spec_from_dict(payload)
