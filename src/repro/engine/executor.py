"""Executors: serial and multiprocess fan-out for query batches.

The :class:`ParallelExecutor` ships the *dataset contents* plus the frozen
:class:`~repro.index.packed.PackedRTree` arrays (never the pointer R-tree)
to each worker once, via the pool initializer; workers adopt the packed
snapshot by array handoff — no per-worker O(n log n) index rebuild — build
their own session (cache, kernels) and then drain chunks of
``(index, spec)`` pairs.  Contiguous chunks submitted in order keep the
result order deterministic and identical to the serial executor, which is
asserted by the engine parity tests.
Per-spec *data* errors (unknown object ids, a causality query on an
object that is actually an answer, ...) are captured into the outcome's
``error`` field rather than aborting the batch; spec/session mismatches
still fail fast in the parent before any work is dispatched.

Worker fan-out runs on :class:`concurrent.futures.ProcessPoolExecutor`
rather than ``multiprocessing.Pool`` because the former *detects* worker
death: a SIGKILLed worker raises :class:`BrokenProcessPool` instead of
hanging a ``Pool.map`` forever.  On the first crash the executor salvages
every chunk that completed, respawns the pool once (with ``worker.chunk``
fault rules disarmed so an injected kill cannot re-fire), resubmits only
the incomplete chunks, and keeps the deterministic order; a second crash
raises :class:`~repro.exceptions.WorkerCrashError`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults, obs
from repro.engine.cache import CacheStats
from repro.engine.spec import QuerySpec
from repro.exceptions import ReproError, WorkerCrashError, error_code
from repro.uncertain.dataset import CertainDataset, UncertainDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import QueryOutcome, Session


def _execute_captured(session: "Session", spec: QuerySpec) -> "QueryOutcome":
    """Run one spec, converting data errors into a failed outcome.

    The failed outcome carries the legacy combined ``error`` string plus
    the machine-actionable split (``error_type``/``error_code``/
    ``error_message``) that the API layer serializes into envelopes.
    """
    from repro.engine.session import QueryOutcome

    started = time.perf_counter()
    try:
        return session._execute_outcome(spec)
    except (ReproError, KeyError, ValueError) as exc:
        return QueryOutcome(
            spec=spec,
            value=None,
            cached=False,
            elapsed_s=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
            error_code=error_code(exc),
            error_message=str(exc),
        )


# ---------------------------------------------------------------------------
# dataset (de)hydration — ship contents plus the frozen packed index, so
# workers reconstruct the spatial index by array handoff instead of a
# per-worker O(n log n) rebuild
# ---------------------------------------------------------------------------
def _dataset_payload(
    dataset: UncertainDataset, include_packed: bool = True
) -> Dict[str, Any]:
    if isinstance(dataset, CertainDataset):
        payload: Dict[str, Any] = {
            "kind": "certain",
            "points": dataset.points,
            "ids": dataset.ids(),
            "names": [obj.name for obj in dataset],
            "page_size": dataset.page_size,
        }
    else:
        payload = {
            "kind": "uncertain",
            "objects": dataset.objects(),
            "page_size": dataset.page_size,
        }
    # The packed snapshot is immutable contiguous arrays — cheap to pickle
    # and adopted as-is on the other side (PackedRTree.__getstate__ drops
    # the shared stats counter).  Only shipped when already frozen (a lazy
    # parent stays lazy end to end) and wanted: scalar sessions query the
    # pointer tree only, so shipping them the arrays would be dead weight.
    payload["packed"] = dataset._packed if include_packed else None
    layout = dataset.layout_digest()
    if layout is not None:
        # Sharded parents ship their exact assignment (and each shard's
        # frozen arrays), so workers reproduce the partition bit-for-bit —
        # same layout digest, same cache keys — with zero STR recomputes
        # and zero per-shard rebuilds.
        payload["sharding"] = {
            "requested": dataset.requested_shards,
            "assignment": dataset.layout.assignment(),
            "packed": (
                [shard._packed for shard in dataset.shards()]
                if include_packed
                else None
            ),
        }
    return payload


def _restore_sharding(
    dataset: UncertainDataset, sharding: Dict[str, Any]
) -> UncertainDataset:
    from repro.uncertain.sharded import shard_dataset

    sharded = shard_dataset(
        dataset,
        sharding["requested"],
        assignment=sharding["assignment"],
    )
    packed = sharding.get("packed")
    if packed is not None:
        for shard, snapshot in zip(sharded.shards(), packed):
            if snapshot is not None:  # a lazy parent ships unfrozen shards
                shard.adopt_packed(snapshot)
    return sharded


def _restore_dataset(payload: Dict[str, Any]) -> UncertainDataset:
    if payload["kind"] == "certain":
        dataset: UncertainDataset = CertainDataset(
            payload["points"],
            ids=payload["ids"],
            names=payload["names"],
            page_size=payload["page_size"],
        )
    else:
        dataset = UncertainDataset(
            payload["objects"], page_size=payload["page_size"]
        )
    packed = payload.get("packed")
    if packed is not None:
        dataset.adopt_packed(packed)
    sharding = payload.get("sharding")
    if sharding is not None:
        dataset = _restore_sharding(dataset, sharding)
    return dataset


# ---------------------------------------------------------------------------
# worker plumbing (module-level for picklability under any start method)
# ---------------------------------------------------------------------------
_WORKER_SESSION: Optional["Session"] = None


def _worker_init(
    payload: Dict[str, Any],
    pdf_objects: Optional[list],
    session_kwargs: Dict[str, Any],
    trace_enabled: bool = False,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> None:
    from repro.engine.session import Session

    global _WORKER_SESSION
    # Fault hit counts are per *process*: install the shipped plan fresh
    # (install(None) also clears any injector inherited across fork, so
    # a worker never double-counts the parent's seam passes).
    faults.install(fault_plan)
    # A Tracer holds thread-local state and maybe a file handle, so the
    # parent ships a flag instead of its tracer: a traced parent gives
    # every worker a private in-memory collector whose finished span
    # trees are drained per chunk and pickled back as plain dicts.
    if trace_enabled:
        session_kwargs = dict(session_kwargs, tracer=obs.Tracer())
    session = Session(_restore_dataset(payload), **session_kwargs)
    if pdf_objects:
        session._pdf_objects = {obj.oid: obj for obj in pdf_objects}
    _WORKER_SESSION = session


def _worker_run(
    chunk: List[Tuple[int, QuerySpec]]
) -> Tuple[
    List[Tuple[int, "QueryOutcome"]],
    CacheStats,
    Dict[str, Any],
    List[Dict[str, Any]],
]:
    """Run one chunk; returns outcomes plus this chunk's observability deltas.

    Worker cache stats and metrics accumulate across chunks within one
    process, so the parent can't just sum end-of-batch snapshots — each
    chunk reports the *delta* it contributed (cache counters, a metrics
    delta snapshot, and any finished span trees as picklable dicts) and
    the parent merges those into the batch-wide totals.
    """
    assert _WORKER_SESSION is not None, "worker initialized without a session"
    rule = faults.check(
        "worker.chunk", chunk_start=chunk[0][0] if chunk else -1
    )
    if rule is not None and rule.action == "kill":
        # A real crash, not an exception: SIGKILL gives the pool no
        # chance to clean up, which is exactly the failure mode the
        # parent-side recovery has to survive.
        os.kill(os.getpid(), signal.SIGKILL)
    stats = _WORKER_SESSION.cache.stats
    before = (stats.hits, stats.misses, stats.evictions)
    metrics_before = obs.registry().snapshot()
    outcomes = [
        (index, _execute_captured(_WORKER_SESSION, spec))
        for index, spec in chunk
    ]
    delta = CacheStats(
        hits=stats.hits - before[0],
        misses=stats.misses - before[1],
        evictions=stats.evictions - before[2],
    )
    metrics_delta = obs.MetricsRegistry.diff(
        metrics_before, obs.registry().snapshot()
    )
    spans = (
        [root.to_dict() for root in _WORKER_SESSION.tracer.drain()]
        if _WORKER_SESSION.tracer is not None
        else []
    )
    return outcomes, delta, metrics_delta, spans


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------
class Executor:
    """Maps a batch of specs over a session, preserving input order."""

    #: Merged hit/miss/eviction counters for the most recent batch run by
    #: this executor — across *all* worker processes for the parallel
    #: executor, so cold-cache regressions under churn stay observable
    #: even though workers hold private caches.  ``None`` until a batch
    #: has run; updated incrementally while a stream is being consumed.
    last_cache_stats: Optional[CacheStats] = None

    #: Metrics delta attributable to the most recent batch, in
    #: :meth:`~repro.obs.MetricsRegistry.snapshot` shape.  For the
    #: parallel executor this is the merged worker hand-back (which is
    #: also folded into the parent's process-global registry); for the
    #: serial executor it is a diff of that registry around the batch.
    last_metrics: Optional[Dict[str, Any]] = None

    def map(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> List["QueryOutcome"]:
        raise NotImplementedError

    def stream(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> Iterator["QueryOutcome"]:
        """Yield outcomes in input order as they complete.

        The base implementation degrades to :meth:`map`; the serial and
        parallel executors override it with genuinely incremental
        delivery — this is what feeds the client's ``.stream()`` and the
        CLI's NDJSON ``batch --stream`` output.
        """
        yield from self.map(session, specs)

    @staticmethod
    def _precheck(session: "Session", specs: Sequence[QuerySpec]) -> None:
        """Spec/session mismatches are caller bugs: fail the batch up front."""
        for spec in specs:
            session._check_spec(spec)


class SerialExecutor(Executor):
    """Run the batch in-process, one spec at a time."""

    def map(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> List["QueryOutcome"]:
        return list(self.stream(session, specs))

    def stream(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> Iterator["QueryOutcome"]:
        specs = list(specs)
        self._precheck(session, specs)
        stats = session.cache.stats
        base = (stats.hits, stats.misses, stats.evictions)
        metrics_base = obs.registry().snapshot()
        self.last_cache_stats = CacheStats()
        self.last_metrics = obs.MetricsRegistry.diff(metrics_base, metrics_base)
        for spec in specs:
            outcome = _execute_captured(session, spec)
            # record before yielding: an abandoned stream must still
            # account for every spec that actually executed
            self.last_cache_stats.hits = stats.hits - base[0]
            self.last_cache_stats.misses = stats.misses - base[1]
            self.last_cache_stats.evictions = stats.evictions - base[2]
            self.last_metrics = obs.MetricsRegistry.diff(
                metrics_base, obs.registry().snapshot()
            )
            yield outcome


class ParallelExecutor(Executor):
    """Chunked multiprocess fan-out with deterministic result ordering.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the CPU count.
    chunk_size:
        Specs per task; defaults to splitting the batch into ~4 chunks per
        worker so session-construction cost amortizes while stragglers
        still balance.
    cache_size:
        Capacity of each worker's private LRU cache (workers cannot share
        the parent cache; 0 disables worker caching).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cache_size: int = 4096,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.cache_size = cache_size

    # ------------------------------------------------------------------
    def _chunks(
        self, indexed: List[Tuple[int, QuerySpec]]
    ) -> List[List[Tuple[int, QuerySpec]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(indexed) / (self.workers * 4)))
        return [indexed[i : i + size] for i in range(0, len(indexed), size)]

    def _initargs(
        self, session: "Session"
    ) -> Tuple[
        Dict[str, Any],
        Optional[list],
        Dict[str, Any],
        bool,
        Optional[faults.FaultPlan],
    ]:
        if session.build_index and session.use_numpy:
            # Freeze once, ship to all (per-shard snapshots for a sharded
            # dataset, the one global snapshot otherwise).
            session.dataset.warm_index(True)
        payload = _dataset_payload(
            session.dataset, include_packed=session.use_numpy
        )
        pdf_objects = (
            list(session._pdf_objects.values())
            if session.has_pdf_objects
            else None
        )
        # Workers inherit the parent session's switches verbatim: a
        # build_index=False session stays lazy worker-side too, and a
        # use_numpy worker adopts the shipped packed arrays instead of
        # paying a per-process bulk load.
        session_kwargs: Dict[str, Any] = {
            "use_numpy": session.use_numpy,
            "build_index": session.build_index,
        }
        if self.cache_size <= 0:
            session_kwargs["cache"] = None
        else:
            session_kwargs["cache_size"] = self.cache_size
        # The tracer itself stays out of session_kwargs (it is not
        # picklable); workers rebuild their own from this flag.  An
        # installed fault plan ships along so injected worker faults
        # (e.g. worker.chunk kills) fire inside real pool processes.
        injector = faults.active()
        return (
            payload,
            pdf_objects,
            session_kwargs,
            session.tracer is not None,
            injector.plan if injector is not None else None,
        )

    @staticmethod
    def _context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return multiprocessing.get_context()

    @staticmethod
    def _reject_mutating(specs: Sequence[QuerySpec]) -> None:
        """Mutating specs (dataset updates) may not fan out to workers.

        Workers hold private copies of the dataset, so a mutation applied
        there is silently lost — and its ordering relative to queries in
        other chunks would be undefined even if it were not.  This holds
        even on the single-worker serial fallback, so behavior does not
        depend on the worker count.
        """
        mutating = sorted({s.kind for s in specs if getattr(s, "mutates", False)})
        if mutating:
            raise ValueError(
                f"mutating spec kind(s) {mutating} cannot run under a "
                "ParallelExecutor; apply updates serially (SerialExecutor "
                "or Session.apply) between read-only batches"
            )

    def _completed_parts(
        self,
        chunks: List[List[Tuple[int, QuerySpec]]],
        initargs: Tuple[Any, ...],
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(chunk_index, worker part)`` in chunk order, surviving
        one pool crash.

        Chunks are submitted in order and awaited in order, so delivery
        matches the serial executor exactly.  When the pool breaks
        (a worker was SIGKILLed or died in its initializer), every chunk
        that already completed is salvaged from its future, the pool is
        respawned once with ``worker.chunk`` fault rules disarmed
        (``sticky`` rules survive, which is how the give-up path is
        tested), and only the incomplete chunks are resubmitted.  A
        second crash raises :class:`WorkerCrashError` — never a hang.
        """
        total = len(chunks)
        parts: Dict[int, Any] = {}
        pending = list(range(total))
        next_out = 0
        for attempt in range(2):
            executor = ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending)),
                mp_context=self._context(),
                initializer=_worker_init,
                initargs=initargs,
            )
            crashed = False
            try:
                futures = {
                    index: executor.submit(_worker_run, chunks[index])
                    for index in pending
                }
                for index in pending:
                    try:
                        parts[index] = futures[index].result()
                    except BrokenProcessPool:
                        crashed = True
                        break
                    while next_out in parts:
                        yield next_out, parts.pop(next_out)
                        next_out += 1
                if crashed:
                    # Chunks that finished before the crash are results
                    # we already hold — only the rest get resubmitted.
                    for index in pending:
                        future = futures[index]
                        if (
                            index not in parts
                            and future.done()
                            and not future.cancelled()
                            and future.exception() is None
                        ):
                            parts[index] = future.result()
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            pending = [
                index for index in range(next_out, total) if index not in parts
            ]
            if not pending:
                break
            if attempt == 1:
                raise WorkerCrashError(
                    f"worker pool crashed twice; {len(pending)} of {total} "
                    "chunk(s) unrecovered"
                )
            initargs = self._disarm_worker_kills(initargs)
            obs.registry().counter("fault.worker_respawns").inc()
        while next_out in parts:
            yield next_out, parts.pop(next_out)
            next_out += 1

    @staticmethod
    def _disarm_worker_kills(initargs: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The respawn initargs: same payload, kill rules removed.

        Without this a respawned worker would re-fire the very
        ``worker.chunk`` rule that killed its predecessor (hit counters
        are per process) and recovery could never converge.
        """
        plan = initargs[-1]
        if plan is None:
            return initargs
        return initargs[:-1] + (plan.drop("worker.chunk"),)

    def map(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> List["QueryOutcome"]:
        specs = list(specs)
        if not specs:
            return []
        self._precheck(session, specs)
        self._reject_mutating(specs)
        if self.workers == 1 or len(specs) == 1:
            serial = SerialExecutor()
            try:
                return serial.map(session, specs)
            finally:
                self.last_cache_stats = serial.last_cache_stats
                self.last_metrics = serial.last_metrics

        chunks = self._chunks(list(enumerate(specs)))
        self.last_cache_stats = CacheStats()
        batch_metrics = obs.MetricsRegistry()
        depth = obs.registry().gauge("batch.queue_depth")
        depth.set(len(chunks))
        outcomes: List[Tuple[int, "QueryOutcome"]] = []
        try:
            for _chunk_index, (part, delta, metrics_delta, spans) in (
                self._completed_parts(chunks, self._initargs(session))
            ):
                outcomes.extend(part)
                self._merge_stats(delta)
                self._merge_obs(session, batch_metrics, metrics_delta, spans)
        finally:
            depth.set(0)
        self.last_metrics = batch_metrics.snapshot()
        outcomes.sort(key=lambda pair: pair[0])
        return [outcome for _index, outcome in outcomes]

    def _merge_stats(self, delta: CacheStats) -> None:
        merged = self.last_cache_stats
        merged.hits += delta.hits
        merged.misses += delta.misses
        merged.evictions += delta.evictions

    @staticmethod
    def _merge_obs(
        session: "Session",
        batch_metrics: "obs.MetricsRegistry",
        metrics_delta: Dict[str, Any],
        spans: List[Dict[str, Any]],
    ) -> None:
        """Fold one chunk's worker-side observability back into the parent.

        Metrics deltas land both in the process-global registry (so a
        parallel batch reads like a serial one there) and in the
        per-batch scratch registry behind ``last_metrics``; worker span
        trees are re-hydrated into the parent session's tracer, which
        re-exports them through whatever sink it was built with.
        """
        obs.registry().merge(metrics_delta)
        batch_metrics.merge(metrics_delta)
        if spans and session.tracer is not None:
            session.tracer.ingest(spans)

    def stream(
        self, session: "Session", specs: Sequence[QuerySpec]
    ) -> Iterator["QueryOutcome"]:
        """Incremental fan-out: outcomes arrive chunk by chunk, in order.

        The same ordered-chunk submission :meth:`map` uses (including
        its crash recovery) keeps delivery order identical to the serial
        executor while a consumer (the NDJSON streamer) sees results as
        each chunk finishes instead of waiting for the whole batch.
        """
        specs = list(specs)
        if not specs:
            return
        self._precheck(session, specs)
        self._reject_mutating(specs)
        if self.workers == 1 or len(specs) == 1:
            serial = SerialExecutor()
            try:
                yield from serial.stream(session, specs)
            finally:
                self.last_cache_stats = serial.last_cache_stats
                self.last_metrics = serial.last_metrics
            return

        chunks = self._chunks(list(enumerate(specs)))
        self.last_cache_stats = CacheStats()
        batch_metrics = obs.MetricsRegistry()
        self.last_metrics = batch_metrics.snapshot()
        depth = obs.registry().gauge("batch.queue_depth")
        depth.set(len(chunks))
        remaining = len(chunks)
        try:
            for _chunk_index, (part, delta, metrics_delta, spans) in (
                self._completed_parts(chunks, self._initargs(session))
            ):
                remaining -= 1
                depth.set(remaining)
                self._merge_stats(delta)
                self._merge_obs(session, batch_metrics, metrics_delta, spans)
                self.last_metrics = batch_metrics.snapshot()
                for _index, outcome in part:
                    yield outcome
        finally:
            depth.set(0)


# ---------------------------------------------------------------------------
# shard scatter: process fan-out for the *filter phase* of one query
# ---------------------------------------------------------------------------
_SHARD_PACKED: Optional[List[Any]] = None


def _shard_worker_init(packed_list: List[Any]) -> None:
    # Each packed snapshot unpickles with a private AccessStats
    # (PackedRTree.__getstate__ drops the shared counter), so per-task
    # access deltas below are exact, not interleaved.
    global _SHARD_PACKED
    _SHARD_PACKED = packed_list


def _shard_filter_run(
    task: Tuple[int, str, Any]
) -> Tuple[Any, Tuple[int, int, int]]:
    """Run one shard's batched filter call; returns (result, access delta)."""
    assert _SHARD_PACKED is not None, "shard worker initialized without arrays"
    shard, kind, arg = task
    index = _SHARD_PACKED[shard]
    before = index.stats.snapshot()
    if kind == "many":
        result = index.range_search_many(arg)
    elif kind == "grouped":
        result = index.range_search_any_grouped(arg)
    else:  # pragma: no cover - ShardedIndex only emits the two kinds
        raise ValueError(f"unknown shard filter task kind {kind!r}")
    delta = index.stats.snapshot() - before
    return result, (delta.queries, delta.node_accesses, delta.leaf_accesses)


class ShardScatter:
    """A process pool answering per-shard batched filter calls.

    Complements :class:`ParallelExecutor`, which parallelizes *across
    queries*: a scatter pool parallelizes the filter phase *within* one
    query by fanning the per-shard ``range_search_many`` /
    ``range_search_any_grouped`` calls of a
    :class:`~repro.index.sharded.ShardedIndex` out to workers holding the
    frozen per-shard packed arrays (shipped once at :meth:`start`, the
    same zero-rebuild handoff the batch executor uses).

    Freshness is checked by array identity: any dataset mutation
    invalidates the shards' packed snapshots, the identity check fails,
    and filters silently fall back to in-process execution — a stale pool
    can never serve results for old data.  Batches below ``min_windows``
    also stay in-process (IPC would dominate).  Use as a context manager::

        with ShardScatter(dataset).start():
            ...  # queries on `dataset` scatter their filter phases
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        workers: Optional[int] = None,
        min_windows: int = 32,
    ):
        if dataset.layout_digest() is None:
            raise ValueError("ShardScatter needs a sharded dataset")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.dataset = dataset
        self.workers = workers or os.cpu_count() or 1
        self.min_windows = min_windows
        self._pool = None
        self._shipped: List[Any] = []

    # ------------------------------------------------------------------
    def start(self) -> "ShardScatter":
        """Freeze shard snapshots, fork the pool, attach to the dataset."""
        if self._pool is not None:
            return self
        self.dataset.warm_index(True)
        shards = self.dataset.shards()
        self._shipped = [shard._packed for shard in shards]
        self._pool = ParallelExecutor._context().Pool(
            processes=min(self.workers, len(shards)),
            initializer=_shard_worker_init,
            initargs=(self._shipped,),
        )
        self.dataset.attach_scatter(self)
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._shipped = []
        if getattr(self.dataset, "_scatter", None) is self:
            self.dataset.attach_scatter(None)

    def __enter__(self) -> "ShardScatter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def fresh_for(self, dataset: UncertainDataset) -> bool:
        """True iff the workers hold *dataset*'s current shard arrays."""
        if self._pool is None:
            return False
        shards = dataset.shards()
        if len(shards) != len(self._shipped):
            return False
        return all(
            shard._packed is snapshot
            for shard, snapshot in zip(shards, self._shipped)
        )

    def accepts(self, tasks: List[Tuple[int, str, Any]]) -> bool:
        """True iff *tasks* is worth shipping to the pool."""
        if self._pool is None:
            return False
        windows = 0
        for _shard, kind, arg in tasks:
            if kind == "many":
                windows += len(arg)
            else:
                windows += sum(len(group) for group in arg)
        return windows >= self.min_windows

    def dispatch(
        self, tasks: List[Tuple[int, str, Any]]
    ) -> List[Tuple[Any, Tuple[int, int, int]]]:
        """Run *tasks* on the pool; one (result, access-delta) per task."""
        assert self._pool is not None, "ShardScatter used before start()"
        return self._pool.map(_shard_filter_run, tasks)

    def __repr__(self) -> str:
        state = "started" if self._pool is not None else "idle"
        return (
            f"<ShardScatter {state} workers={self.workers} "
            f"shards={len(self._shipped) or self.dataset.shard_count}>"
        )
