"""NumPy-vectorized dominance and candidate-pruning kernels.

Every kernel has two implementations selected by ``use_numpy``:

* a broadcast NumPy path that evaluates whole point matrices at once
  (chunked over centers to bound the ``(chunk, n, d)`` scratch memory);
* a pure-Python fallback that loops over the scalar predicates from
  :mod:`repro.geometry.dominance`.

Both paths perform the same float64 subtractions, ``abs`` and comparisons
element by element, so their outputs are **bit-compatible** — the parity is
property-tested, and the engine may pick either path per session without
changing any result.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.dominance import dominance_vector, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect

#: Default kernel selection for sessions that don't specify one.
DEFAULT_USE_NUMPY = True

# Centers per broadcast chunk: bounds the (chunk, n, d) scratch array to a
# few MB for the cardinalities the benchmarks sweep.
_CENTER_CHUNK = 128

# Windows per broadcast chunk for points_in_any_window: bounds the
# (n, chunk, d) containment scratch the same way.
_WINDOW_CHUNK = 128

# float64 elements per Eq. (3) broadcast chunk (~16 MB of scratch): the
# (S_center, chunk, S_max, d) distance tensor is sliced over the relevant
# objects so one center with many samples cannot blow up memory.
_EQ3_SCRATCH_ELEMENTS = 1 << 21

# Possible worlds per Monte-Carlo broadcast chunk: bounds the (n, chunk, d)
# instantiation-distance scratch.
_WORLD_CHUNK = 256


def resolve_use_numpy(use_numpy: Optional[bool]) -> bool:
    """Apply the session default when a caller leaves the switch unset."""
    return DEFAULT_USE_NUMPY if use_numpy is None else use_numpy


_resolve = resolve_use_numpy


def _dominance_block(dp: np.ndarray, dq: np.ndarray) -> np.ndarray:
    """Dynamic-dominance predicate on pre-computed |·-center| distances.

    The single source of the broadcast comparison every tensor kernel
    shares — keeping it in one place is what keeps their bit-parity
    contracts in lockstep.  Reduces over the last (dimension) axis.
    """
    return np.logical_and((dp <= dq).all(axis=-1), (dp < dq).any(axis=-1))


# ---------------------------------------------------------------------------
# order-stable reductions (shared by the scalar and tensor probability paths)
# ---------------------------------------------------------------------------
def masked_ordered_sum(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Left-to-right sum of ``values`` where ``mask``, along the last axis.

    Unlike ``np.sum`` (whose pairwise grouping depends on the axis length,
    so a zero-padded array need not sum to the same bits as its unpadded
    prefix), this accumulates strictly in index order.  Masked-out and
    padded slots contribute an exact ``+0.0`` — a floating-point no-op for
    the non-negative probabilities summed here — so the scalar path (over
    ``l`` real samples) and the tensor path (over ``S_max`` padded slots)
    produce **bit-identical** Eq. (3) entries.
    """
    values = np.asarray(values, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if values.ndim == 1 and mask.ndim == 1:
        # Scalar-path fast lane: plain float accumulation, skipping the
        # masked-out exact-zero terms (a bit-exact no-op), instead of one
        # 0-d ufunc round-trip per element.
        acc = 0.0
        for v, m in zip(values.tolist(), mask.tolist()):
            if m:
                acc += v
        return np.float64(acc)
    shape = np.broadcast_shapes(values.shape, mask.shape)
    acc = np.zeros(shape[:-1], dtype=np.float64)
    for k in range(shape[-1]):
        acc = acc + np.where(mask[..., k], values[..., k], 0.0)
    return acc


def ordered_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Left-to-right ``sum_i a[i] * b[i]`` (the Eq. (2) final reduction).

    BLAS ``np.dot`` blocks and reorders; both probability paths use this
    sequential form instead so their final bits agree.
    """
    acc = 0.0
    for x, y in zip(np.asarray(a, dtype=np.float64).tolist(),
                    np.asarray(b, dtype=np.float64).tolist()):
        acc += x * y
    return float(acc)


def dominance_mask(
    points: np.ndarray,
    target: PointLike,
    center: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean vector: row ``k`` iff ``points[k] ≺_center target``."""
    points = np.asarray(points, dtype=np.float64)
    t = as_point(target)
    c = as_point(center)
    if _resolve(use_numpy):
        return dominance_vector(points, t, c)
    return np.array(
        [dynamically_dominates(points[k], t, c) for k in range(points.shape[0])],
        dtype=bool,
    )


def dominator_counts(
    points: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """For every point ``p_i``: how many other points dominate ``q`` w.r.t. ``p_i``.

    Count 0 means ``p_i`` is in the reverse skyline of ``q``; count < k
    means membership in the reverse k-skyband.
    """
    points = np.asarray(points, dtype=np.float64)
    qq = as_point(q, dims=points.shape[1])
    n = points.shape[0]
    if not _resolve(use_numpy):
        counts = np.zeros(n, dtype=np.int64)
        for i in range(n):
            center = points[i]
            for j in range(n):
                if j != i and dynamically_dominates(points[j], qq, center):
                    counts[i] += 1
        return counts

    counts = np.empty(n, dtype=np.int64)
    for start in range(0, n, _CENTER_CHUNK):
        centers = points[start : start + _CENTER_CHUNK]
        # (c, n, d) distances of every point / of q to each center.
        dp = np.abs(points[np.newaxis, :, :] - centers[:, np.newaxis, :])
        dq = np.abs(qq[np.newaxis, np.newaxis, :] - centers[:, np.newaxis, :])
        mask = _dominance_block(dp, dq)
        # A point never dominates w.r.t. itself (distance 0 vs 0 per dim is
        # never strict), but zero the diagonal explicitly for clarity.
        rows = np.arange(centers.shape[0])
        mask[rows, start + rows] = False
        counts[start : start + centers.shape[0]] = mask.sum(axis=1)
    return counts


def reverse_skyline_mask(
    points: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean reverse-skyline membership per point (no dominators of ``q``)."""
    return dominator_counts(points, q, use_numpy=use_numpy) == 0


def k_skyband_mask(
    points: np.ndarray,
    q: PointLike,
    k: int,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean reverse k-skyband membership (fewer than ``k`` dominators)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return dominator_counts(points, q, use_numpy=use_numpy) < k


def points_in_any_window(
    points: np.ndarray,
    windows: Sequence[Rect],
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Candidate-pruning mask: rows of *points* inside at least one window.

    This is the vectorized Lemma-2 filter: stacking the window bounds turns
    per-point containment into two broadcast comparisons.
    """
    points = np.asarray(points, dtype=np.float64)
    if not windows:
        return np.zeros(points.shape[0], dtype=bool)
    if _resolve(use_numpy):
        los = np.stack([w.lo for w in windows])  # (m, d)
        his = np.stack([w.hi for w in windows])
        # Chunk over windows: a center with many samples produces many
        # windows, and the unchunked (n, m, d) broadcast would scale its
        # scratch with the product.  OR-accumulation over chunks is exact.
        hit = np.zeros(points.shape[0], dtype=bool)
        for start in range(0, los.shape[0], _WINDOW_CHUNK):
            lo = los[start : start + _WINDOW_CHUNK]
            hi = his[start : start + _WINDOW_CHUNK]
            inside = np.logical_and(
                (points[:, np.newaxis, :] >= lo[np.newaxis, :, :]).all(axis=2),
                (points[:, np.newaxis, :] <= hi[np.newaxis, :, :]).all(axis=2),
            )
            hit |= inside.any(axis=1)
        return hit
    return np.array(
        [
            any(w.contains_point(points[i]) for w in windows)
            for i in range(points.shape[0])
        ],
        dtype=bool,
    )


# ---------------------------------------------------------------------------
# exact-PRSQ probability kernels (tensorized Eqs. (2) and (3))
# ---------------------------------------------------------------------------
def eq3_dominance_tensor(
    center_samples: np.ndarray,
    other_samples: np.ndarray,
    other_probabilities: np.ndarray,
    other_mask: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Eq. (3) matrix: ``out[r, i] = Pr{other_r ≺_{center_i} q}``.

    Parameters
    ----------
    center_samples:
        ``(C, d)`` samples of the center object (unpadded).
    other_samples, other_probabilities, other_mask:
        ``(R, S, d)`` / ``(R, S)`` padded rows from a
        :class:`~repro.uncertain.tensor.DatasetTensor` gather.
    use_numpy:
        Broadcast path (chunked over ``R`` so the ``(C, chunk, S, d)``
        scratch stays bounded) vs. the scalar per-sample fallback.  Both
        run the same float comparisons and the same left-to-right masked
        sums, so their outputs are bit-identical.
    """
    center_samples = np.asarray(center_samples, dtype=np.float64)
    other_samples = np.asarray(other_samples, dtype=np.float64)
    other_probabilities = np.asarray(other_probabilities, dtype=np.float64)
    other_mask = np.asarray(other_mask, dtype=bool)
    c = center_samples.shape[0]
    r, s, d = other_samples.shape
    qq = as_point(q, dims=center_samples.shape[1])

    if not _resolve(use_numpy):
        out = np.zeros((r, c), dtype=np.float64)
        for j in range(r):
            valid = other_mask[j]
            samples = other_samples[j][valid]
            probs = other_probabilities[j][valid]
            for i in range(c):
                if samples.shape[0] == 0:
                    continue
                dominating = dominance_vector(samples, qq, center_samples[i])
                out[j, i] = masked_ordered_sum(probs, dominating)
        return out

    out = np.empty((r, c), dtype=np.float64)
    chunk = max(1, _EQ3_SCRATCH_ELEMENTS // max(1, c * s * d))
    for start in range(0, r, chunk):
        sl = slice(start, min(start + chunk, r))
        block = other_samples[sl]  # (b, S, d)
        # (C, b, S, d) distances of every sample / of q to each center sample.
        dp = np.abs(block[np.newaxis, :, :, :] - center_samples[:, np.newaxis, np.newaxis, :])
        dq = np.abs(qq - center_samples)[:, np.newaxis, np.newaxis, :]
        dominating = _dominance_block(dp, dq)
        dominating &= other_mask[sl][np.newaxis, :, :]
        probs = np.broadcast_to(
            other_probabilities[sl][np.newaxis, :, :], dominating.shape
        )
        out[sl] = masked_ordered_sum(probs, dominating).T
    return out


def eq2_probability(
    center_probabilities: np.ndarray,
    eq3: np.ndarray,
    rows: Optional[Sequence[int]] = None,
) -> float:
    """Batched Eq. (2): ``sum_i p_i * prod_r (1 - eq3[r, i])``.

    The survival product runs row by row in the given order (``rows``
    restricts and orders it — the ``P − Γ`` evaluations), matching the
    scalar :func:`repro.prsq.probability.probability_from_matrix` loop
    factor for factor.  All-zero rows are skipped: they multiply by an
    exact ``1.0``, a floating-point no-op (Lemma 1's irrelevance argument
    in bit-exact form).
    """
    center_probabilities = np.asarray(center_probabilities, dtype=np.float64)
    eq3 = np.asarray(eq3, dtype=np.float64)
    survival = np.ones(center_probabilities.shape[0], dtype=np.float64)
    order = range(eq3.shape[0]) if rows is None else rows
    for j in order:
        row = eq3[j]
        if row.any():
            survival = survival * (1.0 - row)
    return ordered_dot(center_probabilities, survival)


def influence_mask(
    center_samples: np.ndarray,
    other_samples: np.ndarray,
    other_mask: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Lemma-1 filter: can object ``r`` dominate ``q`` w.r.t. *any* center sample?

    ``out[r]`` is ``True`` iff some valid sample of ``other_r`` dynamically
    dominates ``q`` w.r.t. some row of *center_samples* — i.e. the object's
    Eq. (3) vector is non-zero.  Boolean-exact on both paths.
    """
    center_samples = np.asarray(center_samples, dtype=np.float64)
    other_samples = np.asarray(other_samples, dtype=np.float64)
    other_mask = np.asarray(other_mask, dtype=bool)
    c = center_samples.shape[0]
    r, s, d = other_samples.shape
    qq = as_point(q, dims=center_samples.shape[1])

    if not _resolve(use_numpy):
        out = np.zeros(r, dtype=bool)
        for j in range(r):
            samples = other_samples[j][other_mask[j]]
            if samples.shape[0] == 0:
                continue
            out[j] = any(
                dominance_vector(samples, qq, center_samples[i]).any()
                for i in range(c)
            )
        return out

    out = np.zeros(r, dtype=bool)
    chunk = max(1, _EQ3_SCRATCH_ELEMENTS // max(1, c * s * d))
    for start in range(0, r, chunk):
        sl = slice(start, min(start + chunk, r))
        block = other_samples[sl]
        dp = np.abs(block[np.newaxis, :, :, :] - center_samples[:, np.newaxis, np.newaxis, :])
        dq = np.abs(qq - center_samples)[:, np.newaxis, np.newaxis, :]
        dominating = _dominance_block(dp, dq)
        dominating &= other_mask[sl][np.newaxis, :, :]
        out[sl] = dominating.any(axis=(0, 2))
    return out


def undominated_world_mask(
    instantiated: np.ndarray,
    centers: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Monte-Carlo world kernel: worlds where no instantiation dominates ``q``.

    Parameters
    ----------
    instantiated:
        ``(R, W, d)`` — object ``r``'s drawn location in world ``w``.
    centers:
        ``(W, d)`` — the center object's drawn location per world.

    Returns the ``(W,)`` boolean vector of *hit* worlds (the center's
    instantiation is a reverse skyline point).  Chunked over worlds;
    boolean-exact on both paths.
    """
    instantiated = np.asarray(instantiated, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    n, worlds, _ = instantiated.shape
    qq = as_point(q, dims=centers.shape[1])

    if not _resolve(use_numpy):
        hits = np.zeros(worlds, dtype=bool)
        for w in range(worlds):
            hits[w] = not dominance_vector(
                instantiated[:, w, :], qq, centers[w]
            ).any()
        return hits

    hits = np.empty(worlds, dtype=bool)
    for start in range(0, worlds, _WORLD_CHUNK):
        sl = slice(start, min(start + _WORLD_CHUNK, worlds))
        block_centers = centers[sl]  # (w, d)
        dp = np.abs(instantiated[:, sl, :] - block_centers[np.newaxis, :, :])
        dq = np.abs(qq - block_centers)[np.newaxis, :, :]
        hits[sl] = ~_dominance_block(dp, dq).any(axis=0)
    return hits
