"""NumPy-vectorized dominance and candidate-pruning kernels.

Every kernel has two implementations selected by ``use_numpy``:

* a broadcast NumPy path that evaluates whole point matrices at once
  (chunked over centers to bound the ``(chunk, n, d)`` scratch memory);
* a pure-Python fallback that loops over the scalar predicates from
  :mod:`repro.geometry.dominance`.

Both paths perform the same float64 subtractions, ``abs`` and comparisons
element by element, so their outputs are **bit-compatible** — the parity is
property-tested, and the engine may pick either path per session without
changing any result.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.dominance import dominance_vector, dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.geometry.rectangle import Rect

#: Default kernel selection for sessions that don't specify one.
DEFAULT_USE_NUMPY = True

# Centers per broadcast chunk: bounds the (chunk, n, d) scratch array to a
# few MB for the cardinalities the benchmarks sweep.
_CENTER_CHUNK = 128


def _resolve(use_numpy: Optional[bool]) -> bool:
    return DEFAULT_USE_NUMPY if use_numpy is None else use_numpy


def dominance_mask(
    points: np.ndarray,
    target: PointLike,
    center: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean vector: row ``k`` iff ``points[k] ≺_center target``."""
    points = np.asarray(points, dtype=np.float64)
    t = as_point(target)
    c = as_point(center)
    if _resolve(use_numpy):
        return dominance_vector(points, t, c)
    return np.array(
        [dynamically_dominates(points[k], t, c) for k in range(points.shape[0])],
        dtype=bool,
    )


def dominator_counts(
    points: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """For every point ``p_i``: how many other points dominate ``q`` w.r.t. ``p_i``.

    Count 0 means ``p_i`` is in the reverse skyline of ``q``; count < k
    means membership in the reverse k-skyband.
    """
    points = np.asarray(points, dtype=np.float64)
    qq = as_point(q, dims=points.shape[1])
    n = points.shape[0]
    if not _resolve(use_numpy):
        counts = np.zeros(n, dtype=np.int64)
        for i in range(n):
            center = points[i]
            for j in range(n):
                if j != i and dynamically_dominates(points[j], qq, center):
                    counts[i] += 1
        return counts

    counts = np.empty(n, dtype=np.int64)
    for start in range(0, n, _CENTER_CHUNK):
        centers = points[start : start + _CENTER_CHUNK]
        # (c, n, d) distances of every point / of q to each center.
        dp = np.abs(points[np.newaxis, :, :] - centers[:, np.newaxis, :])
        dq = np.abs(qq[np.newaxis, np.newaxis, :] - centers[:, np.newaxis, :])
        mask = np.logical_and((dp <= dq).all(axis=2), (dp < dq).any(axis=2))
        # A point never dominates w.r.t. itself (distance 0 vs 0 per dim is
        # never strict), but zero the diagonal explicitly for clarity.
        rows = np.arange(centers.shape[0])
        mask[rows, start + rows] = False
        counts[start : start + centers.shape[0]] = mask.sum(axis=1)
    return counts


def reverse_skyline_mask(
    points: np.ndarray,
    q: PointLike,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean reverse-skyline membership per point (no dominators of ``q``)."""
    return dominator_counts(points, q, use_numpy=use_numpy) == 0


def k_skyband_mask(
    points: np.ndarray,
    q: PointLike,
    k: int,
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Boolean reverse k-skyband membership (fewer than ``k`` dominators)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return dominator_counts(points, q, use_numpy=use_numpy) < k


def points_in_any_window(
    points: np.ndarray,
    windows: Sequence[Rect],
    use_numpy: Optional[bool] = None,
) -> np.ndarray:
    """Candidate-pruning mask: rows of *points* inside at least one window.

    This is the vectorized Lemma-2 filter: stacking the window bounds turns
    per-point containment into two broadcast comparisons.
    """
    points = np.asarray(points, dtype=np.float64)
    if not windows:
        return np.zeros(points.shape[0], dtype=bool)
    if _resolve(use_numpy):
        los = np.stack([w.lo for w in windows])  # (m, d)
        his = np.stack([w.hi for w in windows])
        inside = np.logical_and(
            (points[:, np.newaxis, :] >= los[np.newaxis, :, :]).all(axis=2),
            (points[:, np.newaxis, :] <= his[np.newaxis, :, :]).all(axis=2),
        )
        return inside.any(axis=1)
    return np.array(
        [
            any(w.contains_point(points[i]) for w in windows)
            for i in range(points.shape[0])
        ],
        dtype=bool,
    )
