"""Query planning: compile a :class:`~repro.engine.spec.QuerySpec` into an
executable plan against a :class:`~repro.engine.session.Session`.

A plan is a small value object: the ordered step names (for explain/debug
output) plus a runner closure.  Planning is where the engine picks between
equivalent physical implementations — e.g. the broadcast NumPy kernel vs.
the R-tree + scalar path for reverse skylines — guided by the session's
``use_numpy`` switch.  All alternatives produce identical results (parity
is property-tested), so the choice is purely physical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Tuple

from repro.core.cp import compute_causality
from repro.core.cr import compute_causality_certain
from repro.engine import kernels
from repro.obs import span as _span
from repro.engine.spec import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    PdfCausalitySpec,
    PRSQSpec,
    QuerySpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    UpdateSpec,
)
from repro.rtopk.query import WeightSet, reverse_top_k
from repro.skyline.reverse import reverse_skyline
from repro.skyline.skyband import compute_causality_k_skyband, reverse_k_skyband

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import Session

# Above this cardinality the O(n^2) broadcast kernel loses to the per-object
# pruned R-tree window queries, so the planner falls back to the index path.
VECTORIZED_MAX_N = 4096


def _vectorize(session: "Session") -> bool:
    # Sharded sessions always take the index path: the dense broadcast
    # kernel is O(n x n) against the full points matrix, exactly the
    # single-dataset assumption sharding removes — and the per-shard
    # window filter is what the scatter-gather machinery accelerates.
    return (
        session.use_numpy
        and len(session.dataset) <= VECTORIZED_MAX_N
        and session.shard_count == 1
    )


def _filter_kernel(session: "Session") -> str:
    """The filter-phase kernel label for trace spans."""
    base = "packed-windows" if session.use_numpy else "rtree-windows"
    k = session.shard_count
    return f"sharded-{base}[k={k}]" if k > 1 else base


@dataclass(frozen=True)
class QueryPlan:
    """A compiled query: declarative steps plus an executable runner."""

    spec: QuerySpec
    steps: Tuple[str, ...]
    runner: Callable[["Session"], Any]

    def execute(self, session: "Session") -> Any:
        return self.runner(session)

    def explain(self) -> str:
        lines = [f"plan for {self.spec.describe()}:"]
        lines += [f"  {i + 1}. {step}" for i, step in enumerate(self.steps)]
        return "\n".join(lines)


def plan_prsq(spec: PRSQSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        probabilities = session.prsq_probabilities(spec.q)
        with _span("refine", alpha=spec.alpha, want=spec.want):
            if spec.want == "probabilities":
                return dict(probabilities)
            if spec.want == "answers":
                return [
                    oid for oid, pr in probabilities.items()
                    if pr >= spec.alpha
                ]
            return [oid for oid, pr in probabilities.items() if pr < spec.alpha]

    return QueryPlan(
        spec=spec,
        steps=("prsq-probabilities (cached per query point; "
               "tensorized eq2/eq3 kernels | scalar fallback)",
               f"threshold-filter alpha={spec.alpha} want={spec.want}"),
        runner=run,
    )


def plan_causality(spec: CausalitySpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        return compute_causality(
            session.dataset, spec.an, spec.q, spec.alpha, config=spec.config,
            use_numpy=session.use_numpy,
        )

    return QueryPlan(
        spec=spec,
        steps=("lemma2-rtree-filter", "oracle-build", "cp-refinement"),
        runner=run,
    )


def plan_pdf_causality(spec: PdfCausalitySpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        pdf_object = session.pdf_object(spec.an)
        with _span("pdf-windows") as sp:
            windows = pdf_object.filter_rectangles(spec.q)
            sp.set(windows=len(windows))
        return compute_causality(
            session.dataset,
            spec.an,
            spec.q,
            spec.alpha,
            config=spec.config,
            windows=windows,
            use_numpy=session.use_numpy,
        )

    return QueryPlan(
        spec=spec,
        steps=("pdf-region-windows", "lemma2-rtree-filter",
               "oracle-build (shared discretization)", "cp-refinement"),
        runner=run,
    )


def plan_causality_certain(spec: CausalityCertainSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        return compute_causality_certain(
            session.dataset, spec.an, spec.q, use_numpy=session.use_numpy
        )

    return QueryPlan(
        spec=spec,
        steps=("dominance-window-rtree-query", "lemma7-share-responsibility"),
        runner=run,
    )


def plan_k_skyband_causality(spec: KSkybandCausalitySpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        return compute_causality_k_skyband(
            session.dataset, spec.an, spec.q, spec.k,
            use_numpy=session.use_numpy,
        )

    return QueryPlan(
        spec=spec,
        steps=("dominance-window-rtree-query",
               f"k-skyband-responsibility k={spec.k}"),
        runner=run,
    )


def plan_reverse_skyline(spec: ReverseSkylineSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        if _vectorize(session):
            with _span("filter", kernel="broadcast"):
                mask = kernels.reverse_skyline_mask(
                    session.dataset.points, spec.q, use_numpy=True
                )
            with _span("refine") as sp:
                ids = session.dataset.ids()
                result = [ids[i] for i in range(len(ids)) if mask[i]]
                sp.set(answers=len(result))
            return result
        with _span("filter", kernel=_filter_kernel(session)):
            return reverse_skyline(
                session.dataset, spec.q, use_numpy=session.use_numpy
            )

    return QueryPlan(
        spec=spec,
        steps=("vectorized-dominator-counts | "
               "packed-batched-windows | rtree-window-per-object",),
        runner=run,
    )


def plan_reverse_k_skyband(spec: ReverseKSkybandSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        if _vectorize(session):
            with _span("filter", kernel="broadcast", k=spec.k):
                mask = kernels.k_skyband_mask(
                    session.dataset.points, spec.q, spec.k, use_numpy=True
                )
            with _span("refine") as sp:
                ids = session.dataset.ids()
                result = [ids[i] for i in range(len(ids)) if mask[i]]
                sp.set(answers=len(result))
            return result
        with _span("filter", kernel=_filter_kernel(session), k=spec.k):
            return reverse_k_skyband(
                session.dataset, spec.q, spec.k, use_numpy=session.use_numpy
            )

    return QueryPlan(
        spec=spec,
        steps=(f"vectorized-k-skyband-counts k={spec.k} | "
               "packed-batched-windows | rtree-window-per-object",),
        runner=run,
    )


def plan_reverse_top_k(spec: ReverseTopKSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        users = WeightSet(
            [list(w) for w in spec.weights],
            ids=list(spec.user_ids) if spec.user_ids is not None else None,
        )
        with _span("refine", users=len(spec.weights), k=spec.k):
            return reverse_top_k(session.dataset, users, spec.q, spec.k)

    return QueryPlan(
        spec=spec,
        steps=("linear-score-ranking", f"top-{spec.k}-membership"),
        runner=run,
    )


def plan_update(spec: UpdateSpec) -> QueryPlan:
    def run(session: "Session") -> Any:
        with _span(
            "apply-delta",
            deletes=len(spec.deletes),
            updates=len(spec.updates),
            inserts=len(spec.inserts),
        ):
            return session.apply(spec.to_delta())

    return QueryPlan(
        spec=spec,
        steps=(
            f"apply-delta -{len(spec.deletes)} ~{len(spec.updates)} "
            f"+{len(spec.inserts)} (incremental rtree/tensor/digest patch)",
            "bump-version-refresh-fingerprint",
        ),
        runner=run,
    )


def compile_plan(spec: QuerySpec) -> QueryPlan:
    """Compile *spec* into an executable :class:`QueryPlan`.

    Dispatch goes through :data:`repro.api.registry.REGISTRY` — the
    planners above are bound to their spec classes by
    :mod:`repro.api.families`, and a query family registered at runtime
    plans here with zero engine edits.  Raises :class:`TypeError` for an
    unregistered spec type (an unregistered *kind* string raises
    :class:`~repro.exceptions.UnknownQueryKindError` at parse time
    instead).
    """
    from repro.api.registry import REGISTRY

    return REGISTRY.family_for_spec(spec).planner(spec)
