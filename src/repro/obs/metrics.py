"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the always-on half of ``repro.obs`` (spans are opt-in):
cache hits/misses, R-tree node accesses, per-family query latency and
batch queue depth accumulate in one process-global
:class:`MetricsRegistry`, snapshotable as a plain JSON-safe dict.

Worker processes cannot share the parent's registry, so the executors use
the same delta-merge protocol as :class:`~repro.engine.cache.CacheStats`:
snapshot before a chunk, :meth:`MetricsRegistry.diff` after it, pickle the
delta back, and :meth:`MetricsRegistry.merge` it into the parent — so a
parallel batch reads exactly like a serial one in the parent snapshot.

Everything here is stdlib-only and cheap: one counter increment is a dict
lookup plus an integer add, histograms use a linear scan over a handful of
fixed buckets.  Mutation is effectively atomic under the GIL for our
increment granularity; structural changes (metric creation) take a lock.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_counts",
    "quantile_from_snapshot",
    "registry",
]

#: Query latencies in this repo span ~0.1 ms cache hits to multi-second
#: cold CP refinements; log-spaced seconds-denominated buckets cover both.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.value}>"


class Gauge:
    """A last-write-wins float (queue depths, fleet sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.value}>"


class Histogram:
    """Fixed-bucket histogram with sum/count (Prometheus-style).

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything beyond the last bound.  Buckets are fixed at
    creation so worker deltas merge by plain element-wise addition.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated value at quantile *q* by bucket interpolation.

        Prometheus-style: find the bucket holding the ``q``-th ranked
        observation and interpolate linearly inside it; the overflow
        bucket clamps to the last finite bound (the estimate cannot
        exceed what the buckets can resolve).  ``None`` with no data.
        """
        return quantile_from_counts(self.buckets, self.counts, self.count, q)

    def __repr__(self) -> str:
        return f"<Histogram count={self.count} sum={self.sum:.6f}>"


def quantile_from_counts(
    buckets: Sequence[float],
    counts: Sequence[int],
    total: int,
    q: float,
) -> Optional[float]:
    """Shared quantile estimator over ``(buckets, counts)`` pairs.

    Works on a live :class:`Histogram` or on the plain dict a
    :meth:`MetricsRegistry.snapshot` carries (the serve layer's ``stats``
    op reports p50/p99 from snapshots without touching live objects).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(buckets, counts):
        cumulative += count
        if cumulative >= rank:
            if count == 0:  # rank == cumulative boundary of an empty bucket
                return bound
            fraction = (rank - (cumulative - count)) / count
            return lower + (bound - lower) * max(0.0, min(1.0, fraction))
        lower = bound
    return float(buckets[-1])  # overflow bucket: clamp to the last bound


def quantile_from_snapshot(
    histogram_snapshot: Dict[str, Any], q: float
) -> Optional[float]:
    """Quantile estimate for one histogram entry of a registry snapshot."""
    return quantile_from_counts(
        histogram_snapshot["buckets"],
        histogram_snapshot["counts"],
        histogram_snapshot["count"],
        q,
    )


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot, diff and merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ----------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(
                    name, Histogram(buckets or DEFAULT_LATENCY_BUCKETS_S)
                )

    # -- snapshot / diff / merge ----------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The registry contents as one plain, JSON-safe dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def diff(
        before: Dict[str, Any], after: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The delta snapshot ``after - before`` (the worker hand-back).

        Counters and histograms subtract element-wise (entries absent from
        *before* count from zero); unchanged entries are dropped so chunk
        deltas stay small.  Gauges are last-write-wins and pass through
        from *after*.
        """
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in after.get("counters", {}).items()
        }
        histograms = {}
        before_h = before.get("histograms", {})
        for name, h in after.get("histograms", {}).items():
            base = before_h.get(
                name,
                {"counts": [0] * len(h["counts"]), "sum": 0.0, "count": 0},
            )
            delta_count = h["count"] - base["count"]
            if delta_count == 0:
                continue
            histograms[name] = {
                "buckets": list(h["buckets"]),
                "counts": [
                    a - b for a, b in zip(h["counts"], base["counts"])
                ],
                "sum": h["sum"] - base["sum"],
                "count": delta_count,
            }
        return {
            "counters": {k: v for k, v in counters.items() if v},
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a delta snapshot into this registry (the parent-side half
        of the worker protocol; mirrors the ``CacheStats`` merge)."""
        for name, value in delta.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, h in delta.get("histograms", {}).items():
            target = self.histogram(name, buckets=h["buckets"])
            if list(target.buckets) != list(h["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge buckets "
                    f"{h['buckets']!r} into {list(target.buckets)!r}"
                )
            for i, count in enumerate(h["counts"]):
                target.counts[i] += count
            target.sum += h["sum"]
            target.count += h["count"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)}>"
        )


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry all instrumentation records into."""
    return _REGISTRY
