"""repro.obs — zero-dependency observability: tracing, metrics, profiling.

The paper's evaluation is two-dimensional (wall time and R-tree node
accesses); this package makes both observable *per phase* instead of per
query:

* :mod:`~repro.obs.trace` — nestable ``span("filter")`` / ``span("refine")``
  context managers building structured span trees (name, wall time,
  attributes such as candidate counts, node-access deltas, kernel choice,
  cache outcome) on a thread-local stack, exported as NDJSON; the
  disabled path is a shared no-op span, bounded at <3% overhead by
  ``benchmarks/bench_obs_overhead.py``;
* :mod:`~repro.obs.metrics` — a process-global registry of counters,
  gauges and fixed-bucket histograms, snapshotable as a plain dict and
  mergeable across worker processes via the same delta protocol as
  :class:`~repro.engine.cache.CacheStats`.

This package imports nothing from the rest of ``repro`` (every layer —
engine, kernels, index, cache, executors, CLI — imports *it*), so it can
be instrumented into any hot path without cycles.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
    quantile_from_snapshot,
    registry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    annotate,
    as_tracer,
    export_ndjson,
    phase_totals,
    span,
    span_to_line,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "annotate",
    "as_tracer",
    "export_ndjson",
    "phase_totals",
    "quantile_from_counts",
    "quantile_from_snapshot",
    "registry",
    "span",
    "span_to_line",
]
