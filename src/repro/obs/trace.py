"""Phase-level tracing: nestable spans, an ambient tracer, NDJSON export.

The paper evaluates every algorithm on wall time and R-tree node accesses;
this module records *where* inside one query those budgets are spent.  A
:class:`Span` is one timed phase (``filter``, ``refine``, ``probability``,
``cache-lookup``, ...) with free-form attributes (candidate counts,
node-access deltas, kernel choice, cache outcome); spans nest into a tree
via a per-thread stack owned by the :class:`Tracer`.

Instrumented code never references a tracer directly — it calls the
module-level :func:`span`, which resolves the *ambient* tracer installed
by :meth:`Tracer.activate` (thread-local).  When no tracer is active the
call returns a shared no-op span, so the disabled path costs one function
call and an empty context manager — bounded by
``benchmarks/bench_obs_overhead.py`` at <3% of the PRSQ batch workload.

Determinism: the clock is injectable (``Tracer(clock=...)``), mirroring
the seeded-RNG pattern — with a fake clock the NDJSON export is
byte-stable run over run (sorted keys, compact separators).
"""

from __future__ import annotations

import json
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Union,
)

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "annotate",
    "as_tracer",
    "export_ndjson",
    "phase_totals",
    "span",
    "span_to_line",
]


class Span:
    """One timed, attributed phase; also its own context manager.

    Entering records the start tick, pushes the span onto the owning
    tracer's thread-local stack (appending it to the current parent's
    children — child order is start order, hence deterministic); exiting
    records the end tick and, for a root span, hands the finished tree to
    the tracer (NDJSON sink and/or the in-memory ``finished`` list).
    """

    __slots__ = ("name", "attributes", "start", "end", "children", "_tracer")

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- context-manager protocol ---------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        assert tracer is not None, "span not bound to a tracer"
        stack = tracer._stack()
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.end = tracer._clock()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        stack = tracer._stack()
        assert stack and stack[-1] is self, "span stack out of order"
        stack.pop()
        if not stack:
            tracer._finish_root(self)
        return False

    # -- data accessors --------------------------------------------------
    @property
    def duration_s(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to this span; chainable, no-op-safe."""
        self.attributes.update(attrs)
        return self

    def phase_totals(self) -> Dict[str, float]:
        """Aggregate descendant durations by span name (see
        :func:`phase_totals`)."""
        return phase_totals(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration_s,
            "attrs": self.attributes,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (the worker
        hand-back path)."""
        out = cls(payload["name"], attributes=dict(payload.get("attrs", {})))
        out.start = payload.get("start")
        out.end = payload.get("end")
        out.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return out

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} {self.duration_s * 1e3:.3f} ms "
            f"children={len(self.children)} attrs={self.attributes!r}>"
        )


class _NullSpan:
    """The disabled-path span: every operation is a no-op.

    A single shared instance is returned by :func:`span` when no tracer is
    ambient, so tracing-off costs one attribute lookup plus an empty
    ``with`` block per instrumented site.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NullSpan>"


_NULL_SPAN = _NullSpan()

# The ambient tracer is thread-local: a Session activates its tracer for
# the duration of one query, worker processes activate their own, and
# concurrent sessions in different threads never interleave span stacks.
_AMBIENT = threading.local()


class Tracer:
    """Collects span trees for one execution context.

    Parameters
    ----------
    sink:
        Optional writable text stream; every finished *root* span is
        serialized as one NDJSON line and flushed immediately, so a
        consumer can tail the trace while a long batch is running.
    clock:
        Monotonic float clock; inject a fake for byte-stable traces
        (mirrors the seeded-RNG determinism pattern).
    keep:
        Retain finished roots in :attr:`finished` for programmatic access
        (:meth:`drain`).  Defaults to ``True`` when there is no sink.
    """

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.perf_counter,
        keep: Optional[bool] = None,
    ):
        self.sink = sink
        self.finished: List[Span] = []
        self.keep = (sink is None) if keep is None else keep
        self._clock = clock
        self._local = threading.local()
        self._owns_sink = False

    @classmethod
    def to_path(
        cls, path: Union[str, "object"], **kwargs: Any
    ) -> "Tracer":
        """A tracer streaming NDJSON spans to *path* (closed by
        :meth:`close`)."""
        tracer = cls(sink=open(path, "w"), **kwargs)
        tracer._owns_sink = True
        return tracer

    # -- span lifecycle --------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span bound to this tracer; use as a context manager."""
        return Span(name, attributes=attrs, tracer=self)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish_root(self, root: Span) -> None:
        if self.sink is not None:
            self.sink.write(span_to_line(root) + "\n")
            self.sink.flush()
        if self.keep:
            self.finished.append(root)

    def ingest(self, payloads: Iterable[Dict[str, Any]]) -> None:
        """Merge finished span trees handed back from worker processes.

        Accepts :meth:`Span.to_dict` payloads (the picklable wire form the
        executors ship) and routes them through the same sink/retention
        path as locally finished roots.
        """
        for payload in payloads:
            self._finish_root(Span.from_dict(payload))

    def drain(self) -> List[Span]:
        """Return and clear the retained root spans."""
        spans, self.finished = self.finished, []
        return spans

    # -- ambient installation -------------------------------------------
    def activate(self) -> "_Activation":
        """Install this tracer as the thread's ambient tracer for a block."""
        return _Activation(self)

    def close(self) -> None:
        """Close an owned sink (no-op for caller-provided streams)."""
        if self._owns_sink and self.sink is not None:
            self.sink.close()
            self.sink = None
            self._owns_sink = False

    def __repr__(self) -> str:
        return (
            f"<Tracer finished={len(self.finished)} "
            f"sink={'yes' if self.sink is not None else 'no'}>"
        )


class _Activation:
    """Context manager swapping the ambient tracer in and out."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _AMBIENT.tracer = self._previous
        return False


def active_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, or ``None``."""
    return getattr(_AMBIENT, "tracer", None)


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Open a phase span on the ambient tracer (no-op when none).

    This is *the* instrumentation entry point — engine, kernels, index,
    cache and executors all call it; only :class:`~repro.engine.session.
    Session` ever installs a tracer.
    """
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is None:
        return
    current = tracer.current()
    if current is not None:
        current.set(**attrs)


def phase_totals(root: Span) -> Dict[str, float]:
    """Total duration per phase name across *root*'s descendants.

    The root itself is excluded (it is the whole query).  Same-named
    descendants of a span are not double-counted: a ``probability`` span
    nested under another ``probability`` span contributes only through its
    ancestor.  Keys are sorted for deterministic output.
    """
    totals: Dict[str, float] = {}

    def walk(node: Span, names_on_path: frozenset) -> None:
        for child in node.children:
            if child.name not in names_on_path:
                totals[child.name] = (
                    totals.get(child.name, 0.0) + child.duration_s
                )
            walk(child, names_on_path | {child.name})

    walk(root, frozenset())
    return dict(sorted(totals.items()))


def span_to_line(root: Span) -> str:
    """One canonical NDJSON line for a finished root span.

    Sorted keys and compact separators make the encoding a pure function
    of the span tree — with an injected fake clock, byte-stable run over
    run (asserted by the determinism tests).
    """
    return json.dumps(
        root.to_dict(), sort_keys=True, separators=(",", ":")
    )


def export_ndjson(spans: Iterable[Span], fh: IO[str]) -> int:
    """Write finished spans as NDJSON; returns the number of lines."""
    count = 0
    for root in spans:
        fh.write(span_to_line(root) + "\n")
        count += 1
    return count


def as_tracer(trace: Any) -> Optional[Tracer]:
    """Coerce a user-facing ``trace=`` argument into a tracer.

    ``None`` stays off; an existing :class:`Tracer` passes through;
    ``True`` builds an in-memory tracer; a path opens an NDJSON file
    sink; a file-like object streams to it.
    """
    if trace is None:
        return None
    if isinstance(trace, Tracer):
        return trace
    if trace is True:
        return Tracer()
    if hasattr(trace, "write"):
        return Tracer(sink=trace)
    return Tracer.to_path(trace)
