"""repro — Causality & responsibility for probabilistic reverse skyline
query non-answers.

A from-scratch reproduction of Gao, Liu, Chen, Zhou & Zheng,
*"Finding Causality and Responsibility for Probabilistic Reverse Skyline
Query Non-Answers"*, IEEE TKDE 28(11), 2016.

Public API highlights
---------------------
* :func:`repro.core.cp.compute_causality` — algorithm CP (CR2PRSQ).
* :func:`repro.core.cr.compute_causality_certain` — algorithm CR (CRPRSQ).
* :func:`repro.core.cp.compute_causality_pdf` — the continuous-pdf variant.
* :mod:`repro.prsq` — probabilistic reverse skyline query substrate.
* :mod:`repro.skyline` — classic / dynamic / reverse skyline operators.
* :mod:`repro.index` — R-tree with node-access accounting.
* :mod:`repro.datasets` — all of the paper's workload generators.
* :mod:`repro.engine` — batched, cached, parallel query execution
  (:class:`~repro.engine.Session` + declarative query specs).
* :mod:`repro.api` — the versioned public API: :func:`repro.api.connect`
  returns a fluent :class:`~repro.api.Client` whose methods produce typed
  :class:`~repro.api.QueryResult` envelopes; the
  :data:`~repro.api.REGISTRY` lets new query families plug in with one
  registration call and zero engine edits.
* :mod:`repro.obs` — phase-level tracing (nestable spans, NDJSON export)
  and the process-global metrics registry; enabled per session via
  ``connect(..., trace=...)``, free when off.
"""

from repro import obs
from repro.api import (
    Client,
    QueryResult,
    REGISTRY,
    connect,
    connect_pdf,
)
from repro.core import (
    CPConfig,
    Cause,
    CauseKind,
    CausalityResult,
    RunStats,
    brute_force_causality,
    compute_causality,
    compute_causality_certain,
    compute_causality_pdf,
    naive_i,
    naive_ii,
)
from repro.engine import (
    ParallelExecutor,
    QueryOutcome,
    SerialExecutor,
    Session,
)
from repro.exceptions import (
    DimensionalityError,
    EmptyDatasetError,
    InvalidProbabilityError,
    NotANonAnswerError,
    ReproError,
)
from repro.geometry import Rect
from repro.index import RTree, bulk_load
from repro.prsq import (
    MembershipOracle,
    probabilistic_reverse_skyline,
    prsq_non_answers,
    prsq_probabilities,
    reverse_skyline_probability,
    sample_reverse_skyline_probability,
)
from repro.rtopk import WeightSet, compute_causality_rtopk, reverse_top_k
from repro.skyline import (
    compute_causality_bichromatic,
    compute_causality_k_skyband,
    reverse_k_skyband,
    reverse_skyline,
    skyline_indices,
)
from repro.uncertain import (
    CertainDataset,
    TruncatedGaussianObject,
    UncertainDataset,
    UncertainObject,
    UniformBoxObject,
)

__version__ = "2.0.0"

__all__ = [
    "CPConfig",
    "Client",
    "QueryResult",
    "REGISTRY",
    "connect",
    "connect_pdf",
    "Cause",
    "CauseKind",
    "CausalityResult",
    "CertainDataset",
    "DimensionalityError",
    "EmptyDatasetError",
    "InvalidProbabilityError",
    "MembershipOracle",
    "NotANonAnswerError",
    "ParallelExecutor",
    "QueryOutcome",
    "RTree",
    "Rect",
    "SerialExecutor",
    "Session",
    "ReproError",
    "RunStats",
    "TruncatedGaussianObject",
    "UncertainDataset",
    "UncertainObject",
    "UniformBoxObject",
    "WeightSet",
    "brute_force_causality",
    "bulk_load",
    "compute_causality",
    "compute_causality_bichromatic",
    "compute_causality_certain",
    "compute_causality_k_skyband",
    "compute_causality_pdf",
    "compute_causality_rtopk",
    "naive_i",
    "naive_ii",
    "obs",
    "probabilistic_reverse_skyline",
    "prsq_non_answers",
    "prsq_probabilities",
    "reverse_k_skyband",
    "reverse_skyline",
    "reverse_skyline_probability",
    "reverse_top_k",
    "sample_reverse_skyline_probability",
    "skyline_indices",
    "__version__",
]
