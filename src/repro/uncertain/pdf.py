"""Continuous pdf uncertain model (Sec. 3.2 extension).

The paper's CP algorithm extends to objects described by a continuous
probability density over an uncertain region.  Three pieces of machinery
are needed, all implemented here:

1. **Filter rectangles** — under the pdf model, the Lemma-2 rectangles of a
   non-answer are built from the *farthest* point of its uncertain region to
   ``q``, one rectangle per sub-quadrant of ``q`` the region overlaps
   (Fig. 3: ``Rec2 ∪ Rec3`` for a region straddling two quadrants).
2. **Must-contain rectangle** — the Lemma-4 test uses the rectangle formed
   by the *nearest* point of the region to ``q``; it exists only when the
   region lies inside a single sub-quadrant (Fig. 4).
3. **Probability integration** — ``Pr{u' ≺ q}`` becomes an integral over
   the pdf.  We integrate by Monte-Carlo discretization:
   :meth:`ContinuousUncertainObject.discretize` converts the object into a
   discrete-sample :class:`~repro.uncertain.object.UncertainObject`, after
   which the exact discrete pipeline applies.  The discretization error is
   the standard :math:`O(1/\\sqrt{n})` MC rate, property-tested.
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Optional

import numpy as np

from repro.geometry.dominance import dominance_rectangle
from repro.geometry.point import PointLike, as_point
from repro.geometry.quadrant import split_by_quadrants
from repro.geometry.rectangle import Rect
from repro.uncertain.object import UncertainObject


class ContinuousUncertainObject(abc.ABC):
    """Base class: an uncertain region plus a pdf supported on it."""

    def __init__(self, oid: Hashable, region: Rect, name: Optional[str] = None):
        self.oid = oid
        self.region = region
        self.name = name

    @property
    def dims(self) -> int:
        return self.region.dims

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points from the pdf (always inside :attr:`region`)."""

    @abc.abstractmethod
    def pdf(self, point: PointLike) -> float:
        """Density at *point* (0 outside the region)."""

    # ------------------------------------------------------------------
    def discretize(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> UncertainObject:
        """Monte-Carlo discretization into an equal-probability sample object."""
        if n < 1:
            raise ValueError("discretization needs at least one sample")
        rng = rng or np.random.default_rng(0)
        points = self.sample(n, rng)
        return UncertainObject(self.oid, points, name=self.name)

    # ------------------------------------------------------------------
    def filter_rectangles(self, q: PointLike) -> List[Rect]:
        """Section 3.2 filter rectangles for a pdf-model non-answer.

        One rectangle per sub-quadrant of *q* overlapped by the region, each
        formed by the farthest region point to ``q`` within that quadrant.
        """
        qq = as_point(q, dims=self.dims)
        rects = []
        for _mask, piece in split_by_quadrants(self.region, qq):
            farthest = piece.farthest_corner(qq)
            rects.append(dominance_rectangle(farthest, qq))
        return rects

    def must_contain_rectangle(self, q: PointLike) -> Optional[Rect]:
        """Section 3.2 Lemma-4 rectangle (nearest region point to ``q``).

        ``None`` when the region spans more than one sub-quadrant — in that
        case no single rectangle is guaranteed to be dominated in every
        instantiation (the ``u2`` caveat of Fig. 4).
        """
        qq = as_point(q, dims=self.dims)
        pieces = split_by_quadrants(self.region, qq)
        if len(pieces) != 1:
            return None
        nearest = self.region.nearest_corner(qq)
        # Inner bound: unlike the Lemma-2 filter rectangles, this one must
        # never over-approximate, so use the naive (un-widened) bounds
        # rather than dominance_rectangle's boundary-complete ones.
        return Rect.from_center(nearest, np.abs(qq - nearest))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.oid!r} region={self.region}>"


class UniformBoxObject(ContinuousUncertainObject):
    """Uniform density over a hyper-rectangular uncertain region."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.region.lo, self.region.hi, size=(n, self.dims))

    def pdf(self, point: PointLike) -> float:
        volume = self.region.area()
        if volume == 0.0:
            raise ValueError("degenerate region has no density")
        return 1.0 / volume if self.region.contains_point(point) else 0.0


class TruncatedGaussianObject(ContinuousUncertainObject):
    """Isotropic Gaussian centred in the region, truncated to the region.

    Matches the synthetic generator's ``rG`` mode where object positions
    concentrate near the region centre.
    """

    def __init__(
        self,
        oid: Hashable,
        region: Rect,
        sigma: Optional[float] = None,
        name: Optional[str] = None,
    ):
        super().__init__(oid, region, name=name)
        # Default spread: a quarter of the largest side, so ~95% of the
        # untruncated mass already falls inside the region.
        self.sigma = sigma if sigma is not None else max(
            float(np.max(region.extents)) / 4.0, 1e-12
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        center = self.region.center
        out = np.empty((n, self.dims))
        filled = 0
        while filled < n:
            draw = rng.normal(center, self.sigma, size=(2 * (n - filled) + 8, self.dims))
            inside = draw[
                np.logical_and(
                    (draw >= self.region.lo).all(axis=1),
                    (draw <= self.region.hi).all(axis=1),
                )
            ]
            take = min(len(inside), n - filled)
            out[filled : filled + take] = inside[:take]
            filled += take
        return out

    def pdf(self, point: PointLike) -> float:
        p = as_point(point, dims=self.dims)
        if not self.region.contains_point(p):
            return 0.0
        center = self.region.center
        d2 = float(np.sum((p - center) ** 2))
        norm = (2.0 * np.pi * self.sigma**2) ** (self.dims / 2.0)
        # Unnormalized w.r.t. truncation; relative densities are what the
        # rejection sampler and tests rely on.
        return float(np.exp(-d2 / (2.0 * self.sigma**2)) / norm)
