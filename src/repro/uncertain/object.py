"""Uncertain objects under the discrete sample model (Sec. 2.2).

An uncertain object ``u`` is a set of mutually exclusive samples
``u_1 .. u_l`` with appearance probabilities ``u_i.p`` summing to 1.
Certain objects are the degenerate case of a single sample with
probability 1, which is how Section 4 (CRP on plain reverse skylines)
reuses all the uncertain machinery.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidProbabilityError
from repro.geometry.point import PointLike, as_point, as_point_matrix
from repro.geometry.rectangle import Rect

_PROB_TOL = 1e-9


class UncertainObject:
    """One uncertain object: ``l`` exclusive samples with probabilities.

    Parameters
    ----------
    oid:
        Hashable object identifier, unique within a dataset.
    samples:
        ``(l, d)`` matrix (or sequence of points) of sample locations.
    probabilities:
        Length-``l`` appearance probabilities; defaults to the paper's
        running-example convention of equal probabilities ``1/l``.
    name:
        Optional human-readable label (player name, car trim, ...).
    """

    __slots__ = ("oid", "samples", "probabilities", "name", "_mbr", "_digest")

    def __init__(
        self,
        oid: Hashable,
        samples: Sequence[PointLike] | np.ndarray,
        probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ):
        matrix = as_point_matrix(samples)
        if matrix.shape[0] == 0:
            raise ValueError(f"object {oid!r} must have at least one sample")
        if probabilities is None:
            probs = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
        else:
            probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != (matrix.shape[0],):
            raise InvalidProbabilityError(
                f"object {oid!r}: {matrix.shape[0]} samples but "
                f"{probs.shape[0] if probs.ndim == 1 else probs.shape} probabilities"
            )
        if np.any(probs <= 0.0) or np.any(probs > 1.0):
            raise InvalidProbabilityError(
                f"object {oid!r}: probabilities must lie in (0, 1], got {probs}"
            )
        if abs(float(probs.sum()) - 1.0) > _PROB_TOL:
            raise InvalidProbabilityError(
                f"object {oid!r}: probabilities sum to {probs.sum()}, expected 1"
            )
        matrix.flags.writeable = False
        probs.flags.writeable = False
        self.oid = oid
        self.samples = matrix
        self.probabilities = probs
        self.name = name
        self._mbr: Optional[Rect] = None
        self._digest: Optional[bytes] = None

    # ------------------------------------------------------------------
    @classmethod
    def certain(
        cls, oid: Hashable, point: PointLike, name: Optional[str] = None
    ) -> "UncertainObject":
        """A certain object: one sample with probability 1."""
        return cls(oid, [as_point(point)], [1.0], name=name)

    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.samples.shape[1]

    @property
    def num_samples(self) -> int:
        return self.samples.shape[0]

    @property
    def is_certain(self) -> bool:
        return self.num_samples == 1

    @property
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the samples (the uncertain region proxy)."""
        if self._mbr is None:
            self._mbr = Rect.bounding(self.samples)
        return self._mbr

    def expected_position(self) -> np.ndarray:
        """Probability-weighted mean location."""
        return self.probabilities @ self.samples

    def digest(self) -> bytes:
        """Content hash of this object, cached for its (immutable) lifetime.

        Every field is length-prefixed (and the sample matrix carries its
        shape) so no two distinct objects can concatenate to the same byte
        stream.  Dataset fingerprints combine these per-object digests, so
        a single-object change re-hashes O(changed) sample bytes instead
        of the whole dataset.
        """
        if self._digest is None:
            hasher = hashlib.sha1()
            for data in (
                repr(self.oid).encode(),
                repr(self.name).encode(),
                repr(self.samples.shape).encode(),
                self.samples.tobytes(),
                self.probabilities.tobytes(),
            ):
                hasher.update(str(len(data)).encode())
                hasher.update(b":")
                hasher.update(data)
            self._digest = hasher.digest()
        return self._digest

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainObject):
            return NotImplemented
        return (
            self.oid == other.oid
            and np.array_equal(self.samples, other.samples)
            and np.array_equal(self.probabilities, other.probabilities)
        )

    def __hash__(self) -> int:
        return hash(self.oid)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<UncertainObject {self.oid!r}{label} "
            f"samples={self.num_samples} dims={self.dims}>"
        )
