"""Datasets of uncertain and certain objects, indexed by an R-tree.

The R-tree indexes one entry per object: its sample MBR (uncertain) or its
point (certain), exactly as the paper assumes when algorithm CP traverses
``R_P`` in a branch-and-bound manner.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError
from repro.geometry.point import PointLike, as_point_matrix
from repro.index.bulk import bulk_load
from repro.index.rtree import DEFAULT_PAGE_SIZE, RTree
from repro.uncertain.object import UncertainObject
from repro.uncertain.tensor import DatasetTensor


class UncertainDataset:
    """An ordered collection of :class:`UncertainObject` with a lazy R-tree."""

    def __init__(
        self,
        objects: Iterable[UncertainObject],
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self._objects: List[UncertainObject] = list(objects)
        if not self._objects:
            raise EmptyDatasetError("dataset must contain at least one object")
        dims = self._objects[0].dims
        for obj in self._objects:
            if obj.dims != dims:
                raise ValueError(
                    f"object {obj.oid!r} has {obj.dims} dims, dataset has {dims}"
                )
        self._by_id: Dict[Hashable, UncertainObject] = {}
        for obj in self._objects:
            if obj.oid in self._by_id:
                raise ValueError(f"duplicate object id {obj.oid!r}")
            self._by_id[obj.oid] = obj
        self._index_of: Dict[Hashable, int] = {
            obj.oid: i for i, obj in enumerate(self._objects)
        }
        self.dims = dims
        self.page_size = page_size
        self._rtree: Optional[RTree] = None
        self._tensor: Optional[DatasetTensor] = None

    # ------------------------------------------------------------------
    @property
    def rtree(self) -> RTree:
        """R-tree over object MBRs, bulk-loaded on first use."""
        if self._rtree is None:
            self._rtree = bulk_load(
                [(obj.mbr, obj.oid) for obj in self._objects],
                dims=self.dims,
                page_size=self.page_size,
            )
        return self._rtree

    @property
    def tensor(self) -> DatasetTensor:
        """Padded ``(n, S_max, d)`` sample/probability tensor, built lazily.

        Rows follow dataset order — the canonical Eq. (2) product order —
        and the cache is sound because object arrays are immutable.
        """
        if self._tensor is None:
            self._tensor = DatasetTensor(self._objects)
        return self._tensor

    def index_of(self, oid: Hashable) -> int:
        """Dataset position of *oid* (the tensor row index)."""
        try:
            return self._index_of[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown object {oid!r}") from None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    def __contains__(self, oid: Hashable) -> bool:
        return oid in self._by_id

    def get(self, oid: Hashable) -> UncertainObject:
        try:
            return self._by_id[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown object {oid!r}") from None

    def ids(self) -> List[Hashable]:
        return [obj.oid for obj in self._objects]

    def objects(self) -> List[UncertainObject]:
        return list(self._objects)

    def others(self, oid: Hashable) -> List[UncertainObject]:
        """All objects except *oid* (the ``P - {u}`` of the definitions)."""
        return [obj for obj in self._objects if obj.oid != oid]

    def without(self, removed: Iterable[Hashable]) -> "UncertainDataset":
        """A new dataset with *removed* ids deleted (``P - Γ``).

        Used by tests and naive baselines; the optimized algorithms never
        materialize removals — they evaluate restricted probabilities through
        :class:`repro.prsq.oracle.MembershipOracle` instead.
        """
        removed_set = set(removed)
        kept = [obj for obj in self._objects if obj.oid not in removed_set]
        return UncertainDataset(kept, page_size=self.page_size)

    def max_samples(self) -> int:
        return max(obj.num_samples for obj in self._objects)

    def __repr__(self) -> str:
        return (
            f"<UncertainDataset n={len(self._objects)} dims={self.dims} "
            f"max_samples={self.max_samples()}>"
        )


class CertainDataset(UncertainDataset):
    """A dataset of certain points (Section 4), stored as 1-sample objects."""

    def __init__(
        self,
        points: Sequence[PointLike] | np.ndarray,
        ids: Optional[Sequence[Hashable]] = None,
        names: Optional[Sequence[str]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        matrix = as_point_matrix(points)
        if ids is None:
            ids = list(range(matrix.shape[0]))
        if len(ids) != matrix.shape[0]:
            raise ValueError(
                f"{matrix.shape[0]} points but {len(ids)} ids supplied"
            )
        objects = []
        for i, oid in enumerate(ids):
            name = names[i] if names is not None else None
            objects.append(UncertainObject.certain(oid, matrix[i], name=name))
        super().__init__(objects, page_size=page_size)
        self.points = matrix

    def point_of(self, oid: Hashable) -> np.ndarray:
        return self.get(oid).samples[0]

    def without(self, removed: Iterable[Hashable]) -> "CertainDataset":
        """A new certain dataset with *removed* ids deleted (``P - Γ``)."""
        removed_set = set(removed)
        kept = [obj for obj in self._objects if obj.oid not in removed_set]
        return CertainDataset(
            [obj.samples[0] for obj in kept],
            ids=[obj.oid for obj in kept],
            names=[obj.name for obj in kept],
            page_size=self.page_size,
        )
