"""Datasets of uncertain and certain objects, indexed by an R-tree.

The R-tree indexes one entry per object: its sample MBR (uncertain) or its
point (certain), exactly as the paper assumes when algorithm CP traverses
``R_P`` in a branch-and-bound manner.

Datasets are **live**: :meth:`UncertainDataset.insert_object`,
:meth:`~UncertainDataset.delete_object`, :meth:`~UncertainDataset.
update_object` and :meth:`~UncertainDataset.apply_delta` change the
contents in place while every derived structure is patched incrementally —
the R-tree through its own ``insert``/``delete`` (only if it was already
built), the cached :class:`DatasetTensor` by row, and the content digest
by re-combining cached per-object digests — so a single-object change
costs O(changed) hashing/kernel work instead of the O(n) full rebuild that
:meth:`repro.engine.session.Session.replace_dataset` pays.  The packed
R-tree snapshot (:attr:`UncertainDataset.packed`) is the one derived
structure that is *invalidated* instead of patched: the next access
re-freezes it from the already-patched pointer tree in one O(n) array
pass.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError
from repro.geometry.point import PointLike, as_point_matrix
from repro.index.bulk import bulk_load
from repro.index.packed import PackedRTree
from repro.index.rtree import DEFAULT_PAGE_SIZE, RTree
from repro.index.stats import AccessStats
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject
from repro.uncertain.tensor import DatasetTensor


class UncertainDataset:
    """An ordered collection of :class:`UncertainObject` with a lazy R-tree."""

    #: Digest header token.  A class attribute (not ``type(self).__name__``)
    #: so sharded subclasses fingerprint identically to their base — the
    #: content digest names *what the data is*, never how it is partitioned;
    #: the partition is named separately by ``layout_digest``.
    _digest_kind = "UncertainDataset"

    def __init__(
        self,
        objects: Iterable[UncertainObject],
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self._objects: List[UncertainObject] = list(objects)
        if not self._objects:
            raise EmptyDatasetError("dataset must contain at least one object")
        dims = self._objects[0].dims
        for obj in self._objects:
            if obj.dims != dims:
                raise ValueError(
                    f"object {obj.oid!r} has {obj.dims} dims, dataset has {dims}"
                )
        self._by_id: Dict[Hashable, UncertainObject] = {}
        for obj in self._objects:
            if obj.oid in self._by_id:
                raise ValueError(f"duplicate object id {obj.oid!r}")
            self._by_id[obj.oid] = obj
        self._index_of: Dict[Hashable, int] = {
            obj.oid: i for i, obj in enumerate(self._objects)
        }
        self.dims = dims
        self.page_size = page_size
        self._rtree: Optional[RTree] = None
        self._packed: Optional[PackedRTree] = None
        self._access_stats = AccessStats()
        self._tensor: Optional[DatasetTensor] = None
        self._content_digest: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def access_stats(self) -> AccessStats:
        """Node-access counters shared by the pointer tree *and* the packed
        snapshot, so the paper's I/O metric accumulates in one place no
        matter which traversal kernel a query selected."""
        return self._access_stats

    @property
    def rtree(self) -> RTree:
        """R-tree over object MBRs, bulk-loaded on first use."""
        if self._rtree is None:
            self._rtree = bulk_load(
                [(obj.mbr, obj.oid) for obj in self._objects],
                dims=self.dims,
                page_size=self.page_size,
            )
            self._rtree.stats = self._access_stats
        return self._rtree

    @property
    def packed(self) -> PackedRTree:
        """Packed (array-backed) snapshot of :attr:`rtree`, frozen lazily.

        Invalidated by every live update — the next access re-freezes from
        the incrementally patched pointer tree in one O(n) array pass (no
        O(n log n) rebuild).  Shares :attr:`access_stats`.
        """
        if self._packed is None:
            self._packed = PackedRTree.from_rtree(
                self.rtree, stats=self._access_stats
            )
        return self._packed

    def spatial_index(self, use_numpy: Optional[bool] = None):
        """The traversal structure matching the engine's kernel switch.

        ``use_numpy=True`` (or unset, the engine default) selects the
        packed level-frontier kernels; ``False`` the pointer-tree
        reference.  Both answer the same ``range_search`` /
        ``range_search_any`` / ``range_search_many`` /
        ``range_search_any_grouped`` calls with identical hit sets and
        identical node-access accounting.
        """
        from repro.engine.kernels import resolve_use_numpy

        return self.packed if resolve_use_numpy(use_numpy) else self.rtree

    def warm_index(self, use_numpy: Optional[bool] = None) -> None:
        """Eagerly build the structure :meth:`spatial_index` would return.

        Sessions call this instead of touching :attr:`packed`/:attr:`rtree`
        directly so sharded datasets can warm *their* per-shard structures
        behind the same call.
        """
        self.spatial_index(use_numpy)

    @property
    def shard_count(self) -> int:
        """Number of spatial shards (1 for a plain dataset)."""
        return 1

    def layout_digest(self) -> Optional[str]:
        """Partition-layout digest, or ``None`` for an unsharded dataset.

        Sharded subclasses return a digest of their exact shard
        assignment; the engine folds it into cache keys so re-sharding
        the same data can never alias cached results.
        """
        return None

    def adopt_packed(self, packed: PackedRTree) -> None:
        """Install a pre-built packed snapshot (the worker array handoff).

        Used by :class:`~repro.engine.executor.ParallelExecutor` workers,
        which receive the parent's frozen arrays instead of re-running the
        bulk load.  The snapshot is re-pointed at this dataset's
        :attr:`access_stats`.
        """
        if packed.size != len(self._objects) or packed.dims != self.dims:
            raise ValueError(
                f"packed snapshot ({packed.size} entries, {packed.dims} dims)"
                f" does not match dataset ({len(self._objects)} objects, "
                f"{self.dims} dims)"
            )
        packed.stats = self._access_stats
        self._packed = packed

    @property
    def tensor(self) -> DatasetTensor:
        """Padded ``(n, S_max, d)`` sample/probability tensor, built lazily.

        Rows follow dataset order — the canonical Eq. (2) product order —
        and the cache is sound because object arrays are immutable.
        """
        if self._tensor is None:
            self._tensor = DatasetTensor(self._objects)
        return self._tensor

    def index_of(self, oid: Hashable) -> int:
        """Dataset position of *oid* (the tensor row index)."""
        try:
            return self._index_of[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown object {oid!r}") from None

    def positions_of(
        self, oids: Iterable[Hashable], exclude: Iterable[Hashable] = ()
    ) -> List[int]:
        """Sorted dataset positions of *oids* minus *exclude*.

        The one canonicalization every filter call site shares: index hits
        become a pool in ascending dataset order — the Eq. (2) product
        order the bit-parity contracts depend on — with the center (and
        any ``P − Γ`` removals) dropped.  Keeping it here means no caller
        can drift to a different tie-break.
        """
        excluded = set(exclude)
        return sorted(
            self.index_of(oid) for oid in oids if oid not in excluded
        )

    def content_digest(self) -> str:
        """Content hash: type, dims, and every object's cached digest.

        The same function the engine's
        :func:`~repro.engine.session.dataset_fingerprint` uses as cache-key
        material.  Per-object digests are cached on the (immutable) objects
        and the combined digest is cached here, so after an incremental
        update only the changed objects are re-hashed — the re-combination
        touches 20 bytes per object instead of every sample byte.
        """
        if self._content_digest is None:
            hasher = hashlib.sha1()
            # Object digests are fixed-width (20 bytes), so one join is
            # unambiguous; the header pins type, dims and count.
            hasher.update(
                f"{self._digest_kind}:{self.dims}:{len(self._objects)}:".encode()
            )
            hasher.update(b"".join(obj.digest() for obj in self._objects))
            self._content_digest = hasher.hexdigest()
        return self._content_digest

    # ------------------------------------------------------------------
    # live updates (incremental: R-tree, tensor, digest all patched)
    # ------------------------------------------------------------------
    def _check_new_object(self, obj: UncertainObject) -> None:
        if not isinstance(obj, UncertainObject):
            raise TypeError(
                f"expected an UncertainObject, got {type(obj).__name__}"
            )
        if obj.dims != self.dims:
            raise ValueError(
                f"object {obj.oid!r} has {obj.dims} dims, dataset has {self.dims}"
            )

    def insert_object(self, obj: UncertainObject) -> None:
        """Add *obj* at the end of the dataset order, in O(changed) work."""
        self._check_new_object(obj)
        if obj.oid in self._by_id:
            raise ValueError(f"duplicate object id {obj.oid!r}")
        self._insert_many((obj,))

    def delete_object(self, oid: Hashable) -> UncertainObject:
        """Remove the object with id *oid*; returns the removed object."""
        obj = self.get(oid)  # raises UnknownObjectError
        if len(self._objects) == 1:
            raise EmptyDatasetError(
                f"deleting {oid!r} would leave the dataset empty"
            )
        self._delete_many((oid,))
        return obj

    def update_object(self, obj: UncertainObject) -> UncertainObject:
        """Replace the object sharing ``obj.oid`` in place (same position).

        Returns the previous object.  Position in the dataset order — and
        therefore the canonical Eq. (2) product order — is preserved, so
        results stay bit-identical to a fresh dataset built with the
        replacement at the same index.
        """
        self._check_new_object(obj)
        old = self.get(obj.oid)  # raises UnknownObjectError
        self._update_many((obj,))
        return old

    # -- batch primitives (validated by the callers above / apply_delta) --
    def _insert_many(self, objects: Sequence[UncertainObject]) -> None:
        base = len(self._objects)
        self._objects.extend(objects)
        for offset, obj in enumerate(objects):
            self._by_id[obj.oid] = obj
            self._index_of[obj.oid] = base + offset
        if self._rtree is not None:
            for obj in objects:
                self._rtree.insert(obj.mbr, obj.oid)
        if self._tensor is not None:
            self._tensor = self._tensor.with_inserted_rows(objects)
        self._packed = None  # re-frozen lazily from the patched tree
        self._content_digest = None

    def _delete_many(self, oids: Sequence[Hashable]) -> List[int]:
        """Remove *oids* in one pass; returns their (old) sorted positions."""
        positions = sorted(self._index_of[oid] for oid in oids)
        if self._rtree is not None:
            for oid in oids:
                self._rtree.delete(self._by_id[oid].mbr, oid)
        if self._tensor is not None:
            self._tensor = self._tensor.with_deleted_rows(positions)
        removed = set(oids)
        for oid in oids:
            del self._by_id[oid]
        self._objects = [o for o in self._objects if o.oid not in removed]
        self._index_of = {o.oid: i for i, o in enumerate(self._objects)}
        self._packed = None
        self._content_digest = None
        self._maybe_shrink_tensor()
        return positions

    def _update_many(self, objects: Sequence[UncertainObject]) -> List[int]:
        """Replace each object in place; returns the affected positions."""
        replacements = []
        for obj in objects:
            position = self._index_of[obj.oid]
            old = self._objects[position]
            self._objects[position] = obj
            self._by_id[obj.oid] = obj
            if self._rtree is not None:
                self._rtree.delete(old.mbr, obj.oid)
                self._rtree.insert(obj.mbr, obj.oid)
            replacements.append((position, obj))
        if self._tensor is not None:
            self._tensor = self._tensor.with_replaced_rows(replacements)
        self._packed = None
        self._content_digest = None
        self._maybe_shrink_tensor()
        return [position for position, _obj in replacements]

    def _maybe_shrink_tensor(self) -> None:
        """Re-pack the cached tensor when churn left it mostly padding.

        Deleting (or narrowing) the widest object never shrinks ``S_max``
        on the incremental path, so a transiently wide object would
        otherwise inflate every later kernel broadcast forever.  The 2x
        threshold keeps re-packs rare enough that alternating wide
        inserts/deletes cannot thrash.
        """
        tensor = self._tensor
        if tensor is None:
            return
        live = tensor.live_max_samples()
        if live and tensor.max_samples > 2 * live:
            self._tensor = tensor.narrowed(live)

    def apply_delta(self, delta: DatasetDelta) -> DatasetDelta:
        """Apply *delta* (deletes, then updates, then inserts) atomically.

        All ops are validated before the first mutation, so a bad delta
        leaves the dataset untouched instead of half-applied; each op
        group patches the tensor and the id maps in one batched pass, so
        a k-op delta pays one O(n) array copy per group, not k.
        """
        if not isinstance(delta, DatasetDelta):
            raise TypeError(
                f"expected a DatasetDelta, got {type(delta).__name__}"
            )
        for oid in delta.deletes:
            self.get(oid)
        if len(delta.deletes) >= len(self._objects):
            # Deletes run first, so this would transiently empty the
            # dataset even when the delta also inserts.
            raise EmptyDatasetError(
                "delta would delete every object; apply the inserts in a "
                "separate (earlier) delta"
            )
        for obj in delta.updates:
            self._check_new_object(obj)
            self.get(obj.oid)
        for obj in delta.inserts:
            self._check_new_object(obj)
            # delta ids are op-disjoint, so an existing id is a real dup
            if obj.oid in self._by_id:
                raise ValueError(f"duplicate object id {obj.oid!r}")
        if delta.deletes:
            self._delete_many(delta.deletes)
        if delta.updates:
            self._update_many(delta.updates)
        if delta.inserts:
            self._insert_many(delta.inserts)
        return delta

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    def __contains__(self, oid: Hashable) -> bool:
        return oid in self._by_id

    def get(self, oid: Hashable) -> UncertainObject:
        try:
            return self._by_id[oid]
        except KeyError:
            from repro.exceptions import UnknownObjectError

            raise UnknownObjectError(f"unknown object {oid!r}") from None

    def ids(self) -> List[Hashable]:
        return [obj.oid for obj in self._objects]

    def objects(self) -> List[UncertainObject]:
        return list(self._objects)

    def others(self, oid: Hashable) -> List[UncertainObject]:
        """All objects except *oid* (the ``P - {u}`` of the definitions)."""
        return [obj for obj in self._objects if obj.oid != oid]

    def without(self, removed: Iterable[Hashable]) -> "UncertainDataset":
        """A new dataset with *removed* ids deleted (``P - Γ``).

        Used by tests and naive what-if baselines; the optimized algorithms
        never materialize removals — they evaluate restricted probabilities
        through :class:`repro.prsq.oracle.MembershipOracle` instead.

        Kept objects are shared with this dataset, so their cached MBRs
        and content digests are reused, and when this dataset's tensor is
        already built the reduced tensor is derived by vectorized row
        deletion (the delta fast path) instead of a per-object rebuild.
        """
        removed_set = set(removed)
        kept = [obj for obj in self._objects if obj.oid not in removed_set]
        reduced = UncertainDataset(kept, page_size=self.page_size)
        self._seed_reduced_tensor(reduced, removed_set)
        return reduced

    def _seed_reduced_tensor(
        self, reduced: "UncertainDataset", removed_set: set
    ) -> None:
        """Pre-seed a ``P - Γ`` dataset's tensor from this one, if built."""
        if self._tensor is not None and len(reduced) > 0:
            positions = [
                self._index_of[oid]
                for oid in removed_set
                if oid in self._index_of
            ]
            reduced._tensor = self._tensor.with_deleted_rows(positions)

    # ------------------------------------------------------------------
    # snapshot isolation (the serve layer's read path)
    # ------------------------------------------------------------------
    def _clone_shell(
        self,
        objects: List[UncertainObject],
        by_id: Dict[Hashable, UncertainObject],
        index_of: Dict[Hashable, int],
    ) -> "UncertainDataset":
        """A dataset shell around pre-validated contents (no re-checking)."""
        clone = type(self).__new__(type(self))
        clone._objects = objects
        clone._by_id = by_id
        clone._index_of = index_of
        clone.dims = self.dims
        clone.page_size = self.page_size
        clone._rtree = None
        clone._packed = None
        clone._access_stats = AccessStats()
        clone._tensor = None
        clone._content_digest = None
        return clone

    def snapshot(self, freeze_packed: bool = True) -> "UncertainDataset":
        """An immutable read snapshot, decoupled from future mutations.

        The snapshot shares everything immutable — the objects (with their
        cached MBRs and digests), the sample tensor, the packed-index
        arrays, the combined content digest — but owns fresh id maps and
        access counters, so :meth:`apply_delta` on *this* dataset can
        never be observed by a query already running against the snapshot.
        Cost is O(n) pointer copies plus (``freeze_packed``) one O(n)
        re-freeze of the packed index from the incrementally patched
        pointer tree; no O(n log n) rebuild and no sample bytes move.

        ``freeze_packed=False`` skips the packed freeze for scalar-kernel
        sessions, whose queries traverse the pointer tree instead (the
        snapshot bulk-loads its own lazily on first use).
        """
        clone = self._clone_shell(
            list(self._objects), dict(self._by_id), dict(self._index_of)
        )
        clone._tensor = self._tensor
        clone._content_digest = self.content_digest()
        if freeze_packed:
            clone._packed = self.packed.with_stats(clone._access_stats)
        return clone

    def view(self) -> "UncertainDataset":
        """An O(1) per-reader view over this (already immutable) snapshot.

        Shares the id maps, object list, tensor, digest and packed arrays
        by reference; only the :class:`AccessStats` counter (and the
        packed view recording into it) is private, so concurrent readers
        of one published snapshot measure their own node accesses.  Only
        meaningful on a dataset that is no longer mutated — views share
        the maps that :meth:`apply_delta` would patch; take views of
        :meth:`snapshot` results, not of the live dataset.

        A view of a scalar-mode snapshot (no packed index) shares the
        pointer tree *and its counter* lazily through :attr:`rtree`, so
        per-query node-access deltas may interleave there; the packed
        path — the serve default — is fully isolated.
        """
        clone = self._clone_shell(self._objects, self._by_id, self._index_of)
        clone._tensor = self._tensor
        clone._content_digest = self._content_digest
        if self._packed is not None:
            clone._packed = self._packed.with_stats(clone._access_stats)
        elif self._rtree is not None:
            clone._rtree = self._rtree
            clone._access_stats = self._access_stats
        return clone

    def max_samples(self) -> int:
        return max(obj.num_samples for obj in self._objects)

    def __repr__(self) -> str:
        return (
            f"<UncertainDataset n={len(self._objects)} dims={self.dims} "
            f"max_samples={self.max_samples()}>"
        )


class CertainDataset(UncertainDataset):
    """A dataset of certain points (Section 4), stored as 1-sample objects."""

    _digest_kind = "CertainDataset"

    def __init__(
        self,
        points: Sequence[PointLike] | np.ndarray,
        ids: Optional[Sequence[Hashable]] = None,
        names: Optional[Sequence[str]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        matrix = as_point_matrix(points)
        if ids is None:
            ids = list(range(matrix.shape[0]))
        if len(ids) != matrix.shape[0]:
            raise ValueError(
                f"{matrix.shape[0]} points but {len(ids)} ids supplied"
            )
        objects = []
        for i, oid in enumerate(ids):
            name = names[i] if names is not None else None
            objects.append(UncertainObject.certain(oid, matrix[i], name=name))
        super().__init__(objects, page_size=page_size)
        # frozen: snapshots and worker handoffs share this matrix by
        # reference, so an in-place write would corrupt every reader
        matrix.flags.writeable = False
        self.points = matrix

    @classmethod
    def from_objects(
        cls,
        objects: Sequence[UncertainObject],
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "CertainDataset":
        """A certain dataset over existing 1-sample objects, shared not copied.

        The objects (and their cached MBRs/digests) are reused as-is; only
        the ``points`` matrix is materialized.  This is what keeps
        :meth:`without` and the delta path from re-validating and
        re-hashing every surviving object.
        """
        dataset = cls.__new__(cls)
        UncertainDataset.__init__(dataset, objects, page_size=page_size)
        for obj in dataset._objects:
            if not obj.is_certain:
                raise ValueError(
                    f"object {obj.oid!r} has {obj.num_samples} samples; "
                    "certain datasets need single-sample objects"
                )
        points = np.vstack([obj.samples[0] for obj in dataset._objects])
        points.flags.writeable = False
        dataset.points = points
        return dataset

    def point_of(self, oid: Hashable) -> np.ndarray:
        return self.get(oid).samples[0]

    def without(self, removed: Iterable[Hashable]) -> "CertainDataset":
        """A new certain dataset with *removed* ids deleted (``P - Γ``).

        Surviving objects are shared (cached MBRs and digests included)
        and ``page_size`` propagates, matching the uncertain variant.
        """
        removed_set = set(removed)
        kept = [obj for obj in self._objects if obj.oid not in removed_set]
        reduced = CertainDataset.from_objects(kept, page_size=self.page_size)
        self._seed_reduced_tensor(reduced, removed_set)
        return reduced

    def _clone_shell(
        self,
        objects: List[UncertainObject],
        by_id: Dict[Hashable, UncertainObject],
        index_of: Dict[Hashable, int],
    ) -> "CertainDataset":
        # Every mutation path replaces ``points`` wholesale (concatenate/
        # delete/copy), never in place, so sharing the matrix is safe.
        clone = super()._clone_shell(objects, by_id, index_of)
        clone.points = self.points
        return clone

    # ------------------------------------------------------------------
    # live updates: keep the dense ``points`` matrix in sync
    # ------------------------------------------------------------------
    def _check_new_object(self, obj: UncertainObject) -> None:
        super()._check_new_object(obj)
        if not obj.is_certain:
            raise ValueError(
                f"object {obj.oid!r} has {obj.num_samples} samples; "
                "certain datasets need single-sample objects"
            )

    def _replace_points(self, points: np.ndarray) -> None:
        # every mutation swaps the matrix wholesale and re-freezes it, so
        # snapshots holding the previous matrix stay untouched
        points.flags.writeable = False
        self.points = points

    def _insert_many(self, objects: Sequence[UncertainObject]) -> None:
        super()._insert_many(objects)
        self._replace_points(np.concatenate(
            [self.points] + [obj.samples[:1] for obj in objects]
        ))

    def _delete_many(self, oids: Sequence[Hashable]) -> List[int]:
        positions = super()._delete_many(oids)
        self._replace_points(np.delete(self.points, positions, axis=0))
        return positions

    def _update_many(self, objects: Sequence[UncertainObject]) -> List[int]:
        positions = super()._update_many(objects)
        points = self.points.copy()
        for position, obj in zip(positions, objects):
            points[position] = obj.samples[0]
        self._replace_points(points)
        return positions
