"""STR-sharded datasets: k disjoint sub-datasets behind the dataset API.

:func:`shard_dataset` partitions an existing dataset into k shards by
Sort-Tile-Recursive tiling of object MBR centers
(:func:`repro.index.bulk.str_partition` — the same scheme the bulk loader
packs leaves with, lifted one level up).  Each shard is a plain
:class:`~repro.uncertain.dataset.UncertainDataset` sharing the parent's
object instances (cached MBRs and digests included), owning its own
packed index; the parent keeps the global object order, tensor and
content digest, so everything downstream of the filter — the Eq. (2)
product order, fingerprints, refine phases — is byte-for-byte the
unsharded dataset.

What changes is purely physical:

* ``spatial_index`` returns a :class:`~repro.index.sharded.ShardedIndex`
  scatter-gather facade over the per-shard indexes;
* :class:`~repro.uncertain.delta.DatasetDelta` ops route to the owning
  shard in O(changed): inserts go to the nearest shard seed center,
  deletes/updates to their owner, and a full STR **rebalance** runs only
  when a shard overflows ``rebalance_factor x n/k`` or a delete would
  empty a shard;
* the :class:`PartitionLayout` digest names the exact assignment, and the
  engine folds it into every cache key — re-sharding the same data can
  never alias cached results;
* snapshots/views carry the shards (with per-shard frozen arrays), so
  the serve layer publishes sharded snapshots with unchanged isolation.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.index.bulk import str_partition
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject

#: A shard may grow to this multiple of the balanced size ``n / k`` before
#: an insert triggers a full STR repartition.
DEFAULT_REBALANCE_FACTOR = 2.0


@dataclass(frozen=True)
class PartitionLayout:
    """The exact shard assignment: per-shard object-id tuples, in order.

    Immutable and hash-stable: :attr:`digest` is cache-key material (the
    engine appends it to every sharded session's result-cache key), so
    two sessions over identical data but different partitions — a
    different k, or the same k after a rebalance reshuffled membership —
    can never serve each other's cached entries.
    """

    shards: Tuple[Tuple[Hashable, ...], ...]
    requested: int

    @property
    def k(self) -> int:
        return len(self.shards)

    @cached_property
    def digest(self) -> str:
        """sha1 over the requested count and length-prefixed member ids."""
        hasher = hashlib.sha1()
        hasher.update(f"layout:{self.requested}:{len(self.shards)}:".encode())
        for members in self.shards:
            hasher.update(f"|{len(members)}:".encode())
            for oid in members:
                token = repr(oid).encode()
                hasher.update(len(token).to_bytes(4, "big"))
                hasher.update(token)
        return hasher.hexdigest()

    def assignment(self) -> List[List[Hashable]]:
        """The plain-list form shipped to executor workers."""
        return [list(members) for members in self.shards]


class ShardingMixin:
    """The shard machinery shared by uncertain and certain sharded datasets.

    Mixed in *before* the dataset base class so the mutation primitives
    (``_insert_many``/``_delete_many``/``_update_many``), the index
    accessors and the snapshot/view paths here wrap the base behavior.
    The base class keeps full responsibility for the global state — the
    ordered object list, id maps, tensor, global pointer tree, content
    digest — so sharding adds routing, never a second source of truth.
    """

    _shards: List[UncertainDataset]
    _owner: Dict[Hashable, int]
    _shard_centers: np.ndarray

    # -- construction ---------------------------------------------------
    def _init_sharding(
        self,
        shards: int,
        assignment: Optional[Sequence[Sequence[Hashable]]] = None,
        rebalance_factor: float = DEFAULT_REBALANCE_FACTOR,
    ) -> None:
        if int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if rebalance_factor < 1.0:
            raise ValueError(
                f"rebalance_factor must be >= 1, got {rebalance_factor}"
            )
        self._requested_shards = int(shards)
        self._rebalance_factor = float(rebalance_factor)
        self.rebalances = 0
        self._scatter: Optional[Any] = None
        self._layout: Optional[PartitionLayout] = None
        self._build_shards(assignment)

    def _build_shards(
        self, assignment: Optional[Sequence[Sequence[Hashable]]] = None
    ) -> None:
        if assignment is None:
            k = min(self._requested_shards, len(self._objects))
            centers = np.stack([obj.mbr.center for obj in self._objects])
            parts = str_partition(centers, k)
            groups = [[self._objects[i] for i in part] for part in parts]
        else:
            groups = [
                [self._by_id[oid] for oid in members] for members in assignment
            ]
            covered = sum(len(members) for members in groups)
            if covered != len(self._objects) or any(
                not members for members in groups
            ):
                raise ValueError(
                    f"shard assignment covers {covered} of "
                    f"{len(self._objects)} objects "
                    "(must partition the dataset into non-empty shards)"
                )
        shards: List[UncertainDataset] = []
        owner: Dict[Hashable, int] = {}
        for index, members in enumerate(groups):
            shard = UncertainDataset(members, page_size=self.page_size)
            # One shared accumulator: shard traversals (packed or pointer)
            # count into the dataset-level AccessStats, exactly like the
            # unsharded index would.
            shard._access_stats = self._access_stats
            shards.append(shard)
            for obj in members:
                owner[obj.oid] = index
        if len(owner) != len(self._objects):
            raise ValueError("shard assignment repeats an object id")
        self._shards = shards
        self._owner = owner
        # Stable routing targets for inserts: the partition-time centroid
        # of each shard.  Deliberately *not* updated per insert, so routing
        # stays deterministic between rebalances.
        self._shard_centers = np.stack(
            [
                np.mean(
                    np.stack([obj.mbr.center for obj in shard._objects]),
                    axis=0,
                )
                for shard in shards
            ]
        )
        self._layout = None
        obs.registry().gauge("shard.count").set(len(shards))

    # -- introspection --------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def requested_shards(self) -> int:
        return self._requested_shards

    def shards(self) -> List[UncertainDataset]:
        """The live per-shard datasets (shared object instances)."""
        return list(self._shards)

    @property
    def layout(self) -> PartitionLayout:
        """The current assignment as an immutable, digest-able value."""
        if self._layout is None:
            self._layout = PartitionLayout(
                shards=tuple(
                    tuple(shard.ids()) for shard in self._shards
                ),
                requested=self._requested_shards,
            )
        return self._layout

    def layout_digest(self) -> Optional[str]:
        return self.layout.digest

    def shard_digest(self) -> str:
        """Layout digest combined with per-shard content digests.

        The incrementally maintainable fingerprint of the *sharded state*:
        a delta touching one shard re-hashes only that shard's (cached
        per-object) digests, and any membership change shows up through
        the layout component.
        """
        hasher = hashlib.sha1()
        hasher.update(self.layout.digest.encode())
        for shard in self._shards:
            hasher.update(shard.content_digest().encode())
        return hasher.hexdigest()

    def shard_summary(self) -> Dict[str, Any]:
        """Shard-level stats for ``info()``/``stats`` surfaces."""
        return {
            "shards": self.shard_count,
            "requested": self._requested_shards,
            "sizes": [len(shard) for shard in self._shards],
            "rebalances": self.rebalances,
            "layout_digest": self.layout.digest,
        }

    # -- index plumbing -------------------------------------------------
    def spatial_index(self, use_numpy: Optional[bool] = None):
        """A :class:`~repro.index.sharded.ShardedIndex` over the shards."""
        from repro.engine.kernels import resolve_use_numpy
        from repro.index.sharded import ShardedIndex

        use = resolve_use_numpy(use_numpy)
        indexes = [
            shard.packed if use else shard.rtree for shard in self._shards
        ]
        scatter = self._scatter
        if scatter is not None and not (use and scatter.fresh_for(self)):
            scatter = None
        return ShardedIndex(indexes, scatter=scatter)

    def warm_index(self, use_numpy: Optional[bool] = None) -> None:
        """Build every structure this dataset's queries will traverse.

        The numpy path freezes each shard's packed snapshot (the global
        packed tree is never queried on a sharded dataset, so it stays
        lazy); the scalar path bulk-loads the global pointer tree (the
        per-object reverse-skyline test still walks it) plus every shard
        tree.
        """
        from repro.engine.kernels import resolve_use_numpy

        if resolve_use_numpy(use_numpy):
            for shard in self._shards:
                shard.packed  # noqa: B018 - freeze per-shard snapshot
        else:
            self.rtree  # noqa: B018 - global pointer tree (scalar paths)
            for shard in self._shards:
                shard.rtree  # noqa: B018 - per-shard pointer trees

    def attach_scatter(self, scatter: Optional[Any]) -> None:
        """Install (or clear) a shard scatter pool for batched filters.

        The pool is consulted by ``spatial_index`` only while it is fresh
        for this dataset's current shard snapshots; after any mutation
        the identity check fails and filters fall back to in-process
        execution until a new pool is attached.
        """
        self._scatter = scatter

    # -- delta routing ---------------------------------------------------
    def _shard_limit(self) -> int:
        k = max(1, min(self._requested_shards, len(self._objects)))
        return max(
            4, math.ceil(self._rebalance_factor * len(self._objects) / k)
        )

    def _repartition(self) -> None:
        self._build_shards(None)
        self.rebalances += 1
        obs.registry().counter("shard.rebalances").inc()

    def _insert_many(self, objects: Sequence[UncertainObject]) -> None:
        super()._insert_many(objects)
        metrics = obs.registry()
        for obj in objects:
            center = obj.mbr.center
            shard = int(
                np.argmin(
                    ((self._shard_centers - center) ** 2).sum(axis=1)
                )
            )
            self._shards[shard]._insert_many((obj,))
            self._owner[obj.oid] = shard
        metrics.counter("shard.routed_inserts").inc(len(objects))
        self._layout = None
        limit = self._shard_limit()
        if any(len(shard) > limit for shard in self._shards):
            self._repartition()

    def _delete_many(self, oids: Sequence[Hashable]) -> List[int]:
        per_shard: Dict[int, List[Hashable]] = {}
        for oid in oids:
            per_shard.setdefault(self._owner[oid], []).append(oid)
        positions = super()._delete_many(oids)
        if any(
            len(group) >= len(self._shards[shard])
            for shard, group in per_shard.items()
        ):
            # The delete would empty a shard (sub-datasets may not be
            # empty): rebuild the partition from the survivors instead.
            self._repartition()
        else:
            for shard, group in per_shard.items():
                self._shards[shard]._delete_many(group)
            for oid in oids:
                del self._owner[oid]
            self._layout = None
        obs.registry().counter("shard.routed_deletes").inc(len(oids))
        return positions

    def _update_many(self, objects: Sequence[UncertainObject]) -> List[int]:
        positions = super()._update_many(objects)
        per_shard: Dict[int, List[UncertainObject]] = {}
        for obj in objects:
            per_shard.setdefault(self._owner[obj.oid], []).append(obj)
        for shard, group in per_shard.items():
            self._shards[shard]._update_many(group)
        # Membership (and therefore the layout) is unchanged: an updated
        # object stays in its shard even if its MBR drifted — the shard
        # root MBR grows to cover it, so pruning stays sound.
        obs.registry().counter("shard.routed_updates").inc(len(objects))
        return positions

    # -- snapshot isolation ----------------------------------------------
    def _clone_shell(self, objects, by_id, index_of):
        clone = super()._clone_shell(objects, by_id, index_of)
        clone._requested_shards = self._requested_shards
        clone._rebalance_factor = self._rebalance_factor
        clone.rebalances = self.rebalances
        clone._scatter = None  # pools never cross snapshot boundaries
        clone._layout = self._layout
        clone._shard_centers = self._shard_centers
        clone._owner = dict(self._owner)
        clone._shards = []  # filled by snapshot()/view()
        return clone

    def _adopt_shard_clones(self, clone, shards) -> None:
        """Point cloned shards at the clone's shared access counter."""
        for shard in shards:
            shard._access_stats = clone._access_stats
            if shard._packed is not None:
                shard._packed.stats = clone._access_stats
        clone._shards = shards

    def snapshot(self, freeze_packed: bool = True):
        # freeze_packed applies per shard; the *global* packed tree is
        # never traversed on a sharded dataset, so it is not frozen.
        clone = super().snapshot(freeze_packed=False)
        self._adopt_shard_clones(
            clone,
            [
                shard.snapshot(freeze_packed=freeze_packed)
                for shard in self._shards
            ],
        )
        return clone

    def view(self):
        clone = super().view()
        self._adopt_shard_clones(
            clone, [shard.view() for shard in self._shards]
        )
        return clone


class ShardedDataset(ShardingMixin, UncertainDataset):
    """An :class:`UncertainDataset` STR-partitioned into k shards."""

    def __init__(
        self,
        objects,
        shards: int = 8,
        page_size: Optional[int] = None,
        rebalance_factor: float = DEFAULT_REBALANCE_FACTOR,
    ):
        kwargs = {} if page_size is None else {"page_size": page_size}
        UncertainDataset.__init__(self, objects, **kwargs)
        self._init_sharding(shards, rebalance_factor=rebalance_factor)

    def __repr__(self) -> str:
        return (
            f"<ShardedDataset n={len(self._objects)} dims={self.dims} "
            f"shards={self.shard_count}/{self._requested_shards} "
            f"rebalances={self.rebalances}>"
        )


class ShardedCertainDataset(ShardingMixin, CertainDataset):
    """A :class:`CertainDataset` STR-partitioned into k shards."""

    def __init__(
        self,
        points,
        ids=None,
        names=None,
        shards: int = 8,
        page_size: Optional[int] = None,
        rebalance_factor: float = DEFAULT_REBALANCE_FACTOR,
    ):
        kwargs = {} if page_size is None else {"page_size": page_size}
        CertainDataset.__init__(self, points, ids=ids, names=names, **kwargs)
        self._init_sharding(shards, rebalance_factor=rebalance_factor)

    def __repr__(self) -> str:
        return (
            f"<ShardedCertainDataset n={len(self._objects)} dims={self.dims} "
            f"shards={self.shard_count}/{self._requested_shards} "
            f"rebalances={self.rebalances}>"
        )


def shard_dataset(
    dataset: UncertainDataset,
    shards: int,
    *,
    assignment: Optional[Sequence[Sequence[Hashable]]] = None,
    rebalance_factor: float = DEFAULT_REBALANCE_FACTOR,
) -> UncertainDataset:
    """Partition *dataset* into an STR-sharded equivalent.

    Objects (with their cached MBRs and digests), the sample tensor and
    the combined content digest are **shared**, so the sharded dataset
    fingerprints identically to its source and no sample bytes move.
    Re-sharding a sharded dataset repartitions from its current contents.

    *assignment* (per-shard id lists) skips the STR computation and
    installs an exact layout — the executor's worker-side handoff, which
    must reproduce the parent's partition bit-for-bit.
    """
    if int(shards) < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    cls = (
        ShardedCertainDataset
        if isinstance(dataset, CertainDataset)
        else ShardedDataset
    )
    out = cls.__new__(cls)
    UncertainDataset.__init__(out, dataset.objects(), page_size=dataset.page_size)
    if isinstance(dataset, CertainDataset):
        out.points = dataset.points
    out._tensor = dataset._tensor
    out._content_digest = dataset._content_digest
    out._init_sharding(
        shards, assignment=assignment, rebalance_factor=rebalance_factor
    )
    return out
