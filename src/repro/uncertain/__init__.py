"""Uncertain data model: discrete samples, possible worlds, continuous pdfs."""

from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import (
    ContinuousUncertainObject,
    TruncatedGaussianObject,
    UniformBoxObject,
)
from repro.uncertain.tensor import DatasetTensor
from repro.uncertain.possible_worlds import (
    MAX_ENUMERABLE_WORLDS,
    is_reverse_skyline_in_world,
    iter_worlds,
    reverse_skyline_probability_bruteforce,
    world_count,
    world_points,
)

__all__ = [
    "CertainDataset",
    "ContinuousUncertainObject",
    "DatasetDelta",
    "DatasetTensor",
    "MAX_ENUMERABLE_WORLDS",
    "TruncatedGaussianObject",
    "UncertainDataset",
    "UncertainObject",
    "UniformBoxObject",
    "is_reverse_skyline_in_world",
    "iter_worlds",
    "reverse_skyline_probability_bruteforce",
    "world_count",
    "world_points",
]
