"""Uncertain data model: discrete samples, possible worlds, continuous pdfs."""

from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.delta import DatasetDelta
from repro.uncertain.object import UncertainObject
from repro.uncertain.pdf import (
    ContinuousUncertainObject,
    TruncatedGaussianObject,
    UniformBoxObject,
)
from repro.uncertain.sharded import (
    PartitionLayout,
    ShardedCertainDataset,
    ShardedDataset,
    shard_dataset,
)
from repro.uncertain.tensor import DatasetTensor
from repro.uncertain.possible_worlds import (
    MAX_ENUMERABLE_WORLDS,
    is_reverse_skyline_in_world,
    iter_worlds,
    reverse_skyline_probability_bruteforce,
    world_count,
    world_points,
)

__all__ = [
    "CertainDataset",
    "ContinuousUncertainObject",
    "DatasetDelta",
    "DatasetTensor",
    "MAX_ENUMERABLE_WORLDS",
    "PartitionLayout",
    "ShardedCertainDataset",
    "ShardedDataset",
    "TruncatedGaussianObject",
    "UncertainDataset",
    "UncertainObject",
    "UniformBoxObject",
    "shard_dataset",
    "is_reverse_skyline_in_world",
    "iter_worlds",
    "reverse_skyline_probability_bruteforce",
    "world_count",
    "world_points",
]
