"""Dataset deltas: declarative single- or multi-object change sets.

A :class:`DatasetDelta` records what changes — which objects to delete,
replace, and insert — without saying how the change is carried out.
:meth:`repro.uncertain.dataset.UncertainDataset.apply_delta` applies one
incrementally (patching the R-tree, the cached tensor, and the cached
content digest in O(changed) work), and
:meth:`repro.engine.session.Session.apply` layers version bumps and cache
invalidation on top.  The engine's :class:`~repro.engine.spec.UpdateSpec`
is the wire form of the same record.

Application order within one delta is fixed and documented: **deletes,
then updates, then inserts**.  Ids must be disjoint across the three op
lists — a delete immediately followed by a re-insert of the same id is an
update, and expressing it as two ops in one delta is almost always a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Tuple

from repro.uncertain.object import UncertainObject


@dataclass(frozen=True)
class DatasetDelta:
    """One atomic change set against a dataset.

    Parameters
    ----------
    deletes:
        Ids of existing objects to remove.
    updates:
        Replacement objects; each must carry the id of an existing object.
    inserts:
        New objects; each id must not exist yet.
    """

    deletes: Tuple[Hashable, ...] = ()
    updates: Tuple[UncertainObject, ...] = ()
    inserts: Tuple[UncertainObject, ...] = ()

    def __post_init__(self):
        if isinstance(self.deletes, str):
            # tuple("hot-1") would silently explode into per-char deletes
            raise TypeError(
                f"deletes must be a sequence of ids, got the bare string "
                f"{self.deletes!r}; wrap it: deletes=({self.deletes!r},)"
            )
        object.__setattr__(self, "deletes", tuple(self.deletes))
        object.__setattr__(self, "updates", tuple(self.updates))
        object.__setattr__(self, "inserts", tuple(self.inserts))
        for name in ("updates", "inserts"):
            for obj in getattr(self, name):
                if not isinstance(obj, UncertainObject):
                    raise TypeError(
                        f"{name} must hold UncertainObject instances, "
                        f"got {type(obj).__name__}"
                    )
        seen = set()
        for oid in self._all_ids():
            if oid in seen:
                raise ValueError(
                    f"id {oid!r} appears in more than one delta op; "
                    "a delete + insert of the same id is an update"
                )
            seen.add(oid)
        if not seen:
            raise ValueError("empty delta: no deletes, updates, or inserts")

    def _all_ids(self) -> Iterable[Hashable]:
        for oid in self.deletes:
            yield oid
        for obj in self.updates:
            yield obj.oid
        for obj in self.inserts:
            yield obj.oid

    # ------------------------------------------------------------------
    # single-op constructors (the Client facade's building blocks)
    # ------------------------------------------------------------------
    @classmethod
    def insertion(cls, obj: UncertainObject) -> "DatasetDelta":
        return cls(inserts=(obj,))

    @classmethod
    def deletion(cls, oid: Hashable) -> "DatasetDelta":
        return cls(deletes=(oid,))

    @classmethod
    def replacement(cls, obj: UncertainObject) -> "DatasetDelta":
        return cls(updates=(obj,))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.deletes) + len(self.updates) + len(self.inserts)

    def __repr__(self) -> str:
        return (
            f"<DatasetDelta -{len(self.deletes)} ~{len(self.updates)} "
            f"+{len(self.inserts)}>"
        )
