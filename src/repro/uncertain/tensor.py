"""Padded tensor view of an uncertain dataset (the Eq. (2)/(3) layout).

The exact-probability kernels in :mod:`repro.engine.kernels` evaluate the
Eq. (3) dominance-probability matrix for one center against *all* relevant
objects in a single broadcast.  That requires the ragged per-object sample
lists to live in one rectangular array, so a :class:`DatasetTensor` packs
the dataset into

* ``samples`` — ``(n, S_max, d)`` float64, object ``i``'s samples in rows
  ``samples[i, :l_i]``, zero-padded beyond;
* ``probabilities`` — ``(n, S_max)`` float64 appearance probabilities,
  zero-padded (a padded slot therefore contributes an exact ``+0.0`` to
  any Eq. (3) sum — a floating-point no-op);
* ``mask`` — ``(n, S_max)`` bool validity mask (``True`` for real samples).

Row order is dataset order, which is the canonical Eq. (2) product order
used by both the tensor and the scalar probability paths.  The tensor is
built lazily by :attr:`repro.uncertain.dataset.UncertainDataset.tensor`
and cached for the dataset's lifetime — sound because
:class:`~repro.uncertain.object.UncertainObject` arrays are immutable.

Live updates never mutate a tensor in place (query code may still hold a
reference): :meth:`~DatasetTensor.with_inserted`,
:meth:`~DatasetTensor.with_deleted` and :meth:`~DatasetTensor.with_replaced`
derive a patched copy with vectorized row operations — re-padding only
when the new object's sample count grows ``S_max`` — which is how a
single-object change avoids the O(n) per-object rebuild loop.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.uncertain.object import UncertainObject


class DatasetTensor:
    """Rectangular (padded + masked) arrays over one object sequence."""

    __slots__ = ("samples", "probabilities", "mask", "ids", "index_of")

    def __init__(self, objects: Sequence[UncertainObject]):
        n = len(objects)
        if n == 0:
            raise ValueError("cannot build a tensor over zero objects")
        dims = objects[0].dims
        s_max = max(obj.num_samples for obj in objects)
        samples = np.zeros((n, s_max, dims), dtype=np.float64)
        probabilities = np.zeros((n, s_max), dtype=np.float64)
        mask = np.zeros((n, s_max), dtype=bool)
        for i, obj in enumerate(objects):
            l = obj.num_samples
            samples[i, :l] = obj.samples
            probabilities[i, :l] = obj.probabilities
            mask[i, :l] = True
        for array in (samples, probabilities, mask):
            array.flags.writeable = False
        self.samples = samples
        self.probabilities = probabilities
        self.mask = mask
        self.ids: List[Hashable] = [obj.oid for obj in objects]
        self.index_of: Dict[Hashable, int] = {
            oid: i for i, oid in enumerate(self.ids)
        }

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.samples.shape[0]

    @property
    def max_samples(self) -> int:
        return self.samples.shape[1]

    @property
    def dims(self) -> int:
        return self.samples.shape[2]

    # ------------------------------------------------------------------
    # derived (patched) tensors — the incremental-update fast path
    # ------------------------------------------------------------------
    @classmethod
    def _from_parts(
        cls,
        samples: np.ndarray,
        probabilities: np.ndarray,
        mask: np.ndarray,
        ids: List[Hashable],
    ) -> "DatasetTensor":
        tensor = cls.__new__(cls)
        for array in (samples, probabilities, mask):
            array.flags.writeable = False
        tensor.samples = samples
        tensor.probabilities = probabilities
        tensor.mask = mask
        tensor.ids = ids
        tensor.index_of = {oid: i for i, oid in enumerate(ids)}
        return tensor

    # ------------------------------------------------------------------
    # pickling (worker handoff): re-freeze the restored arrays
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        # unpickled arrays come back writable; a worker's copy must keep
        # the same read-only contract as the tensor it was cloned from
        for array in (self.samples, self.probabilities, self.mask):
            array.flags.writeable = False

    def _padded_to(self, s_max: int):
        """Writable copies of the arrays, widened to *s_max* slots."""
        n, old, d = self.samples.shape
        grow = s_max - old
        if grow <= 0:
            return (
                self.samples.copy(),
                self.probabilities.copy(),
                self.mask.copy(),
            )
        samples = np.concatenate(
            [self.samples, np.zeros((n, grow, d))], axis=1
        )
        probabilities = np.concatenate(
            [self.probabilities, np.zeros((n, grow))], axis=1
        )
        mask = np.concatenate(
            [self.mask, np.zeros((n, grow), dtype=bool)], axis=1
        )
        return samples, probabilities, mask

    def with_inserted_rows(
        self, objects: Sequence[UncertainObject]
    ) -> "DatasetTensor":
        """A new tensor with *objects* appended, in order, as one copy."""
        n, old_s, d = self.samples.shape
        k = len(objects)
        s_max = max(old_s, max(obj.num_samples for obj in objects))
        # allocate the final arrays once, fill by slice — one O(n) copy
        # for the whole batch, re-padding only when S_max grows
        samples = np.zeros((n + k, s_max, d))
        probabilities = np.zeros((n + k, s_max))
        mask = np.zeros((n + k, s_max), dtype=bool)
        samples[:n, :old_s] = self.samples
        probabilities[:n, :old_s] = self.probabilities
        mask[:n, :old_s] = self.mask
        for offset, obj in enumerate(objects):
            l = obj.num_samples
            samples[n + offset, :l] = obj.samples
            probabilities[n + offset, :l] = obj.probabilities
            mask[n + offset, :l] = True
        return DatasetTensor._from_parts(
            samples, probabilities, mask,
            self.ids + [obj.oid for obj in objects],
        )

    def with_inserted(self, obj: UncertainObject) -> "DatasetTensor":
        """A new tensor with *obj* appended as the last row."""
        return self.with_inserted_rows([obj])

    def with_deleted(self, position: int) -> "DatasetTensor":
        """A new tensor with the row at *position* removed.

        ``S_max`` is kept even if the deleted object was the widest: the
        padding stays masked out, so every kernel result is unchanged and
        no O(n) re-pack is needed.
        """
        return DatasetTensor._from_parts(
            np.delete(self.samples, position, axis=0),
            np.delete(self.probabilities, position, axis=0),
            np.delete(self.mask, position, axis=0),
            self.ids[:position] + self.ids[position + 1:],
        )

    def with_replaced_rows(
        self, replacements: Sequence[Tuple[int, UncertainObject]]
    ) -> "DatasetTensor":
        """A new tensor with every ``(position, object)`` row replaced.

        One O(n) copy covers the whole batch, so a k-update delta costs
        O(n + k·S_max) instead of k full-array copies.
        """
        s_max = max(
            self.max_samples,
            max(obj.num_samples for _pos, obj in replacements),
        )
        samples, probabilities, mask = self._padded_to(s_max)
        ids = list(self.ids)
        for position, obj in replacements:
            l = obj.num_samples
            samples[position] = 0.0
            probabilities[position] = 0.0
            mask[position] = False
            samples[position, :l] = obj.samples
            probabilities[position, :l] = obj.probabilities
            mask[position, :l] = True
            ids[position] = obj.oid
        return DatasetTensor._from_parts(samples, probabilities, mask, ids)

    def with_replaced(
        self, position: int, obj: UncertainObject
    ) -> "DatasetTensor":
        """A new tensor with the row at *position* replaced by *obj*."""
        return self.with_replaced_rows([(position, obj)])

    def with_deleted_rows(self, positions: Sequence[int]) -> "DatasetTensor":
        """A new tensor with all *positions* removed (``P - Γ`` in one shot)."""
        dropped = set(positions)
        idx = np.asarray(sorted(dropped), dtype=np.intp)
        keep = [oid for i, oid in enumerate(self.ids) if i not in dropped]
        return DatasetTensor._from_parts(
            np.delete(self.samples, idx, axis=0),
            np.delete(self.probabilities, idx, axis=0),
            np.delete(self.mask, idx, axis=0),
            keep,
        )

    def narrowed(self, s_max: int) -> "DatasetTensor":
        """A copy with the sample axis cut to *s_max* slots.

        Only valid when every live sample fits (``s_max >=`` the widest
        row's count); :meth:`live_max_samples` reports that bound.  Used
        to re-pack after churn so one transiently wide object does not
        inflate every later kernel broadcast forever.
        """
        return DatasetTensor._from_parts(
            self.samples[:, :s_max].copy(),
            self.probabilities[:, :s_max].copy(),
            self.mask[:, :s_max].copy(),
            list(self.ids),
        )

    def live_max_samples(self) -> int:
        """Widest live row (mask rows are prefix-packed, so sum = count)."""
        return int(self.mask.sum(axis=1).max())

    def rows(self, indices: Sequence[int]):
        """``(samples, probabilities, mask)`` gathered for *indices*.

        The gather preserves the given index order — callers pass sorted
        dataset positions so the Eq. (2) product order is canonical.
        """
        idx = np.asarray(indices, dtype=np.intp)
        return self.samples[idx], self.probabilities[idx], self.mask[idx]

    def __repr__(self) -> str:
        return (
            f"<DatasetTensor n={self.n} max_samples={self.max_samples} "
            f"dims={self.dims}>"
        )
