"""Padded tensor view of an uncertain dataset (the Eq. (2)/(3) layout).

The exact-probability kernels in :mod:`repro.engine.kernels` evaluate the
Eq. (3) dominance-probability matrix for one center against *all* relevant
objects in a single broadcast.  That requires the ragged per-object sample
lists to live in one rectangular array, so a :class:`DatasetTensor` packs
the dataset into

* ``samples`` — ``(n, S_max, d)`` float64, object ``i``'s samples in rows
  ``samples[i, :l_i]``, zero-padded beyond;
* ``probabilities`` — ``(n, S_max)`` float64 appearance probabilities,
  zero-padded (a padded slot therefore contributes an exact ``+0.0`` to
  any Eq. (3) sum — a floating-point no-op);
* ``mask`` — ``(n, S_max)`` bool validity mask (``True`` for real samples).

Row order is dataset order, which is the canonical Eq. (2) product order
used by both the tensor and the scalar probability paths.  The tensor is
built lazily by :attr:`repro.uncertain.dataset.UncertainDataset.tensor`
and cached for the dataset's lifetime — sound because
:class:`~repro.uncertain.object.UncertainObject` arrays are immutable.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from repro.uncertain.object import UncertainObject


class DatasetTensor:
    """Rectangular (padded + masked) arrays over one object sequence."""

    __slots__ = ("samples", "probabilities", "mask", "ids", "index_of")

    def __init__(self, objects: Sequence[UncertainObject]):
        n = len(objects)
        if n == 0:
            raise ValueError("cannot build a tensor over zero objects")
        dims = objects[0].dims
        s_max = max(obj.num_samples for obj in objects)
        samples = np.zeros((n, s_max, dims), dtype=np.float64)
        probabilities = np.zeros((n, s_max), dtype=np.float64)
        mask = np.zeros((n, s_max), dtype=bool)
        for i, obj in enumerate(objects):
            l = obj.num_samples
            samples[i, :l] = obj.samples
            probabilities[i, :l] = obj.probabilities
            mask[i, :l] = True
        for array in (samples, probabilities, mask):
            array.flags.writeable = False
        self.samples = samples
        self.probabilities = probabilities
        self.mask = mask
        self.ids: List[Hashable] = [obj.oid for obj in objects]
        self.index_of: Dict[Hashable, int] = {
            oid: i for i, oid in enumerate(self.ids)
        }

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.samples.shape[0]

    @property
    def max_samples(self) -> int:
        return self.samples.shape[1]

    @property
    def dims(self) -> int:
        return self.samples.shape[2]

    def rows(self, indices: Sequence[int]):
        """``(samples, probabilities, mask)`` gathered for *indices*.

        The gather preserves the given index order — callers pass sorted
        dataset positions so the Eq. (2) product order is canonical.
        """
        idx = np.asarray(indices, dtype=np.intp)
        return self.samples[idx], self.probabilities[idx], self.mask[idx]

    def __repr__(self) -> str:
        return (
            f"<DatasetTensor n={self.n} max_samples={self.max_samples} "
            f"dims={self.dims}>"
        )
