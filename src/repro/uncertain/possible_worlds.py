"""Exact possible-world semantics (ground truth for Eq. (2)).

A *possible world* of an uncertain dataset instantiates every object at
exactly one of its samples; its probability is the product of the chosen
samples' appearance probabilities (objects are independent, Sec. 2.2).
Enumeration is exponential and only used for validation on small inputs —
it is the oracle the fast analytic computation in :mod:`repro.prsq` is
tested against.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterator, Tuple

import numpy as np

from repro.geometry.dominance import dynamically_dominates
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import UncertainDataset

World = Tuple[int, ...]

MAX_ENUMERABLE_WORLDS = 2_000_000


def world_count(dataset: UncertainDataset) -> int:
    count = 1
    for obj in dataset:
        count *= obj.num_samples
    return count


def iter_worlds(dataset: UncertainDataset) -> Iterator[Tuple[World, float]]:
    """Yield ``(sample-index tuple, probability)`` for every possible world.

    Raises ``ValueError`` when the world count exceeds
    :data:`MAX_ENUMERABLE_WORLDS` to protect callers from runaway loops.
    """
    total = world_count(dataset)
    if total > MAX_ENUMERABLE_WORLDS:
        raise ValueError(
            f"{total} possible worlds exceed the enumeration cap "
            f"({MAX_ENUMERABLE_WORLDS}); use the analytic computation instead"
        )
    ranges = [range(obj.num_samples) for obj in dataset]
    for choice in itertools.product(*ranges):
        prob = 1.0
        for obj, idx in zip(dataset, choice):
            prob *= float(obj.probabilities[idx])
        yield choice, prob


def world_points(dataset: UncertainDataset, world: World) -> Dict[Hashable, np.ndarray]:
    """Instantiated object locations for one world."""
    return {
        obj.oid: obj.samples[idx] for obj, idx in zip(dataset, world)
    }


def is_reverse_skyline_in_world(
    dataset: UncertainDataset, world: World, oid: Hashable, q: PointLike
) -> bool:
    """Is *oid* a reverse skyline object of *q* in the given world?

    True iff no other instantiated object dynamically dominates ``q``
    w.r.t. *oid*'s instantiated location.
    """
    points = world_points(dataset, world)
    center = points[oid]
    qq = as_point(q)
    return not any(
        dynamically_dominates(point, qq, center)
        for other_id, point in points.items()
        if other_id != oid
    )


def reverse_skyline_probability_bruteforce(
    dataset: UncertainDataset, oid: Hashable, q: PointLike
) -> float:
    """``Pr(u)`` of Eq. (2) by exhaustive possible-world enumeration."""
    probability = 0.0
    for world, world_prob in iter_worlds(dataset):
        if is_reverse_skyline_in_world(dataset, world, oid, q):
            probability += world_prob
    return probability
