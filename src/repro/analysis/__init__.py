"""``repro.analysis`` — the repo's AST-based invariant linter.

A zero-dependency static-analysis subsystem that machine-checks the
contracts the rest of the codebase proves dynamically: determinism
(RPR001-003), event-loop / single-writer concurrency (RPR101-103),
cache/registry discipline (RPR201-202), and API hygiene (RPR301-303).
One AST walk per file dispatches every rule; inline
``# repro: ignore[RPRxxx]`` suppressions are audited (unused ones are
themselves errors, RPR900); per-path scoping comes from
``[tool.repro.lint]`` in ``pyproject.toml``.

Run it as ``python -m repro lint src tests`` (exit 0 clean, 1 findings,
2 usage/config error), or programmatically::

    from repro.analysis import lint_paths

    findings, files = lint_paths(["src"])
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.config import (
    LintConfig,
    LintConfigError,
    discover_config,
    load_config,
)
from repro.analysis.engine import PARSE_ERROR, FileLinter, LintContext, Rule
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
    report_from_json,
)
from repro.analysis.rules import RULE_CLASSES, all_rules, rules_by_code
from repro.analysis.suppress import UNUSED_SUPPRESSION, SuppressionIndex

__all__ = [
    "ERROR",
    "WARNING",
    "PARSE_ERROR",
    "UNUSED_SUPPRESSION",
    "JSON_SCHEMA_VERSION",
    "Finding",
    "FileLinter",
    "LintConfig",
    "LintConfigError",
    "LintContext",
    "Rule",
    "RULE_CLASSES",
    "SuppressionIndex",
    "all_rules",
    "rules_by_code",
    "discover_config",
    "load_config",
    "render_json",
    "render_text",
    "report_from_json",
    "lint_paths",
    "make_linter",
]


def make_linter(
    config_path: Optional[Path] = None,
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    discover: bool = True,
) -> FileLinter:
    """A ready :class:`FileLinter` with the full rule set.

    With *discover* (the default) and no explicit *config_path*, the
    nearest ``pyproject.toml`` above the working directory is used.
    """
    if config_path is None and discover:
        config_path = discover_config(Path.cwd())
    codes = {cls.code for cls in RULE_CLASSES}
    config = load_config(config_path, codes, select=select, ignore=ignore)
    return FileLinter(all_rules(), config)


def lint_paths(
    paths: Sequence[str],
    config_path: Optional[Path] = None,
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> Tuple[List[Finding], int]:
    """Lint *paths* with discovered/explicit config; ``(findings, files)``."""
    linter = make_linter(config_path, select=select, ignore=ignore)
    return linter.lint_paths([Path(p) for p in paths])
