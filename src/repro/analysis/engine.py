"""The rule-engine core: one AST walk per file, all rules dispatched.

Design
------
A :class:`Rule` declares the node types it cares about
(``node_types``) and a ``check(node, ctx)`` method; the
:class:`FileLinter` parses each file **once**, walks the tree with a
single recursive visitor that maintains the ambient context every rule
needs — enclosing function/class stacks, async-ness, function-local
assignment bindings — and dispatches each node to exactly the rules
registered for its type and active for this file's path.  Adding a rule
never adds a walk.

Per-file cost is therefore one ``ast.parse``, one tokenize pass (for
``# repro: ignore[...]`` suppressions), and one tree traversal,
independent of the rule count.

Rules *report* through :meth:`LintContext.report`; the engine applies
suppressions, then appends :data:`~repro.analysis.suppress.
UNUSED_SUPPRESSION` findings for stale ignores, so no rule ever
re-implements that bookkeeping.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.config import LintConfig
from repro.analysis.findings import ERROR, Finding
from repro.analysis.suppress import SuppressionIndex

#: Finding code for files that do not parse.
PARSE_ERROR = "RPR999"


class Rule:
    """Base class for one lint rule.

    Subclasses set ``code`` (``RPRxxx``), ``name`` (short kebab slug),
    ``severity``, a one-line ``rationale`` (surfaced by ``--explain`` and
    the README table), the ``node_types`` tuple they want dispatched, and
    the default path scoping (``default_paths`` — empty means every file —
    and ``default_exclude``).
    """

    code: str = "RPR000"
    name: str = "abstract"
    severity: str = ERROR
    rationale: str = ""
    node_types: Tuple[type, ...] = ()
    default_paths: Tuple[str, ...] = ()
    default_exclude: Tuple[str, ...] = ()

    def check(self, node: ast.AST, ctx: "LintContext") -> None:
        raise NotImplementedError


class _FunctionFrame:
    """Per-function ambient state (assignment bindings for key tracing)."""

    __slots__ = ("node", "is_async", "assignments")

    def __init__(self, node: ast.AST, is_async: bool):
        self.node = node
        self.is_async = is_async
        #: simple name -> the last AST expression assigned to it (used by
        #: rules that trace a value one hop, e.g. the cache-key rule)
        self.assignments: Dict[str, ast.AST] = {}


class LintContext:
    """Everything a rule may consult while checking one node."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.source = source
        self.func_stack: List[_FunctionFrame] = []
        self.class_stack: List[ast.ClassDef] = []
        self._findings: List[Tuple[str, Finding]] = []

    # -- ambient queries -------------------------------------------------
    @property
    def current_function(self) -> Optional[ast.AST]:
        return self.func_stack[-1].node if self.func_stack else None

    @property
    def in_async_function(self) -> bool:
        """True iff the *innermost* enclosing function is ``async def``."""
        return bool(self.func_stack) and self.func_stack[-1].is_async

    def enclosing_function_names(self) -> List[str]:
        return [
            frame.node.name
            for frame in self.func_stack
            if isinstance(frame.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def resolve_name(self, node: ast.AST) -> ast.AST:
        """One-hop resolution: a bare Name becomes its last assigned
        expression in the current function, when known."""
        if isinstance(node, ast.Name) and self.func_stack:
            return self.func_stack[-1].assignments.get(node.id, node)
        return node

    # -- reporting -------------------------------------------------------
    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self._findings.append(
            (
                rule.code,
                Finding(
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    code=rule.code,
                    severity=rule.severity,
                    message=message,
                ),
            )
        )


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain; ``""`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")  # call/subscript base: keep the attr tail
    return ".".join(reversed(parts))


def contains_await(node: ast.AST) -> bool:
    """Does *node*'s subtree await, ignoring nested function bodies?"""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        if contains_await(child):
            return True
    return False


def subtree_mentions(node: ast.AST, tokens: Sequence[str]) -> bool:
    """Does any Name/Attribute/Call-name in *node* contain one of *tokens*?"""
    for sub in ast.walk(node):
        text = ""
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        if text and any(token in text for token in tokens):
            return True
    return False


class FileLinter:
    """Runs a fixed rule set over files, honoring config scoping."""

    def __init__(self, rules: Sequence[Rule], config: LintConfig):
        self.rules = list(rules)
        self.config = config
        codes = [rule.code for rule in self.rules]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate rule codes in {codes}")
        self.active: Set[str] = config.active_codes(codes)
        self._by_type: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            if rule.code not in self.active:
                continue
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)

    # ------------------------------------------------------------------
    def rel_path(self, path: Path) -> str:
        """Path relative to the config root (posix), for glob scoping."""
        resolved = path.resolve()
        root = self.config.root
        if root is not None:
            try:
                return resolved.relative_to(root).as_posix()
            except ValueError:
                pass
        try:
            return resolved.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return resolved.as_posix()

    def _rules_for(self, rel: str) -> Dict[type, List[Rule]]:
        by_type: Dict[type, List[Rule]] = {}
        for node_type, rules in self._by_type.items():
            scoped = [
                rule
                for rule in rules
                if self.config.rule_applies(
                    rule.code, rel, rule.default_paths, rule.default_exclude
                )
            ]
            if scoped:
                by_type[node_type] = scoped
        return by_type

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: Path) -> List[Finding]:
        """Lint one in-memory module (the fixture-test entry point)."""
        rel = self.rel_path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code=PARSE_ERROR,
                    severity=ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        suppressions = SuppressionIndex(source)
        ctx = LintContext(rel, tree, source)
        self._walk(tree, ctx, self._rules_for(rel))

        kept: List[Finding] = []
        for code, finding in ctx._findings:
            if not suppressions.suppresses(finding.line, code):
                kept.append(finding)
        kept.extend(suppressions.unused_findings(rel, self.active))
        kept.sort()
        return kept

    def lint_file(self, path: Path) -> List[Finding]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Finding(
                    path=self.rel_path(path),
                    line=1,
                    col=0,
                    code=PARSE_ERROR,
                    severity=ERROR,
                    message=f"cannot read file: {exc}",
                )
            ]
        return self.lint_source(source, path)

    def lint_paths(self, paths: Iterable[Path]) -> Tuple[List[Finding], int]:
        """Lint ``.py`` files under *paths*; returns (findings, file count).

        Directories recurse (sorted, so output order is stable across
        filesystems); explicit files are linted whatever their suffix.
        """
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        findings: List[Finding] = []
        for file_path in files:
            findings.extend(self.lint_file(file_path))
        return findings, len(files)

    # ------------------------------------------------------------------
    def _walk(
        self,
        node: ast.AST,
        ctx: LintContext,
        by_type: Dict[type, List[Rule]],
    ) -> None:
        for rule in by_type.get(type(node), ()):
            rule.check(node, ctx)

        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_func:
            ctx.func_stack.append(
                _FunctionFrame(node, isinstance(node, ast.AsyncFunctionDef))
            )
        elif isinstance(node, ast.Lambda):
            # a lambda body is not the enclosing async function's body
            ctx.func_stack.append(_FunctionFrame(node, False))
        elif is_class:
            ctx.class_stack.append(node)
        elif (
            isinstance(node, ast.Assign)
            and ctx.func_stack
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            ctx.func_stack[-1].assignments[node.targets[0].id] = node.value

        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, by_type)

        if is_func or isinstance(node, ast.Lambda):
            ctx.func_stack.pop()
        elif is_class:
            ctx.class_stack.pop()
