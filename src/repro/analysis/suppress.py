"""Inline suppressions: ``# repro: ignore[RPRxxx]`` comments.

A suppression silences specific rule codes on the physical line the
comment sits on (for multi-line constructs, that is the line the node's
``lineno`` points at — the first line).  Suppressions are *audited*: one
that silences nothing is itself an error (:data:`UNUSED_SUPPRESSION`),
so stale ignores can never accumulate and quietly mask a future
regression — the same contract ``mypy``'s ``warn_unused_ignores`` and
ruff's ``--extend-select RUF100`` enforce.

Parsing is tokenizer-based, so a ``# repro: ignore[...]`` inside a string
literal is never treated as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import ERROR, Finding

#: Meta-code for a suppression comment that silenced no finding.
UNUSED_SUPPRESSION = "RPR900"

_PATTERN = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]"
)


class SuppressionIndex:
    """Per-file map of line -> suppressed codes, with usage accounting."""

    def __init__(self, source: str):
        #: line -> set of codes suppressed on that line
        self.by_line: Dict[int, Set[str]] = {}
        self._used: Set[Tuple[int, str]] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _PATTERN.search(token.string)
                if match is None:
                    continue
                codes = {
                    part.strip().upper()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                if codes:
                    line = token.start[0]
                    self.by_line.setdefault(line, set()).update(codes)
        except tokenize.TokenError:
            # An unterminated construct: the AST parse will report the
            # syntax error; suppressions simply don't apply.
            pass

    # ------------------------------------------------------------------
    def suppresses(self, line: int, code: str) -> bool:
        """True (and marks the suppression used) if *code* is ignored on
        *line*."""
        codes = self.by_line.get(line)
        if codes is None or code not in codes:
            return False
        self._used.add((line, code))
        return True

    def unused(self, active_codes: Set[str]) -> List[Tuple[int, str]]:
        """``(line, code)`` suppressions that silenced nothing.

        Codes outside *active_codes* (deselected via config or ``--select``)
        are skipped: a narrowed run must not flag suppressions whose rule
        it never executed.  Unknown codes are always reported — they can
        never silence anything.
        """
        out = []
        for line, codes in sorted(self.by_line.items()):
            for code in sorted(codes):
                if (line, code) in self._used:
                    continue
                if code.startswith("RPR") and code not in active_codes:
                    continue
                out.append((line, code))
        return out

    def unused_findings(self, path: str, active_codes: Set[str]) -> List[Finding]:
        return [
            Finding(
                path=path,
                line=line,
                col=0,
                code=UNUSED_SUPPRESSION,
                severity=ERROR,
                message=(
                    f"unused suppression: no {code} finding on this line "
                    "(remove the stale '# repro: ignore')"
                ),
            )
            for line, code in self.unused(active_codes)
        ]
