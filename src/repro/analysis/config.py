"""Lint configuration: rule selection plus per-path rule scoping.

Every rule ships sensible defaults (its ``default_paths`` /
``default_exclude`` globs encode *where the contract applies* — e.g. the
determinism rules exempt ``repro/bench``, where wall-clock timestamps are
the point).  A ``pyproject.toml`` overlays repo-specific scoping::

    [tool.repro.lint]
    select = []          # empty = every rule
    ignore = []          # codes disabled everywhere

    [tool.repro.lint.rules.RPR303]
    exclude = ["src/repro/io/cli.py", "tests/*"]

    [tool.repro.lint.rules.RPR103]
    paths = ["src/repro/serve/*"]

``paths`` replaces the rule's active globs (empty/omitted = the rule's
default), ``exclude`` *extends* the rule's default exclusions.  Globs use
:mod:`fnmatch` semantics against ``/``-separated paths relative to the
config root (``*`` crosses directory separators, so ``src/repro/bench/*``
covers the whole subtree).

Config errors — an unreadable/invalid TOML file, an unknown code in
``select``/``ignore``/``rules`` — raise :class:`LintConfigError`, which
the CLI maps to exit code 2 (usage error), distinct from exit 1
(findings).
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple


class LintConfigError(Exception):
    """Invalid lint configuration (exit code 2, not a finding)."""


_CODE_RE_HINT = "rule codes look like RPR001"


def _normalize_codes(label: str, values: Sequence[str], known: Set[str]) -> Tuple[str, ...]:
    out = []
    for value in values:
        code = str(value).strip().upper()
        if code not in known:
            raise LintConfigError(
                f"{label}: unknown rule code {code!r} "
                f"({_CODE_RE_HINT}; known: {', '.join(sorted(known))})"
            )
        out.append(code)
    return tuple(out)


@dataclass(frozen=True)
class RuleScope:
    """Per-rule path overrides layered on the rule's own defaults."""

    paths: Tuple[str, ...] = ()    # empty = keep the rule's default_paths
    exclude: Tuple[str, ...] = ()  # extends the rule's default_exclude


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    scopes: Dict[str, RuleScope] = field(default_factory=dict)
    root: Optional[Path] = None  # globs resolve relative to this

    # ------------------------------------------------------------------
    def active_codes(self, all_codes: Sequence[str]) -> Set[str]:
        """The codes this run executes, after select/ignore."""
        active = set(self.select) if self.select else set(all_codes)
        return active - set(self.ignore)

    def rule_applies(
        self,
        code: str,
        rel_path: str,
        default_paths: Sequence[str],
        default_exclude: Sequence[str],
    ) -> bool:
        """Does *code* run on *rel_path* (posix, config-root-relative)?"""
        scope = self.scopes.get(code)
        paths = (
            scope.paths if scope is not None and scope.paths else default_paths
        )
        exclude = tuple(default_exclude)
        if scope is not None:
            exclude += scope.exclude
        if paths and not any(fnmatch.fnmatch(rel_path, g) for g in paths):
            return False
        return not any(fnmatch.fnmatch(rel_path, g) for g in exclude)


def _as_str_list(label: str, value: object) -> List[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{label} must be an array of strings")
    return value


def load_config(
    config_path: Optional[Path],
    known_codes: Set[str],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> LintConfig:
    """Build a :class:`LintConfig` from pyproject TOML + CLI overrides.

    *config_path* of ``None`` means "no file": CLI flags only.  CLI
    ``select``/``ignore`` override (not extend) the file's lists, matching
    the usual linter convention.
    """
    file_select: Tuple[str, ...] = ()
    file_ignore: Tuple[str, ...] = ()
    scopes: Dict[str, RuleScope] = {}
    root: Optional[Path] = None

    if config_path is not None:
        try:
            payload = tomllib.loads(config_path.read_text())
        except OSError as exc:
            raise LintConfigError(f"cannot read {config_path}: {exc}") from exc
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(f"{config_path}: invalid TOML: {exc}") from exc
        root = config_path.resolve().parent
        section = payload.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(section, dict):
            raise LintConfigError(
                f"{config_path}: [tool.repro.lint] must be a table"
            )
        file_select = _normalize_codes(
            "[tool.repro.lint] select",
            _as_str_list("select", section.get("select", [])),
            known_codes,
        )
        file_ignore = _normalize_codes(
            "[tool.repro.lint] ignore",
            _as_str_list("ignore", section.get("ignore", [])),
            known_codes,
        )
        rules = section.get("rules", {})
        if not isinstance(rules, dict):
            raise LintConfigError(
                f"{config_path}: [tool.repro.lint.rules] must be a table"
            )
        for code, entry in rules.items():
            code = str(code).strip().upper()
            if code not in known_codes:
                raise LintConfigError(
                    f"{config_path}: [tool.repro.lint.rules.{code}]: "
                    f"unknown rule code ({_CODE_RE_HINT})"
                )
            if not isinstance(entry, dict):
                raise LintConfigError(
                    f"{config_path}: [tool.repro.lint.rules.{code}] "
                    "must be a table with 'paths' and/or 'exclude'"
                )
            unknown = set(entry) - {"paths", "exclude"}
            if unknown:
                raise LintConfigError(
                    f"{config_path}: [tool.repro.lint.rules.{code}]: "
                    f"unknown key(s) {sorted(unknown)}"
                )
            scopes[code] = RuleScope(
                paths=tuple(
                    _as_str_list(f"rules.{code}.paths", entry.get("paths", []))
                ),
                exclude=tuple(
                    _as_str_list(
                        f"rules.{code}.exclude", entry.get("exclude", [])
                    )
                ),
            )

    return LintConfig(
        select=(
            _normalize_codes("--select", select, known_codes)
            if select
            else file_select
        ),
        ignore=(
            _normalize_codes("--ignore", ignore, known_codes)
            if ignore
            else file_ignore
        ),
        scopes=scopes,
        root=root,
    )


def discover_config(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above *start* that has a
    ``[tool.repro.lint]`` table (or any pyproject at all, for root
    resolution)."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate_dir in (current, *current.parents):
        candidate = candidate_dir / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
