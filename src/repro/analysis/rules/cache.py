"""Cache/registry-discipline rules.

The LRU result cache is shared across sessions, datasets, versions and
shard layouts; its soundness rests on two structural conventions that
nothing previously checked:

* every :class:`~repro.engine.spec.QuerySpec` subclass states its
  ``cacheable`` / ``mutates`` contract **explicitly** (PR 4's update
  family exists precisely because the defaults were wrong for it — a
  cached mutation silently does not run, a worker-fanned mutation is
  silently lost);
* every cache key contains the dataset fingerprint / layout digest, the
  component that makes stale hits impossible after live updates.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import LintContext, Rule, dotted_name, subtree_mentions


class SpecContractRule(Rule):
    """RPR201: spec classes declare ``cacheable`` and ``mutates``.

    Inheriting the base defaults silently is how the wrong contract ships:
    a new family with side effects that forgets ``cacheable = False`` will
    serve its second invocation from the cache and never run.  Every
    ``QuerySpec`` subclass must therefore write both flags down, even when
    they match the defaults.
    """

    code = "RPR201"
    name = "spec-contract"
    rationale = (
        "a QuerySpec family that inherits cacheable/mutates implicitly can "
        "ship the wrong caching contract; declare both explicitly"
    )
    node_types = (ast.ClassDef,)

    _REQUIRED = ("cacheable", "mutates")

    def check(self, node: ast.ClassDef, ctx: LintContext) -> None:
        if not any(
            dotted_name(base).split(".")[-1] == "QuerySpec"
            for base in node.bases
        ):
            return
        declared = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                declared.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                declared.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                )
        missing = [f for f in self._REQUIRED if f not in declared]
        if missing:
            ctx.report(
                self,
                node,
                f"QuerySpec subclass {node.name} must declare "
                f"{', '.join(missing)} explicitly (ClassVar[bool]): implicit "
                "caching contracts are how mutations get cache-skipped",
            )


class CacheKeyFingerprintRule(Rule):
    """RPR202: cache keys must carry the fingerprint/layout component.

    A key passed to ``*.cache.get_or_compute(...)`` / ``*cache*.put(...)``
    must derive from ``Session._key()`` (which folds in the dataset
    fingerprint and, when sharded, the partition-layout digest) or
    visibly include a fingerprint/digest.  A key built from the spec
    alone serves stale results after any live update.
    """

    code = "RPR202"
    name = "cache-key-fingerprint"
    rationale = (
        "a cache key without the dataset fingerprint/layout digest serves "
        "stale results after live updates; build keys via Session._key()"
    )
    node_types = (ast.Call,)
    default_paths = ("src/repro/*",)
    # the cache implementation itself defines these methods
    default_exclude = ("src/repro/engine/cache.py",)

    _KEY_TOKENS = ("_key", "cache_key", "fingerprint", "digest")

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("get_or_compute", "put"):
            return
        receiver = dotted_name(func.value)
        if "cache" not in receiver.lower():
            return
        if not node.args:
            return
        key_expr = ctx.resolve_name(node.args[0])
        if isinstance(key_expr, ast.Name):
            # an argument/nonlocal we cannot trace: not provably wrong
            return
        if subtree_mentions(key_expr, self._KEY_TOKENS):
            return
        ctx.report(
            self,
            node,
            f"cache key for {receiver}.{func.attr}() has no fingerprint/"
            "layout-digest component; build it with Session._key(...) so "
            "live updates can never serve stale entries",
        )
