"""Determinism rules: the bit-identical-results contract, statically.

The engine's hardest property is that every query result is bit-identical
across runs, kernels, shard counts, and worker fan-out.  Three things
have historically threatened it: wall-clock reads leaking into outputs,
unseeded random number generation, and iteration order of unordered
containers flowing into result positions (the PR 3 bug class — a
``set()`` of R-tree hits fed Eq. (2)'s product order and flipped result
bits between runs).
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.analysis.engine import LintContext, Rule, dotted_name

#: Paths where determinism is the contract.  Benchmarks and reporters
#: legitimately timestamp their reports; the obs tracer's *default* clock
#: is the injectable seam itself.
_LIB_PATHS: Tuple[str, ...] = ("src/repro/*",)
_CLOCK_EXEMPT: Tuple[str, ...] = ("src/repro/bench/*",)


class WallClockRule(Rule):
    """RPR001: no wall-clock reads in engine code.

    ``time.time()`` / ``datetime.now()`` values drift between runs and
    hosts; anything derived from them that reaches a result envelope,
    cache key, or trace breaks byte-stable replay.  Durations must use
    ``time.monotonic()`` / ``time.perf_counter()``; timestamps belong in
    benchmarks/reporters or behind the ``Tracer(clock=...)`` seam.
    """

    code = "RPR001"
    name = "wall-clock"
    rationale = (
        "wall-clock reads drift across runs/hosts; use monotonic clocks "
        "or the obs injected-clock seam"
    )
    node_types = (ast.Call,)
    default_paths = _LIB_PATHS
    default_exclude = _CLOCK_EXEMPT

    _WALL_TAILS = {
        ("time", "time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        parts = dotted_name(node.func).split(".")
        if len(parts) >= 2 and tuple(parts[-2:]) in self._WALL_TAILS:
            ctx.report(
                self,
                node,
                f"wall-clock call {'.'.join(parts)}(): use time.monotonic()/"
                "perf_counter() for durations, or confine timestamps to "
                "benchmarks/reporters (obs clocks are injectable)",
            )


class UnseededRngRule(Rule):
    """RPR002: no unseeded or global-state randomness outside the seam.

    All randomness flows through :mod:`repro.datasets.rng` (or an
    explicitly seeded ``default_rng(seed)``): ``default_rng()`` with no
    seed and the global-state ``random.*`` / ``np.random.*`` module
    functions give run-varying streams that break replay and the
    hypothesis bit-parity suites.
    """

    code = "RPR002"
    name = "unseeded-rng"
    rationale = (
        "unseeded default_rng() / global random.* state varies per run; "
        "route randomness through datasets/rng.py or pass a seed"
    )
    node_types = (ast.Call,)
    default_paths = _LIB_PATHS
    default_exclude = _CLOCK_EXEMPT + ("src/repro/datasets/rng.py",)

    #: numpy legacy global-state functions (np.random.<fn>)
    _NP_LEGACY = {
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "seed", "uniform", "normal", "beta",
        "binomial", "poisson", "exponential",
    }

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        parts = dotted_name(node.func).split(".")
        if not parts or parts == [""]:
            return
        tail = parts[-1]
        if tail == "default_rng" and not node.args and not node.keywords:
            ctx.report(
                self,
                node,
                "default_rng() without a seed gives a run-varying stream; "
                "pass an explicit seed or accept an rng parameter "
                "(see repro.datasets.rng.make_rng)",
            )
            return
        if len(parts) >= 2 and parts[-2] == "random":
            base = parts[0]
            if base in ("np", "numpy") and tail in self._NP_LEGACY:
                ctx.report(
                    self,
                    node,
                    f"np.random.{tail}() uses hidden global RNG state; "
                    "use a seeded np.random.Generator instead",
                )
            elif base == "random" and len(parts) == 2 and tail != "Random":
                ctx.report(
                    self,
                    node,
                    f"random.{tail}() uses the process-global RNG; use a "
                    "seeded random.Random(seed) or numpy Generator",
                )
        elif tail == "Random" and parts[-2:] == ["random", "Random"] and not (
            node.args or node.keywords
        ):
            ctx.report(
                self,
                node,
                "random.Random() without a seed is run-varying; pass a seed",
            )


class UnorderedIterationRule(Rule):
    """RPR003: no raw set/dict-view iteration in result-ordering code.

    In the ordering-sensitive subsystems (engine, prsq, index, uncertain,
    core) a ``for`` / comprehension directly over ``set(...)``, a set
    literal/comprehension, or ``.values()`` / ``.keys()`` views lets hash
    or insertion order leak into result positions — the exact PR 3 bug
    (Eq. (2) product order came from a hit ``set``).  Canonicalize first:
    ``sorted(...)``, an explicit key, or dataset order.
    """

    code = "RPR003"
    name = "unordered-iteration"
    rationale = (
        "set/dict-view iteration order can leak into result bits "
        "(the PR 3 bug class); sort or canonicalize before iterating"
    )
    node_types = (ast.For, ast.comprehension)
    default_paths = (
        "src/repro/engine/*",
        "src/repro/prsq/*",
        "src/repro/index/*",
        "src/repro/uncertain/*",
        "src/repro/core/*",
    )

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        iter_expr = node.iter
        offender = self._unordered(iter_expr, ctx)
        if offender is not None:
            ctx.report(
                self,
                iter_expr if hasattr(iter_expr, "lineno") else node,
                f"iteration over {offender} has no canonical order and can "
                "leak into result ordering; wrap in sorted(..., key=...) or "
                "iterate a canonically ordered sequence",
            )

    def _unordered(self, expr: ast.AST, ctx: LintContext) -> Optional[str]:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name == "set":
                return "set(...)"
            if name.endswith((".values", ".keys")) and not expr.args:
                return f"{name}()"
            if name in ("frozenset",):
                return "frozenset(...)"
        return None
