"""Concurrency rules: the serve layer's event-loop and single-writer
contracts.

The asyncio server multiplexes every connection onto one event loop; a
single blocking call in a coroutine stalls *all* of them (PR 7 pushes
blocking work onto the thread pool via ``run_in_executor`` for exactly
this reason).  The snapshot-isolation story additionally requires that
service state is only mutated through the :class:`~repro.serve.writer.
SingleWriter` seam — a mutation from a read path would race the writer
and break the "response echoes its session_version" property.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import (
    LintContext,
    Rule,
    contains_await,
    dotted_name,
    subtree_mentions,
)


class BlockingCallInAsyncRule(Rule):
    """RPR101: no blocking calls in ``async def`` bodies.

    ``time.sleep``, synchronous socket/file I/O, and ``subprocess`` calls
    freeze the event loop for every connection.  Use ``asyncio.sleep``,
    stream APIs, or ``loop.run_in_executor(pool, fn, ...)`` (passing the
    callable, not calling it).
    """

    code = "RPR101"
    name = "blocking-in-async"
    rationale = (
        "a blocking call inside async def stalls the whole event loop; "
        "await an async API or push it onto the executor pool"
    )
    node_types = (ast.Call,)
    default_paths = ("src/repro/*",)

    _BLOCKING = {
        "time.sleep": "asyncio.sleep",
        "subprocess.run": "loop.run_in_executor",
        "subprocess.call": "loop.run_in_executor",
        "subprocess.check_call": "loop.run_in_executor",
        "subprocess.check_output": "loop.run_in_executor",
        "subprocess.Popen": "asyncio.create_subprocess_exec",
        "socket.create_connection": "asyncio.open_connection",
        "socket.getaddrinfo": "loop.getaddrinfo",
        "os.system": "asyncio.create_subprocess_shell",
        "urllib.request.urlopen": "loop.run_in_executor",
    }
    _BLOCKING_BARE = {
        "open": "loop.run_in_executor (or read before entering the loop)",
    }
    _BLOCKING_TAILS = {
        "read_text": "loop.run_in_executor",
        "write_text": "loop.run_in_executor",
        "read_bytes": "loop.run_in_executor",
        "write_bytes": "loop.run_in_executor",
    }

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        if not ctx.in_async_function:
            return
        name = dotted_name(node.func)
        hint: Optional[str] = None
        if name in self._BLOCKING:
            hint = self._BLOCKING[name]
        elif name in self._BLOCKING_BARE:
            hint = self._BLOCKING_BARE[name]
        else:
            tail = name.rsplit(".", 1)[-1]
            if "." in name and tail in self._BLOCKING_TAILS:
                hint = self._BLOCKING_TAILS[tail]
        if hint is not None:
            ctx.report(
                self,
                node,
                f"blocking call {name}() inside async def blocks the event "
                f"loop; use {hint}",
            )


class LockAcrossAwaitRule(Rule):
    """RPR102: no sync lock held across an ``await``.

    A ``with some_lock:`` block that awaits parks the coroutine while the
    *thread* lock stays held; any pool thread (or another coroutine
    resumed on the loop) touching the same lock then deadlocks the
    server.  Release before awaiting, or use ``asyncio.Lock``.
    """

    code = "RPR102"
    name = "lock-across-await"
    rationale = (
        "a threading lock held across an await is a deadlock seed: the "
        "coroutine parks, the lock stays taken"
    )
    node_types = (ast.With,)
    default_paths = ("src/repro/*",)

    _LOCK_TOKENS = ("lock", "Lock", "mutex", "Semaphore", "Condition")

    def check(self, node: ast.With, ctx: LintContext) -> None:
        if not ctx.in_async_function:
            return
        if not contains_await(node):
            return
        for item in node.items:
            expr = item.context_expr
            if subtree_mentions(expr, self._LOCK_TOKENS):
                ctx.report(
                    self,
                    node,
                    f"sync lock {ast.unparse(expr)!r} held across an await; "
                    "release it before awaiting or use asyncio.Lock",
                )
                return


class SingleWriterSeamRule(Rule):
    """RPR103: serve-layer state mutates only through the writer seam.

    In :mod:`repro.serve`, dataset mutation (``session.apply`` /
    ``apply_delta`` / ``insert_object`` / ...) and snapshot publication
    (``*.published = ...``) are legal **only** inside the single-writer
    apply callback (``_apply_write``) — anywhere else they race the
    writer queue and void snapshot isolation.
    """

    code = "RPR103"
    name = "single-writer-seam"
    rationale = (
        "mutating service state outside the SingleWriter apply seam races "
        "the write queue and breaks snapshot isolation"
    )
    node_types = (ast.Call, ast.Assign, ast.AugAssign)
    default_paths = ("src/repro/serve/*",)

    _MUTATORS = {
        "apply",
        "apply_delta",
        "replace_dataset",
        "insert_object",
        "delete_object",
        "update_object",
    }
    _ALLOWED_FUNCS = {"_apply_write", "__init__"}

    def _in_seam(self, ctx: LintContext) -> bool:
        names = ctx.enclosing_function_names()
        return any(name in self._ALLOWED_FUNCS for name in names)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        if self._in_seam(ctx):
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._MUTATORS
                and subtree_mentions(func.value, ("session", "dataset"))
            ):
                ctx.report(
                    self,
                    node,
                    f".{func.attr}(...) mutates session state outside the "
                    "SingleWriter seam; route it through writer.submit() so "
                    "the apply callback publishes the snapshot",
                )
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "published":
                ctx.report(
                    self,
                    node,
                    "assignment to .published outside the SingleWriter apply "
                    "callback; snapshots may only be published after a "
                    "successful serialized write",
                )
                return
