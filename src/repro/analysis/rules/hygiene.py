"""API-hygiene rules: classic Python footguns the repo bans outright."""

from __future__ import annotations

import ast

from repro.analysis.engine import LintContext, Rule, dotted_name
from repro.analysis.findings import WARNING


class MutableDefaultRule(Rule):
    """RPR301: no mutable default arguments.

    A ``def f(x=[])`` default is created once and shared by every call;
    state leaks across invocations (and across sessions, for long-lived
    engine objects).  Use ``None`` plus an in-body default.
    """

    code = "RPR301"
    name = "mutable-default"
    rationale = (
        "mutable default arguments are shared across calls; default to "
        "None and materialize inside the function"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _FACTORIES = {"list", "dict", "set", "bytearray"}

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(
            default,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(default, ast.Call):
            return dotted_name(default.func) in self._FACTORIES
        return False

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and self._is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in {name}(): evaluated once "
                    "and shared by every call; use None and build it in "
                    "the body",
                )


class BareExceptRule(Rule):
    """RPR302: no bare ``except:``.

    A bare except swallows ``KeyboardInterrupt``/``SystemExit`` too — the
    CLI's graceful-shutdown discipline (flush NDJSON, close the tracer,
    exit 130) depends on those propagating.  Catch a concrete exception
    type, or ``Exception`` at the very least.
    """

    code = "RPR302"
    name = "bare-except"
    rationale = (
        "bare except: swallows KeyboardInterrupt/SystemExit and hides the "
        "graceful-shutdown path; name the exception type"
    )
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.ExceptHandler, ctx: LintContext) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except: catches KeyboardInterrupt and SystemExit; "
                "catch a concrete exception type (Exception at broadest)",
            )


class PrintInLibraryRule(Rule):
    """RPR303: no ``print()`` in library code.

    Engine/serve/index code emits through envelopes, the metrics
    registry, or the tracer; a stray print corrupts the NDJSON streams
    the CLI and server write to stdout.  Only the CLI front-ends and
    reporters print.
    """

    code = "RPR303"
    name = "print-in-library"
    severity = WARNING
    rationale = (
        "library prints corrupt the CLI/server NDJSON stdout streams; "
        "emit through envelopes, metrics, or the tracer"
    )
    node_types = (ast.Call,)
    default_paths = ("src/repro/*",)
    default_exclude = (
        "src/repro/io/cli.py",
        "src/repro/analysis/cli.py",
        "src/repro/bench/*",
    )

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self,
                node,
                "print() in library code writes into the CLI/server stdout "
                "protocol streams; return data or log through repro.obs",
            )
