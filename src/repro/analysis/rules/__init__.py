"""The rule registry: every active rule, in code order.

Import-time assembly keeps the table declarative; :func:`all_rules`
returns fresh instances so two concurrent :class:`~repro.analysis.
engine.FileLinter` objects never share rule state.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.cache import CacheKeyFingerprintRule, SpecContractRule
from repro.analysis.rules.concurrency import (
    BlockingCallInAsyncRule,
    LockAcrossAwaitRule,
    SingleWriterSeamRule,
)
from repro.analysis.rules.determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.rules.hygiene import (
    BareExceptRule,
    MutableDefaultRule,
    PrintInLibraryRule,
)

#: Code-ordered rule classes — the authoritative table the CLI, the
#: README generator, and the tests all enumerate.
RULE_CLASSES: List[Type[Rule]] = [
    WallClockRule,          # RPR001
    UnseededRngRule,        # RPR002
    UnorderedIterationRule, # RPR003
    BlockingCallInAsyncRule,  # RPR101
    LockAcrossAwaitRule,      # RPR102
    SingleWriterSeamRule,     # RPR103
    SpecContractRule,         # RPR201
    CacheKeyFingerprintRule,  # RPR202
    MutableDefaultRule,       # RPR301
    BareExceptRule,           # RPR302
    PrintInLibraryRule,       # RPR303
]


def all_rules() -> List[Rule]:
    return [cls() for cls in RULE_CLASSES]


def rules_by_code() -> Dict[str, Type[Rule]]:
    return {cls.code: cls for cls in RULE_CLASSES}
