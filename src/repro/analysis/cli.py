"""The ``repro lint`` front-end.

Exit codes are part of the CI contract and stable:

* ``0`` — clean (no non-suppressed findings)
* ``1`` — findings reported
* ``2`` — usage or configuration error (unknown rule code, unreadable
  config/path, invalid TOML) — argparse's own convention, so flag typos
  and config mistakes land on the same status.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    RULE_CLASSES,
    LintConfigError,
    make_linter,
    render_json,
    render_text,
)


def _codes(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files/directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. "
        "RPR001,RPR302); overrides the config file's select",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to disable; overrides the config "
        "file's ignore",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml ([tool.repro.lint]); default: nearest "
        "pyproject.toml above the working directory",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the rule table (code, name, severity, rationale) and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run for parsed *args*; returns the exit code."""
    if args.explain:
        width = max(len(cls.name) for cls in RULE_CLASSES)
        for cls in RULE_CLASSES:
            print(
                f"{cls.code}  {cls.name:<{width}}  "
                f"[{cls.severity}] {cls.rationale}"
            )
        return 0
    try:
        linter = make_linter(
            Path(args.config) if args.config else None,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            discover=args.config is None,
        )
    except LintConfigError as exc:
        print(f"lint: config error: {exc}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return 2

    findings, files = linter.lint_paths(paths)
    if args.json:
        sys.stdout.write(render_json(findings, files))
    else:
        print(render_text(findings, files))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
