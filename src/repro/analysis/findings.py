"""The linter's output model: one :class:`Finding` per contract violation.

A finding is a plain, JSON-stable value — ``(path, line, col, code,
severity, message)`` — so the text and JSON reporters, the suppression
pass, and the tests all speak one shape.  ``Severity`` is deliberately
two-valued: every finding fails the build (the CI contract), severity
only drives presentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Findings that fail the build outright (contract violations).
ERROR = "error"
#: Style/hygiene findings; still nonzero exit, rendered distinctly.
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            code=payload["code"],
            severity=payload["severity"],
            message=payload["message"],
        )

    def render(self) -> str:
        """The one-line text-reporter form (``path:line:col: CODE ...``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
