"""Finding reporters: human text and machine JSON.

Both reporters are pure (findings in, string out) so the CLI owns all
printing and the JSON schema can be round-trip tested:
``report_from_json(render_json(...))`` reconstructs the exact finding
list.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

#: Schema version of the JSON report; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files: int) -> str:
    """One line per finding plus a summary tail line."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_code: Dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {files} file(s): {breakdown}"
        )
    else:
        lines.append(f"clean: 0 findings in {files} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files: int) -> str:
    """The machine-readable report (stable key order, newline-terminated)."""
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "files": files,
            "findings": len(findings),
            "errors": sum(f.severity == "error" for f in findings),
            "warnings": sum(f.severity == "warning" for f in findings),
            "by_code": dict(sorted(by_code.items())),
        },
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def report_from_json(text: str) -> Tuple[List[Finding], int]:
    """Parse a :func:`render_json` report back into ``(findings, files)``."""
    payload = json.loads(text)
    if payload.get("version") != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report version {payload.get('version')!r}"
        )
    findings = [Finding.from_dict(item) for item in payload["findings"]]
    return findings, int(payload["summary"]["files"])
