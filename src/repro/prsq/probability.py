"""Probabilistic reverse skyline probabilities (Eqs. (2) and (3)).

For an uncertain object ``u`` with samples ``u_i``:

.. math::

   Pr(u) = \\sum_i u_i.p \\prod_{u' \\in P - \\{u\\}}
           \\bigl(1 - Pr\\{u' \\prec_{u_i} q\\}\\bigr)

where ``Pr{u' ≺_{u_i} q}`` (Eq. (3)) sums the appearance probabilities of
the samples of ``u'`` that dynamically dominate ``q`` w.r.t. ``u_i``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from repro.geometry.dominance import dominance_rectangle, dominance_vector
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject


def sample_dominance_probability(
    dominator: UncertainObject, center_sample: PointLike, q: PointLike
) -> float:
    """Eq. (3): probability that *dominator* dynamically dominates ``q``
    w.r.t. the fixed *center_sample*."""
    mask = dominance_vector(dominator.samples, as_point(q), as_point(center_sample))
    if not mask.any():
        return 0.0
    return float(dominator.probabilities[mask].sum())


def dominance_probability_vector(
    dominator: UncertainObject, center: UncertainObject, q: PointLike
) -> np.ndarray:
    """Vector of Eq. (3) probabilities, one entry per sample of *center*.

    Entry ``i`` is ``Pr{dominator ≺_{center_i} q}``.
    """
    qq = as_point(q, dims=center.dims)
    return np.array(
        [
            sample_dominance_probability(dominator, center.samples[i], qq)
            for i in range(center.num_samples)
        ]
    )


def dominance_probability_matrix(
    center: UncertainObject,
    others: Iterable[UncertainObject],
    q: PointLike,
) -> Dict[Hashable, np.ndarray]:
    """Eq. (3) vectors for every object in *others*, keyed by object id.

    Objects whose vector is identically zero are omitted — they contribute a
    factor of exactly 1 to every term of Eq. (2) (this is Lemma 1's
    irrelevance argument in matrix form).
    """
    matrix: Dict[Hashable, np.ndarray] = {}
    for other in others:
        vector = dominance_probability_vector(other, center, q)
        if vector.any():
            matrix[other.oid] = vector
    return matrix


def reverse_skyline_probability(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    exclude: Optional[Iterable[Hashable]] = None,
) -> float:
    """Eq. (2): the probability of *oid* being a reverse skyline object of ``q``.

    Parameters
    ----------
    use_index:
        When true, prune with the dataset R-tree: only objects whose MBR
        crosses one of *oid*'s dominance rectangles can have a non-zero
        Eq. (3) vector (Lemma 2), so only those are evaluated exactly.
    exclude:
        Treat these object ids as removed (evaluates ``Pr`` over ``P - Γ``).
    """
    target = dataset.get(oid)
    qq = as_point(q, dims=dataset.dims)
    excluded = set(exclude) if exclude is not None else set()
    excluded.add(oid)

    if use_index:
        windows = [
            dominance_rectangle(target.samples[i], qq)
            for i in range(target.num_samples)
        ]
        hit_ids = set(dataset.rtree.range_search_any(windows))
        relevant = [
            dataset.get(hit) for hit in hit_ids if hit not in excluded
        ]
    else:
        relevant = [obj for obj in dataset if obj.oid not in excluded]

    matrix = dominance_probability_matrix(target, relevant, qq)
    return probability_from_matrix(target, matrix)


def probability_from_matrix(
    center: UncertainObject,
    matrix: Dict[Hashable, np.ndarray],
    keep: Optional[Iterable[Hashable]] = None,
) -> float:
    """Evaluate Eq. (2) from a precomputed Eq. (3) matrix.

    *keep* restricts the product to a subset of the matrix rows (used when
    evaluating ``Pr`` over ``P - Γ`` without recomputing dominance).
    """
    if keep is None:
        rows: List[np.ndarray] = list(matrix.values())
    else:
        rows = [matrix[k] for k in keep if k in matrix]
    survival = np.ones(center.num_samples)
    for vector in rows:
        survival *= 1.0 - vector
    return float(np.dot(center.probabilities, survival))
