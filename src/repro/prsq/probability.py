"""Probabilistic reverse skyline probabilities (Eqs. (2) and (3)).

For an uncertain object ``u`` with samples ``u_i``:

.. math::

   Pr(u) = \\sum_i u_i.p \\prod_{u' \\in P - \\{u\\}}
           \\bigl(1 - Pr\\{u' \\prec_{u_i} q\\}\\bigr)

where ``Pr{u' ≺_{u_i} q}`` (Eq. (3)) sums the appearance probabilities of
the samples of ``u'`` that dynamically dominate ``q`` w.r.t. ``u_i``.

Two bit-compatible evaluation paths are provided, selected by the engine's
``use_numpy`` switch:

* the **tensor path** — one chunked ``(S_center, n_rel, S_max, d)``
  broadcast over the dataset's padded sample tensor
  (:func:`repro.engine.kernels.eq3_dominance_tensor`) followed by the
  batched Eq. (2) reduction;
* the **scalar path** — the per-dominator / per-sample loops below, kept
  as the reference implementation.

Both paths share the same left-to-right reductions and the same canonical
Eq. (2) product order (dataset order of the relevant objects), so their
results are bit-identical — across runs, across ``use_index=True/False``,
and across ``use_numpy=True/False``; the parity is property-tested.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from repro.geometry.dominance import dominance_rectangle, dominance_vector
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject


def sample_dominance_probability(
    dominator: UncertainObject, center_sample: PointLike, q: PointLike
) -> float:
    """Eq. (3): probability that *dominator* dynamically dominates ``q``
    w.r.t. the fixed *center_sample*."""
    # Imported lazily: the engine package imports prsq at module-import time.
    from repro.engine.kernels import masked_ordered_sum

    mask = dominance_vector(dominator.samples, as_point(q), as_point(center_sample))
    if not mask.any():
        return 0.0
    return float(masked_ordered_sum(dominator.probabilities, mask))


def dominance_probability_vector(
    dominator: UncertainObject, center: UncertainObject, q: PointLike
) -> np.ndarray:
    """Vector of Eq. (3) probabilities, one entry per sample of *center*.

    Entry ``i`` is ``Pr{dominator ≺_{center_i} q}``.
    """
    qq = as_point(q, dims=center.dims)
    return np.array(
        [
            sample_dominance_probability(dominator, center.samples[i], qq)
            for i in range(center.num_samples)
        ]
    )


def dominance_probability_matrix(
    center: UncertainObject,
    others: Iterable[UncertainObject],
    q: PointLike,
) -> Dict[Hashable, np.ndarray]:
    """Eq. (3) vectors for every object in *others*, keyed by object id.

    Objects whose vector is identically zero are omitted — they contribute a
    factor of exactly 1 to every term of Eq. (2) (this is Lemma 1's
    irrelevance argument in matrix form).
    """
    matrix: Dict[Hashable, np.ndarray] = {}
    for other in others:
        vector = dominance_probability_vector(other, center, q)
        if vector.any():
            matrix[other.oid] = vector
    return matrix


def relevant_indices(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    exclude: Optional[Iterable[Hashable]] = None,
    use_numpy: Optional[bool] = None,
) -> List[int]:
    """Dataset positions of the objects Eq. (2) must visit, in dataset order.

    With the index, only objects whose MBR crosses one of *oid*'s dominance
    rectangles can have a non-zero Eq. (3) vector (Lemma 2); ``use_numpy``
    selects the packed level-frontier traversal vs. the pointer tree —
    identical hit sets and node accesses either way.  The kernel returns
    canonically ordered unique hits, and sorting them by dataset position
    fixes the Eq. (2) floating-point product order, so the returned
    probability bits are identical across runs and across
    ``use_index=True/False``.
    """
    target = dataset.get(oid)
    qq = as_point(q, dims=dataset.dims)
    excluded = set(exclude) if exclude is not None else set()
    excluded.add(oid)

    if use_index:
        windows = [
            dominance_rectangle(target.samples[i], qq)
            for i in range(target.num_samples)
        ]
        hit_ids = dataset.spatial_index(use_numpy).range_search_any(windows)
        return dataset.positions_of(hit_ids, exclude=excluded)
    return [
        i for i, obj in enumerate(dataset) if obj.oid not in excluded
    ]


def reverse_skyline_probability(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    use_index: bool = True,
    exclude: Optional[Iterable[Hashable]] = None,
    use_numpy: Optional[bool] = None,
) -> float:
    """Eq. (2): the probability of *oid* being a reverse skyline object of ``q``.

    Parameters
    ----------
    use_index:
        When true, prune with the dataset R-tree: only objects whose MBR
        crosses one of *oid*'s dominance rectangles can have a non-zero
        Eq. (3) vector (Lemma 2), so only those are evaluated exactly.
    exclude:
        Treat these object ids as removed (evaluates ``Pr`` over ``P - Γ``).
    use_numpy:
        Tensorized kernels (default) vs. the scalar reference loop; both
        produce bit-identical results.
    """
    target = dataset.get(oid)
    qq = as_point(q, dims=dataset.dims)
    indices = relevant_indices(
        dataset, oid, qq, use_index=use_index, exclude=exclude,
        use_numpy=use_numpy,
    )
    return probability_at_indices(
        dataset, target, indices, qq, use_numpy=use_numpy
    )


def probability_at_indices(
    dataset: UncertainDataset,
    target: UncertainObject,
    indices: List[int],
    qq: np.ndarray,
    use_numpy: Optional[bool] = None,
) -> float:
    """Eq. (2) over the relevant objects at dataset positions *indices*.

    The shared evaluation core of :func:`reverse_skyline_probability` and
    the batched PRSQ path (:func:`repro.prsq.query.prsq_probabilities`):
    *indices* must be sorted dataset positions (the canonical Eq. (2)
    product order).  Tensor and scalar paths are bit-identical.
    """
    from repro.engine.kernels import (
        eq2_probability,
        eq3_dominance_tensor,
        resolve_use_numpy,
    )

    if resolve_use_numpy(use_numpy):
        tensor = dataset.tensor
        samples, probabilities, mask = tensor.rows(indices)
        eq3 = eq3_dominance_tensor(
            target.samples, samples, probabilities, mask, qq, use_numpy=True
        )
        return eq2_probability(target.probabilities, eq3)

    objects = dataset.objects()
    matrix = dominance_probability_matrix(
        target, (objects[i] for i in indices), qq
    )
    return probability_from_matrix(target, matrix)


def probability_from_matrix(
    center: UncertainObject,
    matrix: Dict[Hashable, np.ndarray],
    keep: Optional[Iterable[Hashable]] = None,
) -> float:
    """Evaluate Eq. (2) from a precomputed Eq. (3) matrix.

    *keep* restricts the product to a subset of the matrix rows (used when
    evaluating ``Pr`` over ``P - Γ`` without recomputing dominance).
    """
    from repro.engine.kernels import ordered_dot

    if keep is None:
        rows: List[np.ndarray] = list(matrix.values())
    else:
        rows = [matrix[k] for k in keep if k in matrix]
    survival = np.ones(center.num_samples)
    for vector in rows:
        survival = survival * (1.0 - vector)
    return ordered_dot(center.probabilities, survival)
