"""Probabilistic reverse skyline queries (Lian & Chen substrate)."""

from repro.prsq.montecarlo import (
    ProbabilityEstimate,
    sample_reverse_skyline_probability,
)
from repro.prsq.oracle import MembershipOracle
from repro.prsq.probability import (
    dominance_probability_matrix,
    dominance_probability_vector,
    probability_from_matrix,
    reverse_skyline_probability,
    sample_dominance_probability,
)
from repro.prsq.query import (
    is_prsq_answer,
    probabilistic_reverse_skyline,
    prsq_non_answers,
    prsq_probabilities,
)

__all__ = [
    "MembershipOracle",
    "ProbabilityEstimate",
    "sample_reverse_skyline_probability",
    "dominance_probability_matrix",
    "dominance_probability_vector",
    "is_prsq_answer",
    "probabilistic_reverse_skyline",
    "probability_from_matrix",
    "prsq_non_answers",
    "prsq_probabilities",
    "reverse_skyline_probability",
    "sample_dominance_probability",
]
