"""Fast PRSQ membership oracle for contingency-set verification.

Algorithm CP (and every baseline) must answer thousands of queries of the
form *"is ``an`` an answer to the PRSQ over ``P − Γ`` (optionally also
minus one cause)?"* while it enumerates candidate contingency sets.
Re-running Eq. (2) from scratch each time would re-scan the dataset; the
oracle instead precomputes the Eq. (3) dominance-probability matrix once —
only candidate causes have non-zero rows (Lemma 1/3) — and then evaluates
any restriction in :math:`O(|C_c| \\cdot l_{an})` numpy work with
memoization on the removed-set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.geometry.dominance import dominance_rectangle
from repro.geometry.point import PointLike, as_point
from repro.prsq.probability import dominance_probability_matrix
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject


class MembershipOracle:
    """Answers ``(P − removed) ⊨ PRSQ(an)`` queries against a fixed dataset.

    Parameters
    ----------
    dataset, an_oid, q, alpha:
        The CR2PRSQ instance.
    relevant_ids:
        Object ids that may influence ``Pr(an)`` (the candidate causes from
        the filter step).  When omitted, the pool is restricted with one
        Lemma-2 multi-window scan of the dataset's spatial index
        (*use_index*, default on) — exact, because an object outside every
        dominance rectangle has an identically-zero Eq. (3) vector — or,
        with ``use_index=False``, every other object is checked; the zero
        rows are dropped either way, so the oracle's answers are identical.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        an_oid: Hashable,
        q: PointLike,
        alpha: float,
        relevant_ids: Optional[Iterable[Hashable]] = None,
        use_numpy: Optional[bool] = None,
        use_index: bool = True,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.dataset = dataset
        self.an = dataset.get(an_oid)
        self.q = as_point(q, dims=dataset.dims)
        self.alpha = alpha

        if relevant_ids is None and use_index:
            windows = [
                dominance_rectangle(self.an.samples[i], self.q)
                for i in range(self.an.num_samples)
            ]
            hits = dataset.spatial_index(use_numpy).range_search_any(windows)
            indices = dataset.positions_of(hits, exclude=(an_oid,))
        elif relevant_ids is None:
            indices = [
                i for i, obj in enumerate(dataset) if obj.oid != an_oid
            ]
        else:
            indices = dataset.positions_of(
                set(relevant_ids), exclude=(an_oid,)
            )
        matrix = self._build_matrix(indices, use_numpy)

        # Stack non-zero rows into one (k, l) survival matrix for vector math.
        self.influencer_ids: List[Hashable] = sorted(matrix, key=repr)
        self._row_of: Dict[Hashable, int] = {
            oid: i for i, oid in enumerate(self.influencer_ids)
        }
        if self.influencer_ids:
            self._survival = np.vstack(
                [1.0 - matrix[oid] for oid in self.influencer_ids]
            )
        else:
            self._survival = np.zeros((0, self.an.num_samples))
        self._matrix = matrix
        self._cache: Dict[FrozenSet[Hashable], float] = {}
        self.evaluations = 0

    def _build_matrix(
        self, indices: List[int], use_numpy: Optional[bool]
    ) -> Dict[Hashable, np.ndarray]:
        """Eq. (3) vectors for the pool at dataset positions *indices*.

        The tensor path evaluates the whole pool in one chunked broadcast
        (:func:`repro.engine.kernels.eq3_dominance_tensor`); the scalar
        path is the per-dominator reference.  Both produce bit-identical
        vectors, so the oracle's answers do not depend on the switch.
        """
        from repro.engine.kernels import eq3_dominance_tensor, resolve_use_numpy

        if resolve_use_numpy(use_numpy):
            tensor = self.dataset.tensor
            samples, probabilities, mask = tensor.rows(indices)
            eq3 = eq3_dominance_tensor(
                self.an.samples, samples, probabilities, mask, self.q,
                use_numpy=True,
            )
            return {
                tensor.ids[i]: eq3[j]
                for j, i in enumerate(indices)
                if eq3[j].any()
            }
        objects = self.dataset.objects()
        return dominance_probability_matrix(
            self.an, (objects[i] for i in indices), self.q
        )

    # ------------------------------------------------------------------
    @property
    def an_oid(self) -> Hashable:
        return self.an.oid

    def eq3_vector(self, oid: Hashable) -> np.ndarray:
        """The Eq. (3) vector of an influencer (zeros for non-influencers)."""
        vector = self._matrix.get(oid)
        if vector is None:
            return np.zeros(self.an.num_samples)
        return vector

    def influences(self, oid: Hashable) -> bool:
        """Does *oid* have a non-zero Eq. (3) vector against ``an``?"""
        return oid in self._row_of

    def survival_row(self, oid: Hashable) -> np.ndarray:
        """Per-sample survival ``1 - Eq3(oid)`` (ones for non-influencers)."""
        row = self._row_of.get(oid)
        if row is None:
            return np.ones(self.an.num_samples)
        return self._survival[row]

    def max_survival(self, oid: Hashable) -> float:
        """``max_i (1 - Eq3_i)`` — the largest per-sample survival factor.

        ``Pr(an)`` over any restriction that keeps *oid* is at most the
        product of the kept objects' max survivals (each world term is),
        which is the size-level pruning bound used by FMCS.
        """
        return float(self.survival_row(oid).max())

    def certain_blockers(self) -> List[Hashable]:
        """Objects whose Eq. (3) vector is identically 1 (Lemma 4's ``Γ₁``).

        While any of them remains, ``Pr(an) = 0``, so each must belong to
        every qualifying contingency set.
        """
        return [
            oid
            for oid in self.influencer_ids
            if bool(np.all(self._survival[self._row_of[oid]] == 0.0))
        ]

    # ------------------------------------------------------------------
    def probability(self, removed: Iterable[Hashable] = ()) -> float:
        """``Pr(an)`` over ``P − removed`` (Eq. (2))."""
        key = frozenset(removed) & frozenset(self._row_of)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.evaluations += 1
        if len(key) == 0:
            survival = self._survival
        else:
            keep_rows = [
                i for oid, i in self._row_of.items() if oid not in key
            ]
            survival = self._survival[keep_rows]
        per_sample = survival.prod(axis=0) if survival.shape[0] else np.ones(
            self.an.num_samples
        )
        value = float(np.dot(self.an.probabilities, per_sample))
        self._cache[key] = value
        return value

    def is_answer(self, removed: Iterable[Hashable] = ()) -> bool:
        """``(P − removed) ⊨ PRSQ(an)``?"""
        return self.probability(removed) >= self.alpha

    def is_non_answer(self, removed: Iterable[Hashable] = ()) -> bool:
        """``(P − removed) ⊭ PRSQ(an)``?"""
        return not self.is_answer(removed)

    def is_contingency_set(
        self, gamma: Iterable[Hashable], cause: Hashable
    ) -> bool:
        """Definition 1(ii): ``(P−Γ) ⊭ PRSQ(an)`` and ``(P−Γ−{cause}) ⊨ PRSQ(an)``."""
        gamma_set = frozenset(gamma)
        if cause in gamma_set or cause == self.an.oid:
            raise ValueError("the cause may appear in neither Γ nor be an itself")
        return self.is_non_answer(gamma_set) and self.is_answer(
            gamma_set | {cause}
        )

    def validate_non_answer(self) -> None:
        """Raise unless ``an`` really is a non-answer over the full dataset."""
        from repro.exceptions import NotANonAnswerError

        pr = self.probability()
        if pr >= self.alpha:
            raise NotANonAnswerError(
                f"object {self.an.oid!r} has Pr={pr:.6f} >= alpha={self.alpha}; "
                "it is an answer, not a non-answer"
            )
