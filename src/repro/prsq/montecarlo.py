"""Monte-Carlo estimation of reverse-skyline probabilities.

Eq. (2) is exact but touches every influencing object; when only a rough
probability is needed (workload triage, sanity dashboards) sampling
possible worlds is a simple alternative and — more importantly here — an
*independent* estimator the exact computation is cross-validated against
in the property tests.  The estimator converges at the usual
:math:`O(1/\\sqrt{n})` Monte-Carlo rate; intervals use the Wilson score
construction, which stays honest at observed values of exactly 0 or 1
where the normal approximation collapses to zero width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import UncertainDataset

# float64 elements per gathered (n_others, chunk, d) instantiation block
# (~16 MB): bounds peak memory for huge world counts over large datasets.
_GATHER_ELEMENTS = 1 << 21


@dataclass(frozen=True)
class ProbabilityEstimate:
    """A sampled probability with Wilson-score error bars."""

    value: float
    std_error: float
    worlds: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Wilson score interval ``(lo, hi)`` at the given z (default ~95%).

        Unlike the normal approximation ``value ± z·std_error``, the Wilson
        interval keeps a non-degenerate width when the observed fraction is
        exactly 0 or 1 — there it spans ``[0, z²/(n+z²)]`` (resp. the
        mirror), covering the true probability at the nominal rate instead
        of collapsing onto the point estimate.
        """
        n = self.worlds
        p = self.value
        z2 = z * z
        denominator = 1.0 + z2 / n
        center = (p + z2 / (2.0 * n)) / denominator
        half = (z / denominator) * math.sqrt(
            p * (1.0 - p) / n + z2 / (4.0 * n * n)
        )
        return (max(0.0, center - half), min(1.0, center + half))

    def __contains__(self, probability: float) -> bool:
        lo, hi = self.confidence_interval(z=3.29)  # ~99.9%
        return lo <= probability <= hi


def sample_reverse_skyline_probability(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    worlds: int = 1_000,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    use_numpy: Optional[bool] = None,
) -> ProbabilityEstimate:
    """Estimate ``Pr(oid)`` by sampling *worlds* possible worlds.

    Each world instantiates every object at one sample (independently, per
    the Sec. 2.2 model); the estimate is the fraction of worlds in which no
    instantiated object dynamically dominates ``q`` w.r.t. *oid*'s
    instantiation.

    Parameters
    ----------
    rng:
        Source of randomness.  When omitted, a fresh
        ``np.random.default_rng(seed)`` is created, so repeated calls with
        default arguments are reproducible **and identical** — pass
        distinct seeds (or one shared generator) to obtain independent
        estimates; earlier versions silently reused seed 0 on every call,
        perfectly correlating nominally independent estimates.
    use_numpy:
        Evaluate all worlds through the chunked broadcast kernel
        (:func:`repro.engine.kernels.undominated_world_mask`) or the
        scalar per-world loop; the hit counts are boolean-exact either
        way.
    """
    from repro.engine.kernels import resolve_use_numpy, undominated_world_mask

    if worlds < 1:
        raise ValueError("at least one world is required")
    if rng is None:
        rng = np.random.default_rng(seed)
    qq = as_point(q, dims=dataset.dims)
    target = dataset.get(oid)
    others = dataset.others(oid)

    # Pre-draw sample indices for every object across all worlds.
    target_draws = rng.choice(
        target.num_samples, size=worlds, p=target.probabilities
    )
    other_draws = {
        obj.oid: rng.choice(obj.num_samples, size=worlds, p=obj.probabilities)
        for obj in others
    }

    if not others:
        hits = worlds
    elif resolve_use_numpy(use_numpy):
        # Gather (n_others, chunk, d) instantiations per world chunk — the
        # kernel's internal chunking bounds its scratch, but the gathered
        # input itself must not scale with worlds × objects either.
        step = max(1, _GATHER_ELEMENTS // max(1, len(others) * dataset.dims))
        centers = target.samples[target_draws]
        hits = 0
        for start in range(0, worlds, step):
            sl = slice(start, min(start + step, worlds))
            instantiated = np.stack(
                [obj.samples[other_draws[obj.oid][sl]] for obj in others]
            )
            hits += int(
                undominated_world_mask(
                    instantiated, centers[sl], qq, use_numpy=True
                ).sum()
            )
    else:
        from repro.geometry.dominance import dominance_vector

        hits = 0
        for world in range(worlds):
            center = target.samples[target_draws[world]]
            instantiated = np.array(
                [obj.samples[other_draws[obj.oid][world]] for obj in others]
            )
            if not dominance_vector(instantiated, qq, center).any():
                hits += 1

    value = hits / worlds
    std_error = math.sqrt(value * (1.0 - value) / worlds)
    return ProbabilityEstimate(value=value, std_error=std_error, worlds=worlds)
