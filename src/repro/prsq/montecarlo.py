"""Monte-Carlo estimation of reverse-skyline probabilities.

Eq. (2) is exact but touches every influencing object; when only a rough
probability is needed (workload triage, sanity dashboards) sampling
possible worlds is a simple alternative and — more importantly here — an
*independent* estimator the exact computation is cross-validated against
in the property tests.  The estimator converges at the usual
:math:`O(1/\\sqrt{n})` Monte-Carlo rate with a normal-approximation
confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro.geometry.dominance import dominance_vector
from repro.geometry.point import PointLike, as_point
from repro.uncertain.dataset import UncertainDataset


@dataclass(frozen=True)
class ProbabilityEstimate:
    """A sampled probability with its normal-approximation error bars."""

    value: float
    std_error: float
    worlds: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """(lo, hi) at the given z-score (default ~95%)."""
        return (
            max(0.0, self.value - z * self.std_error),
            min(1.0, self.value + z * self.std_error),
        )

    def __contains__(self, probability: float) -> bool:
        lo, hi = self.confidence_interval(z=3.29)  # ~99.9%
        return lo <= probability <= hi


def sample_reverse_skyline_probability(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    worlds: int = 1_000,
    rng: Optional[np.random.Generator] = None,
) -> ProbabilityEstimate:
    """Estimate ``Pr(oid)`` by sampling *worlds* possible worlds.

    Each world instantiates every object at one sample (independently, per
    the Sec. 2.2 model); the estimate is the fraction of worlds in which no
    instantiated object dynamically dominates ``q`` w.r.t. *oid*'s
    instantiation.
    """
    if worlds < 1:
        raise ValueError("at least one world is required")
    rng = rng or np.random.default_rng(0)
    qq = as_point(q, dims=dataset.dims)
    target = dataset.get(oid)
    others = dataset.others(oid)

    # Pre-draw sample indices for every object across all worlds.
    target_draws = rng.choice(
        target.num_samples, size=worlds, p=target.probabilities
    )
    other_draws = {
        obj.oid: rng.choice(obj.num_samples, size=worlds, p=obj.probabilities)
        for obj in others
    }

    hits = 0
    for world in range(worlds):
        center = target.samples[target_draws[world]]
        instantiated = np.array(
            [obj.samples[other_draws[obj.oid][world]] for obj in others]
        )
        if instantiated.size == 0 or not dominance_vector(
            instantiated, qq, center
        ).any():
            hits += 1

    value = hits / worlds
    std_error = math.sqrt(max(value * (1.0 - value), 1e-12) / worlds)
    return ProbabilityEstimate(value=value, std_error=std_error, worlds=worlds)
