"""Probabilistic reverse skyline query processing (Definition 4).

Implements the Lian & Chen query the paper builds on: return every
uncertain object whose probability of being a reverse skyline object of
``q`` is at least ``alpha``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.geometry.point import PointLike, as_point
from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import UncertainDataset


def prsq_probabilities(
    dataset: UncertainDataset,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> Dict[Hashable, float]:
    """``Pr(u)`` for every object in the dataset."""
    qq = as_point(q, dims=dataset.dims)
    return {
        obj.oid: reverse_skyline_probability(
            dataset, obj.oid, qq, use_index=use_index, use_numpy=use_numpy
        )
        for obj in dataset
    }


def probabilistic_reverse_skyline(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Object ids whose ``Pr(u) >= alpha`` (the PRSQ answer set)."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    probabilities = prsq_probabilities(
        dataset, q, use_index=use_index, use_numpy=use_numpy
    )
    return [oid for oid, pr in probabilities.items() if pr >= alpha]


def prsq_non_answers(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Object ids that are *non-answers* (the CRP inputs)."""
    probabilities = prsq_probabilities(
        dataset, q, use_index=use_index, use_numpy=use_numpy
    )
    return [oid for oid, pr in probabilities.items() if pr < alpha]


def is_prsq_answer(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> Tuple[bool, float]:
    """Membership plus the underlying probability for one object."""
    pr = reverse_skyline_probability(
        dataset, oid, q, use_index=use_index, use_numpy=use_numpy
    )
    return pr >= alpha, pr
