"""Probabilistic reverse skyline query processing (Definition 4).

Implements the Lian & Chen query the paper builds on: return every
uncertain object whose probability of being a reverse skyline object of
``q`` is at least ``alpha``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.geometry.dominance import dominance_rectangle
from repro.geometry.point import PointLike, as_point
from repro.obs import span as _span
from repro.prsq.probability import (
    probability_at_indices,
    reverse_skyline_probability,
)
from repro.uncertain.dataset import UncertainDataset


def prsq_probabilities(
    dataset: UncertainDataset,
    q: PointLike,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> Dict[Hashable, float]:
    """``Pr(u)`` for every object in the dataset.

    On the ``use_numpy`` index path the Lemma-2 filter for *all* objects
    runs as one grouped multi-window traversal of the packed R-tree
    (:meth:`~repro.index.packed.PackedRTree.range_search_any_grouped`)
    instead of one pointer scan per object; hit sets, node accesses and
    result bits are identical to the per-object loop.
    """
    from repro.engine.kernels import resolve_use_numpy

    qq = as_point(q, dims=dataset.dims)
    if use_index and resolve_use_numpy(use_numpy):
        return _prsq_probabilities_batched(dataset, qq)
    with _span("probability", mode="per-object", objects=len(dataset)):
        return {
            obj.oid: reverse_skyline_probability(
                dataset, obj.oid, qq, use_index=use_index, use_numpy=use_numpy
            )
            for obj in dataset
        }


def _prsq_probabilities_batched(
    dataset: UncertainDataset, qq: np.ndarray
) -> Dict[Hashable, float]:
    """One grouped filter pass, then per-object Eq. (2) on the tensor path."""
    with _span("filter", mode="grouped-windows", objects=len(dataset)):
        groups = [
            [
                dominance_rectangle(obj.samples[i], qq)
                for i in range(obj.num_samples)
            ]
            for obj in dataset
        ]
        hits_per = dataset.spatial_index(True).range_search_any_grouped(groups)
    with _span("probability", mode="batched-eq2", objects=len(dataset)):
        out: Dict[Hashable, float] = {}
        for obj, hits in zip(dataset, hits_per):
            indices = dataset.positions_of(hits, exclude=(obj.oid,))
            out[obj.oid] = probability_at_indices(
                dataset, obj, indices, qq, use_numpy=True
            )
    return out


def probabilistic_reverse_skyline(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Object ids whose ``Pr(u) >= alpha`` (the PRSQ answer set)."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    probabilities = prsq_probabilities(
        dataset, q, use_index=use_index, use_numpy=use_numpy
    )
    return [oid for oid, pr in probabilities.items() if pr >= alpha]


def prsq_non_answers(
    dataset: UncertainDataset,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[Hashable]:
    """Object ids that are *non-answers* (the CRP inputs)."""
    probabilities = prsq_probabilities(
        dataset, q, use_index=use_index, use_numpy=use_numpy
    )
    return [oid for oid, pr in probabilities.items() if pr < alpha]


def is_prsq_answer(
    dataset: UncertainDataset,
    oid: Hashable,
    q: PointLike,
    alpha: float,
    use_index: bool = True,
    use_numpy: Optional[bool] = None,
) -> Tuple[bool, float]:
    """Membership plus the underlying probability for one object."""
    pr = reverse_skyline_probability(
        dataset, oid, q, use_index=use_index, use_numpy=use_numpy
    )
    return pr >= alpha, pr
