"""The wire protocol: NDJSON framing and the transport-agnostic handler.

Framing is newline-delimited JSON over a byte stream: every request and
every response is one UTF-8 JSON object terminated by ``\\n`` (the length
of a frame is therefore delimited by its newline; a configurable
``max_line_bytes`` bounds what the server will buffer for one frame).
Responses to different requests may interleave on one connection — each
response echoes the request's ``id``, and the client demultiplexes by it,
which is what lets one connection keep many queries in flight.

Requests::

    {"id": 1, "op": "query", "spec": {"kind": "prsq", "q": [5, 5],
     "alpha": 0.5}, "dataset": "default"}
    {"id": 2, "op": "batch", "specs": [{...}, {...}]}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "ping"}

Responses carry the existing v2 envelopes **verbatim** — ``result`` is
exactly :meth:`repro.api.results.QueryResult.to_dict`, so everything the
local client sees (typed payload, run stats, fingerprint, spec echo,
error taxonomy) crosses the wire unchanged — plus the ``session_version``
the query was served at, so clients can detect staleness across live
updates::

    {"id": 1, "ok": true, "session_version": 3, "result": {...}}

Request-level failures (malformed frame, unknown op, unparseable spec,
admission rejection) answer with the same :class:`~repro.api.results.
ErrorInfo` taxonomy instead of dropping the connection; an ``overloaded``
response additionally carries ``retry_after_s``::

    {"id": 1, "ok": false,
     "error": {"code": "overloaded", "type": "OverloadedError",
               "message": "..."},
     "retry_after_s": 0.25}

``batch`` streams one response per spec (``seq`` gives the input index)
followed by a ``done`` summary frame, mirroring the CLI's NDJSON
``batch --stream``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional

from repro import faults
from repro.api.results import ErrorInfo
from repro.engine import spec_from_dict
from repro.exceptions import (
    DatasetDegradedError,
    DeadlineExceededError,
    InvalidRequestError,
    OverloadedError,
    ReproError,
)
from repro.faults.plan import FaultPlan
from repro.serve.wire import DEFAULT_DATASET, DEFAULT_PORT, encode_frame

#: Ops a request may name; ``query`` is the default when ``op`` is absent
#: and a ``spec`` is present.
OPS = ("query", "batch", "stats", "ping")


@dataclass
class ServeConfig:
    """Tunables for one server instance (service + transports).

    ``max_inflight`` bounds concurrently *executing* queries,
    ``max_queue`` the admission queue behind them (beyond it requests get
    an ``overloaded`` envelope instead of waiting), ``write_queue`` the
    single-writer queue of pending mutations, and ``per_connection`` the
    number of requests one connection may keep in flight before further
    frames are answered ``overloaded`` immediately.  ``shards > 1``
    STR-partitions every hosted raw dataset into that many spatial
    shards (results stay bit-identical; prepared :class:`Session` objects
    are hosted as given).

    ``idem_window`` bounds the per-dataset idempotency window (applied
    mutation results kept for retry dedup); ``fault_plan`` installs a
    deterministic :class:`~repro.faults.plan.FaultPlan` for the server's
    lifetime — chaos runs only, ``None`` in production.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    threads: int = 4
    cache_size: int = 4096
    use_numpy: bool = True
    max_inflight: int = 8
    max_queue: int = 64
    write_queue: int = 128
    per_connection: int = 32
    max_line_bytes: int = 1 << 20
    drain_timeout_s: float = 5.0
    shards: int = 1
    idem_window: int = 1024
    fault_plan: Optional[FaultPlan] = None


def error_response(
    request_id: Any, exc: BaseException, **extra: Any
) -> Dict[str, Any]:
    """A request-level failure frame, coded through the error taxonomy."""
    payload: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": ErrorInfo.from_exception(exc).to_dict(),
    }
    if isinstance(exc, OverloadedError):
        payload["retry_after_s"] = exc.retry_after_s
    payload.update(extra)
    return payload


class RequestHandler:
    """Transport-agnostic dispatch: one request dict -> response dicts.

    Both front ends — the NDJSON stream loop below and the HTTP POST
    adapter in :mod:`repro.serve.http` — feed parsed frames through this
    one ``handle`` generator, so protocol semantics (spec decoding, error
    taxonomy, batch streaming, version echo) cannot drift between them.
    """

    def __init__(self, service: "DatasetService"):
        self.service = service

    # ------------------------------------------------------------------
    @staticmethod
    def _decode_spec(payload: Any):
        if not isinstance(payload, dict):
            raise InvalidRequestError(
                f"'spec' must be a JSON object with a 'kind', got "
                f"{type(payload).__name__}"
            )
        return spec_from_dict(payload)

    @staticmethod
    def _deadline_of(request: Dict[str, Any]) -> Optional[float]:
        """The absolute monotonic deadline for *request*, if it set one.

        ``deadline_ms`` is a *relative* budget (clients and servers do
        not share clocks); it is anchored to ``time.monotonic()`` here,
        at frame receipt, and the absolute instant rides along through
        admission, the write queue, and the pool dispatch checkpoint.
        """
        budget = request.get("deadline_ms")
        if budget is None:
            return None
        if not isinstance(budget, (int, float)) or isinstance(budget, bool) \
                or budget <= 0:
            raise InvalidRequestError(
                f"'deadline_ms' must be a positive number, got {budget!r}"
            )
        return time.monotonic() + float(budget) / 1000.0

    @staticmethod
    def _idem_of(request: Dict[str, Any]) -> Optional[str]:
        idem = request.get("idem")
        if idem is None:
            return None
        if not isinstance(idem, str) or not idem:
            raise InvalidRequestError(
                f"'idem' must be a non-empty string, got {idem!r}"
            )
        return idem

    async def handle(
        self, request: Any
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield the response frame(s) for one request frame.

        Never raises for request content: every failure — including
        admission rejection — becomes a coded response frame, so a
        misbehaving request can never cost a connection its stream.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise InvalidRequestError(
                    f"each request must be a JSON object, got "
                    f"{type(request).__name__}"
                )
            op = request.get("op") or (
                "query" if "spec" in request else None
            )
            if op == "ping":
                yield {
                    "id": request_id,
                    "ok": True,
                    "pong": True,
                    "datasets": self.service.dataset_names(),
                    "status": {
                        name: self.service.state(name).status
                        for name in self.service.dataset_names()
                    },
                    "degraded": self.service.degraded_datasets(),
                }
            elif op == "stats":
                yield {"id": request_id, "ok": True, **self.service.stats_payload()}
            elif op == "query":
                if "spec" not in request:
                    raise InvalidRequestError("op 'query' needs a 'spec'")
                spec = self._decode_spec(request["spec"])
                envelope, version = await self.service.execute(
                    spec,
                    dataset=request.get("dataset", DEFAULT_DATASET),
                    deadline=self._deadline_of(request),
                    idem=self._idem_of(request),
                )
                yield {
                    "id": request_id,
                    "ok": envelope.ok,
                    "session_version": version,
                    "result": envelope.to_dict(),
                }
            elif op == "batch":
                async for frame in self._handle_batch(request_id, request):
                    yield frame
            else:
                raise InvalidRequestError(
                    f"unknown op {op!r}; expected one of {list(OPS)}"
                )
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            yield error_response(request_id, exc)

    async def _handle_batch(
        self, request_id: Any, request: Dict[str, Any]
    ) -> AsyncIterator[Dict[str, Any]]:
        specs = request.get("specs")
        if not isinstance(specs, list):
            raise InvalidRequestError("op 'batch' needs a 'specs' array")
        dataset = request.get("dataset", DEFAULT_DATASET)
        deadline = self._deadline_of(request)
        # Pre-validate every spec up front (the CLI batch contract): a
        # malformed spec at index 50 fails the batch before spec 0 runs.
        parsed = [self._decode_spec(item) for item in specs]
        failures = 0
        for seq, spec in enumerate(parsed):
            try:
                envelope, version = await self.service.execute(
                    spec, dataset=dataset, deadline=deadline
                )
            except (
                OverloadedError, DeadlineExceededError, DatasetDegradedError
            ) as exc:
                # One rejected/expired spec does not abort the batch: the
                # client sees which seq failed and can retry just that one.
                failures += 1
                yield error_response(request_id, exc, seq=seq)
                continue
            failures += not envelope.ok
            yield {
                "id": request_id,
                "ok": envelope.ok,
                "seq": seq,
                "session_version": version,
                "result": envelope.to_dict(),
            }
        yield {
            "id": request_id,
            "ok": failures == 0,
            "done": True,
            "count": len(parsed),
            "failures": failures,
        }


async def serve_ndjson(
    handler: RequestHandler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    config: ServeConfig,
    first_line: Optional[bytes] = None,
    draining: Optional[asyncio.Event] = None,
) -> None:
    """Drive one NDJSON connection until EOF (or server drain).

    Each request frame is handled in its own task (so one slow query
    never head-of-line-blocks the connection), bounded by
    ``config.per_connection``: frames beyond the cap are answered with an
    immediate ``overloaded`` response instead of queueing unboundedly.
    Outbound frames are serialized through one lock; ``drain()`` under
    that lock gives natural per-connection backpressure against slow
    consumers.

    When *draining* (the server's shutdown event) fires, the loop stops
    *reading* but in-flight request tasks — including a half-streamed
    batch — run to completion and flush their tails before the socket
    closes cleanly; client-initiated EOF keeps the old behavior of
    cancelling whatever is still running.

    Fault seams (active only under an installed
    :class:`~repro.faults.FaultPlan`): ``socket.read`` (drop the
    connection before a frame is read, or stall the read), ``socket.write``
    (drop before a response frame is written), and ``stream.frame``
    (hard-reset mid-way through a streamed batch).
    """
    write_lock = asyncio.Lock()
    tasks: set = set()

    def _abort(reason: str) -> None:
        transport = writer.transport
        if transport is not None:
            transport.abort()  # hard reset, not a graceful FIN
        raise ConnectionResetError(reason)

    async def send(payload: Dict[str, Any]) -> None:
        if faults.active() is not None:
            if "seq" in payload:
                rule = faults.check("stream.frame", seq=payload.get("seq"))
                if rule is not None:
                    _abort(rule.message or "injected stream.frame disconnect")
            rule = faults.check("socket.write", id=payload.get("id"))
            if rule is not None:
                _abort(rule.message or "injected socket.write drop")
        frame = encode_frame(payload)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def process(request: Any) -> None:
        try:
            async for response in handler.handle(request):
                await send(response)
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            # The connection is already gone (or fault-injected away);
            # there is nobody left to answer.
            return
        except Exception as exc:  # defensive: never kill the connection
            await send(error_response(
                request.get("id") if isinstance(request, dict) else None, exc
            ))

    drain_wait = (
        asyncio.ensure_future(draining.wait()) if draining is not None
        else None
    )

    async def next_line() -> bytes:
        """One frame line — or ``b""`` when the server starts draining."""
        if drain_wait is None:
            return await reader.readline()
        if drain_wait.done():
            return b""
        read = asyncio.ensure_future(reader.readline())
        try:
            await asyncio.wait(
                {read, drain_wait}, return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            read.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await read
            raise
        if read.done():
            return read.result()
        read.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await read
        return b""

    drained_exit = False
    try:
        while True:
            if first_line is not None:
                line, first_line = first_line, None
            else:
                rule = faults.check("socket.read") if faults.active() else None
                if rule is not None:
                    if rule.action == "drop":
                        _abort(rule.message or "injected socket.read drop")
                    if rule.action == "stall":
                        await asyncio.sleep(rule.delay_s)
                try:
                    line = await next_line()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: framing is lost, close after a hint.
                    await send(error_response(None, InvalidRequestError(
                        f"frame exceeds max_line_bytes="
                        f"{config.max_line_bytes}"
                    )))
                    break
            if not line:
                drained_exit = draining is not None and draining.is_set()
                break
            if not line.strip():
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await send(error_response(None, InvalidRequestError(
                    f"invalid JSON frame: {exc}"
                )))
                continue
            if len(tasks) >= config.per_connection:
                await send(error_response(
                    request.get("id") if isinstance(request, dict) else None,
                    OverloadedError(
                        f"per-connection concurrency cap "
                        f"({config.per_connection}) exceeded",
                        retry_after_s=handler.service.retry_after(),
                    ),
                ))
                continue
            task = asyncio.ensure_future(process(request))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        if drain_wait is not None:
            drain_wait.cancel()
        if drained_exit and tasks:
            # Graceful drain: let in-flight requests (e.g. a half-
            # streamed batch) flush their remaining frames.  The server's
            # stop() still bounds this wait by drain_timeout_s — if that
            # expires, this connection task is cancelled and the
            # stragglers get cancelled in turn below.
            try:
                await asyncio.gather(*tasks, return_exceptions=True)
            except asyncio.CancelledError:
                for task in list(tasks):
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                raise
        else:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
