"""The wire protocol: NDJSON framing and the transport-agnostic handler.

Framing is newline-delimited JSON over a byte stream: every request and
every response is one UTF-8 JSON object terminated by ``\\n`` (the length
of a frame is therefore delimited by its newline; a configurable
``max_line_bytes`` bounds what the server will buffer for one frame).
Responses to different requests may interleave on one connection — each
response echoes the request's ``id``, and the client demultiplexes by it,
which is what lets one connection keep many queries in flight.

Requests::

    {"id": 1, "op": "query", "spec": {"kind": "prsq", "q": [5, 5],
     "alpha": 0.5}, "dataset": "default"}
    {"id": 2, "op": "batch", "specs": [{...}, {...}]}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "ping"}

Responses carry the existing v2 envelopes **verbatim** — ``result`` is
exactly :meth:`repro.api.results.QueryResult.to_dict`, so everything the
local client sees (typed payload, run stats, fingerprint, spec echo,
error taxonomy) crosses the wire unchanged — plus the ``session_version``
the query was served at, so clients can detect staleness across live
updates::

    {"id": 1, "ok": true, "session_version": 3, "result": {...}}

Request-level failures (malformed frame, unknown op, unparseable spec,
admission rejection) answer with the same :class:`~repro.api.results.
ErrorInfo` taxonomy instead of dropping the connection; an ``overloaded``
response additionally carries ``retry_after_s``::

    {"id": 1, "ok": false,
     "error": {"code": "overloaded", "type": "OverloadedError",
               "message": "..."},
     "retry_after_s": 0.25}

``batch`` streams one response per spec (``seq`` gives the input index)
followed by a ``done`` summary frame, mirroring the CLI's NDJSON
``batch --stream``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional

from repro.api.results import ErrorInfo
from repro.engine import spec_from_dict
from repro.exceptions import (
    InvalidRequestError,
    OverloadedError,
    ReproError,
)
from repro.serve.wire import DEFAULT_DATASET, DEFAULT_PORT, encode_frame

#: Ops a request may name; ``query`` is the default when ``op`` is absent
#: and a ``spec`` is present.
OPS = ("query", "batch", "stats", "ping")


@dataclass
class ServeConfig:
    """Tunables for one server instance (service + transports).

    ``max_inflight`` bounds concurrently *executing* queries,
    ``max_queue`` the admission queue behind them (beyond it requests get
    an ``overloaded`` envelope instead of waiting), ``write_queue`` the
    single-writer queue of pending mutations, and ``per_connection`` the
    number of requests one connection may keep in flight before further
    frames are answered ``overloaded`` immediately.  ``shards > 1``
    STR-partitions every hosted raw dataset into that many spatial
    shards (results stay bit-identical; prepared :class:`Session` objects
    are hosted as given).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    threads: int = 4
    cache_size: int = 4096
    use_numpy: bool = True
    max_inflight: int = 8
    max_queue: int = 64
    write_queue: int = 128
    per_connection: int = 32
    max_line_bytes: int = 1 << 20
    drain_timeout_s: float = 5.0
    shards: int = 1


def error_response(
    request_id: Any, exc: BaseException, **extra: Any
) -> Dict[str, Any]:
    """A request-level failure frame, coded through the error taxonomy."""
    payload: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": ErrorInfo.from_exception(exc).to_dict(),
    }
    if isinstance(exc, OverloadedError):
        payload["retry_after_s"] = exc.retry_after_s
    payload.update(extra)
    return payload


class RequestHandler:
    """Transport-agnostic dispatch: one request dict -> response dicts.

    Both front ends — the NDJSON stream loop below and the HTTP POST
    adapter in :mod:`repro.serve.http` — feed parsed frames through this
    one ``handle`` generator, so protocol semantics (spec decoding, error
    taxonomy, batch streaming, version echo) cannot drift between them.
    """

    def __init__(self, service: "DatasetService"):
        self.service = service

    # ------------------------------------------------------------------
    @staticmethod
    def _decode_spec(payload: Any):
        if not isinstance(payload, dict):
            raise InvalidRequestError(
                f"'spec' must be a JSON object with a 'kind', got "
                f"{type(payload).__name__}"
            )
        return spec_from_dict(payload)

    async def handle(
        self, request: Any
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield the response frame(s) for one request frame.

        Never raises for request content: every failure — including
        admission rejection — becomes a coded response frame, so a
        misbehaving request can never cost a connection its stream.
        """
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise InvalidRequestError(
                    f"each request must be a JSON object, got "
                    f"{type(request).__name__}"
                )
            op = request.get("op") or (
                "query" if "spec" in request else None
            )
            if op == "ping":
                yield {
                    "id": request_id,
                    "ok": True,
                    "pong": True,
                    "datasets": self.service.dataset_names(),
                }
            elif op == "stats":
                yield {"id": request_id, "ok": True, **self.service.stats_payload()}
            elif op == "query":
                if "spec" not in request:
                    raise InvalidRequestError("op 'query' needs a 'spec'")
                spec = self._decode_spec(request["spec"])
                envelope, version = await self.service.execute(
                    spec, dataset=request.get("dataset", DEFAULT_DATASET)
                )
                yield {
                    "id": request_id,
                    "ok": envelope.ok,
                    "session_version": version,
                    "result": envelope.to_dict(),
                }
            elif op == "batch":
                async for frame in self._handle_batch(request_id, request):
                    yield frame
            else:
                raise InvalidRequestError(
                    f"unknown op {op!r}; expected one of {list(OPS)}"
                )
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            yield error_response(request_id, exc)

    async def _handle_batch(
        self, request_id: Any, request: Dict[str, Any]
    ) -> AsyncIterator[Dict[str, Any]]:
        specs = request.get("specs")
        if not isinstance(specs, list):
            raise InvalidRequestError("op 'batch' needs a 'specs' array")
        dataset = request.get("dataset", DEFAULT_DATASET)
        # Pre-validate every spec up front (the CLI batch contract): a
        # malformed spec at index 50 fails the batch before spec 0 runs.
        parsed = [self._decode_spec(item) for item in specs]
        failures = 0
        for seq, spec in enumerate(parsed):
            try:
                envelope, version = await self.service.execute(
                    spec, dataset=dataset
                )
            except OverloadedError as exc:
                # One rejected spec does not abort the batch: the client
                # sees which seq was shed and can retry just that one.
                failures += 1
                yield error_response(request_id, exc, seq=seq)
                continue
            failures += not envelope.ok
            yield {
                "id": request_id,
                "ok": envelope.ok,
                "seq": seq,
                "session_version": version,
                "result": envelope.to_dict(),
            }
        yield {
            "id": request_id,
            "ok": failures == 0,
            "done": True,
            "count": len(parsed),
            "failures": failures,
        }


async def serve_ndjson(
    handler: RequestHandler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    config: ServeConfig,
    first_line: Optional[bytes] = None,
) -> None:
    """Drive one NDJSON connection until EOF.

    Each request frame is handled in its own task (so one slow query
    never head-of-line-blocks the connection), bounded by
    ``config.per_connection``: frames beyond the cap are answered with an
    immediate ``overloaded`` response instead of queueing unboundedly.
    Outbound frames are serialized through one lock; ``drain()`` under
    that lock gives natural per-connection backpressure against slow
    consumers.
    """
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def send(payload: Dict[str, Any]) -> None:
        frame = encode_frame(payload)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def process(request: Any) -> None:
        try:
            async for response in handler.handle(request):
                await send(response)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # defensive: never kill the connection
            await send(error_response(
                request.get("id") if isinstance(request, dict) else None, exc
            ))

    try:
        while True:
            if first_line is not None:
                line, first_line = first_line, None
            else:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: framing is lost, close after a hint.
                    await send(error_response(None, InvalidRequestError(
                        f"frame exceeds max_line_bytes="
                        f"{config.max_line_bytes}"
                    )))
                    break
            if not line:
                break
            if not line.strip():
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await send(error_response(None, InvalidRequestError(
                    f"invalid JSON frame: {exc}"
                )))
                continue
            if len(tasks) >= config.per_connection:
                await send(error_response(
                    request.get("id") if isinstance(request, dict) else None,
                    OverloadedError(
                        f"per-connection concurrency cap "
                        f"({config.per_connection}) exceeded",
                        retry_after_s=handler.service.retry_after(),
                    ),
                ))
                continue
            task = asyncio.ensure_future(process(request))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
