"""The TCP server: one port, two protocols, graceful lifecycle.

:class:`ReproServer` binds one listening socket and sniffs the first
line of each connection: a line starting with ``{`` (or ``[``) is an
NDJSON protocol stream, anything shaped like ``VERB /path HTTP/1.x`` is
handed to the HTTP adapter — so ``curl`` and the
:class:`~repro.api.remote.RemoteClient` share a port and, underneath,
the exact same :class:`~repro.serve.protocol.RequestHandler`.

Lifecycle: ``start()`` starts the per-dataset writer queues and the
listener (``port=0`` picks a free port, reported back via ``.port`` —
how the tests and the in-process examples run without port fights);
``stop()`` closes the listener, gives in-flight connections
``drain_timeout_s`` to finish, cancels stragglers, then drains the
writer queues and shuts the pool down.  :func:`run` is the CLI/blocking
entry point wiring SIGINT/SIGTERM to that same graceful stop — the same
flush-then-exit discipline the CLI ``batch`` command applies on Ctrl-C.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Callable, Mapping, Optional

from repro import faults
from repro.serve.http import serve_http
from repro.serve.protocol import RequestHandler, ServeConfig, serve_ndjson
from repro.serve.service import DatasetLike, DatasetService

_HTTP_VERBS = (b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI", b"PATC")


class ReproServer:
    """Bind, sniff, dispatch; owns the service lifecycle."""

    def __init__(
        self,
        datasets: Mapping[str, DatasetLike],
        config: Optional[ServeConfig] = None,
    ):
        self.config = config or ServeConfig()
        self.service = DatasetService(datasets, self.config)
        self.handler = RequestHandler(self.service)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._draining = asyncio.Event()
        self._faults_installed = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._draining = asyncio.Event()  # fresh per start/stop cycle
        if self.config.fault_plan is not None:
            # Chaos runs only: the plan lives for this server's lifetime
            # and reaches forked pool workers via the executor initargs.
            faults.install(self.config.fault_plan)
            self._faults_installed = True
        await self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        # Flip the drain flag before anything else: connection loops stop
        # reading new frames but flush their in-flight responses (a half-
        # streamed batch completes) instead of being reset.
        self._draining.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.service.stop()
        if self._faults_installed:
            faults.uninstall()
            self._faults_installed = False

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            first = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            writer.close()
            return
        if not first:
            writer.close()
            return
        stripped = first.lstrip()
        if stripped[:1] in (b"{", b"["):
            await serve_ndjson(
                self.handler, reader, writer, self.config,
                first_line=first, draining=self._draining,
            )
        elif stripped[:4] in _HTTP_VERBS:
            await serve_http(
                self.handler, reader, writer, self.config, request_line=first
            )
        else:
            # Neither protocol: answer in NDJSON (the native framing) and
            # hang up — never a silent drop.
            from repro.exceptions import InvalidRequestError
            from repro.serve.protocol import encode_frame, error_response

            writer.write(encode_frame(error_response(
                None,
                InvalidRequestError(
                    f"unrecognized protocol preamble {first[:40]!r}; "
                    f"speak NDJSON or HTTP/1.1"
                ),
            )))
            with contextlib.suppress(ConnectionError, OSError):
                await writer.drain()
            writer.close()


async def run(
    datasets: Mapping[str, DatasetLike],
    config: Optional[ServeConfig] = None,
    *,
    ready: Optional[asyncio.Event] = None,
    on_start: Optional[Callable[[ReproServer], None]] = None,
    install_signal_handlers: bool = True,
) -> ReproServer:
    """Serve until SIGINT/SIGTERM (or external ``ready``-holder cancel).

    Sets *ready* (if given) and calls *on_start(server)* once the socket
    is bound — in-process harnesses use these to learn the actual port
    (``port=0`` binds a free one).  Returns the (stopped) server, mostly
    so callers can read ``.port`` afterwards.
    """
    server = ReproServer(datasets, config)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if install_signal_handlers:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platforms without signal support
    await server.start()
    if ready is not None:
        ready.set()
    if on_start is not None:
        on_start(server)
    try:
        await stop_event.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()
    return server
