"""The single-writer queue: all mutations to one dataset, serialized.

Readers never lock anything — they run against the immutable published
snapshot (:meth:`repro.engine.session.Session.read_snapshot`).  That only
works because writes are funneled through exactly one consumer per
dataset: the :class:`SingleWriter` drains an ``asyncio.Queue`` of
``(spec, future, idem, deadline)`` entries, applies each mutation to the
live writer session on the shared thread pool, and — only when the
mutation succeeds — publishes a fresh frozen snapshot for subsequent
readers.  In-flight queries keep whatever snapshot they started with,
which is the whole snapshot-isolation story: a reader's arrays cannot
change under it.

The queue is bounded: a full write queue raises
:class:`~repro.exceptions.OverloadedError` at submit time (carrying a
drain-rate ``retry_after_s`` hint) instead of buffering unboundedly.
Failed mutations (unknown id, spec mismatch, ...) resolve the submitter's
future with the *failed outcome* — they are data errors that belong in
the response envelope, not exceptions that should kill the drain task.

**Idempotency.**  A mutation may carry an ``idem`` key (clients generate
one per logical write and reuse it across retries).  Applied results —
successes *and* captured data failures — land in a bounded,
sequence-tagged window; a duplicate key returns the recorded result
without re-applying, and a duplicate arriving while the original is still
queued awaits the original's future.  That makes a retried apply
exactly-once even when the first response was lost to a dropped socket.

**Death.**  An exception *escaping* the apply callable (anything the
engine's error capture did not turn into a failed outcome — e.g. an
injected ``writer.apply`` fault) means the live session's integrity is
unknown.  The writer marks itself dead, fails the triggering write and
everything queued behind it with
:class:`~repro.exceptions.DatasetDegradedError`, and stops draining: the
dataset degrades to read-only on its last published snapshot instead of
taking the server down.  Recorded idempotent results keep answering
duplicates after death, so a retried write whose first apply succeeded
still resolves exactly-once.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import Executor
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.exceptions import (
    DatasetDegradedError,
    DeadlineExceededError,
    OverloadedError,
)

_STOP = object()


class SingleWriter:
    """One drain task applying mutations in submission order.

    ``apply`` is the blocking callable (run on *pool*) that executes one
    mutating spec against the live session and publishes a new snapshot
    on success; the service layer supplies it per dataset.
    """

    def __init__(
        self,
        apply: Callable[[Any], Any],
        pool: Executor,
        *,
        max_queue: int = 128,
        name: str = "default",
        idem_window: int = 1024,
    ):
        self._apply = apply
        self._pool = pool
        self.name = name
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=max_queue)
        self._task: Optional[asyncio.Task] = None
        self._write_latency_ema_s = 0.01
        self._idem_window = max(0, idem_window)
        # key -> (apply sequence number, recorded result); bounded FIFO
        self._idem_done: "OrderedDict[str, Tuple[int, Any]]" = OrderedDict()
        self._idem_pending: Dict[str, asyncio.Future] = {}
        self._sequence = 0
        self.dead = False
        self.death_reason: Optional[str] = None
        metrics = obs.registry()
        self._depth_gauge = metrics.gauge("serve.write_queue_depth")
        self._applied = metrics.counter("serve.writes_applied")
        self._rejected = metrics.counter("serve.writes_rejected")
        self._idem_hits = metrics.counter("retry.idempotent_hits")
        self._deaths = metrics.counter("fault.writer_deaths")

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._drain())

    async def stop(self) -> None:
        """Drain queued writes, then stop the consumer task."""
        if self._task is None:
            return
        if not self._task.done():
            await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def retry_after(self) -> float:
        backlog = self._queue.qsize() + 1
        return round(max(0.05, backlog * self._write_latency_ema_s), 3)

    def _degraded_error(self) -> DatasetDegradedError:
        return DatasetDegradedError(
            f"dataset {self.name!r} is degraded (read-only): writer died"
            + (f" [{self.death_reason}]" if self.death_reason else "")
        )

    # ------------------------------------------------------------------
    async def submit(
        self,
        spec: Any,
        *,
        idem: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Any:
        """Enqueue one mutating spec; await its (possibly failed) outcome.

        Raises :class:`OverloadedError` immediately when the write queue
        is at capacity — the caller turns that into a structured
        ``overloaded`` response, it never blocks the event loop.
        Duplicate ``idem`` keys resolve from the recorded window (or the
        in-flight original) without a second apply.  *deadline* is an
        absolute ``time.monotonic()`` instant: an entry whose budget
        expired while queued is answered ``deadline_exceeded`` and never
        applied.
        """
        if idem is not None:
            done = self._idem_done.get(idem)
            if done is not None:
                self._idem_hits.inc()
                return done[1]
            pending = self._idem_pending.get(idem)
            if pending is not None:
                self._idem_hits.inc()
                # Shield: the duplicate's cancellation must not cancel
                # the original submitter's apply.
                return await asyncio.shield(pending)
        if self.dead:
            raise self._degraded_error()
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((spec, future, idem, deadline))
        except asyncio.QueueFull:
            self._rejected.inc()
            raise OverloadedError(
                f"write queue for dataset {self.name!r} is full "
                f"({self._queue.maxsize} pending)",
                retry_after_s=self.retry_after(),
            ) from None
        if idem is not None:
            self._idem_pending[idem] = future
        self._depth_gauge.set(self._queue.qsize())
        # Shield the apply from the submitter's own cancellation (e.g. a
        # client disconnecting mid-write): the mutation still completes
        # and records under its idem key, so the client's retry on a new
        # connection resolves exactly-once instead of double-applying.
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    def _record(self, idem: Optional[str], result: Any) -> None:
        if idem is None:
            return
        self._idem_pending.pop(idem, None)
        if self._idem_window <= 0:
            return
        self._sequence += 1
        self._idem_done[idem] = (self._sequence, result)
        while len(self._idem_done) > self._idem_window:
            self._idem_done.popitem(last=False)

    def _die(self, exc: BaseException) -> None:
        """Mark the writer dead; fail everything queued behind the cause."""
        self.dead = True
        self.death_reason = f"{type(exc).__name__}: {exc}"
        self._deaths.inc()
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                continue
            _spec, future, idem, _deadline = item
            if idem is not None:
                self._idem_pending.pop(idem, None)
            if not future.done():
                future.set_exception(self._degraded_error())
        self._depth_gauge.set(0)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            self._depth_gauge.set(self._queue.qsize())
            if item is _STOP:
                return
            spec, future, idem, deadline = item
            if deadline is not None and time.monotonic() >= deadline:
                # Expired while queued: the apply never runs, so the key
                # stays unrecorded — a later retry (with a fresh budget)
                # may legitimately apply it.
                if idem is not None:
                    self._idem_pending.pop(idem, None)
                if not future.done():
                    future.set_exception(DeadlineExceededError(
                        "deadline expired in the write queue"
                    ))
                continue
            started = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    self._pool, self._apply, spec
                )
            except Exception as exc:
                # apply() captures data errors into failed outcomes, so
                # anything escaping it means the live session can no
                # longer be trusted: degrade instead of carrying on.
                if not future.done():
                    future.set_exception(self._degraded_error_from(exc))
                if idem is not None:
                    self._idem_pending.pop(idem, None)
                self._die(exc)
                return
            self._write_latency_ema_s = (
                0.8 * self._write_latency_ema_s
                + 0.2 * (time.perf_counter() - started)
            )
            self._applied.inc()
            self._record(idem, outcome)
            if not future.done():
                future.set_result(outcome)

    def _degraded_error_from(self, exc: BaseException) -> DatasetDegradedError:
        return DatasetDegradedError(
            f"dataset {self.name!r} degraded to read-only: write failed "
            f"fatally [{type(exc).__name__}: {exc}]"
        )
