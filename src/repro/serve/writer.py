"""The single-writer queue: all mutations to one dataset, serialized.

Readers never lock anything — they run against the immutable published
snapshot (:meth:`repro.engine.session.Session.read_snapshot`).  That only
works because writes are funneled through exactly one consumer per
dataset: the :class:`SingleWriter` drains an ``asyncio.Queue`` of
``(spec, future)`` pairs, applies each mutation to the live writer
session on the shared thread pool, and — only when the mutation succeeds
— publishes a fresh frozen snapshot for subsequent readers.  In-flight
queries keep whatever snapshot they started with, which is the whole
snapshot-isolation story: a reader's arrays cannot change under it.

The queue is bounded: a full write queue raises
:class:`~repro.exceptions.OverloadedError` at submit time (carrying a
drain-rate ``retry_after_s`` hint) instead of buffering unboundedly.
Failed mutations (unknown id, spec mismatch, ...) resolve the submitter's
future with the *failed outcome* — they are data errors that belong in
the response envelope, not exceptions that should kill the drain task.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import Any, Callable, Optional, Tuple

from repro import obs
from repro.exceptions import OverloadedError

_STOP = object()


class SingleWriter:
    """One drain task applying mutations in submission order.

    ``apply`` is the blocking callable (run on *pool*) that executes one
    mutating spec against the live session and publishes a new snapshot
    on success; the service layer supplies it per dataset.
    """

    def __init__(
        self,
        apply: Callable[[Any], Any],
        pool: Executor,
        *,
        max_queue: int = 128,
        name: str = "default",
    ):
        self._apply = apply
        self._pool = pool
        self.name = name
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=max_queue)
        self._task: Optional[asyncio.Task] = None
        self._write_latency_ema_s = 0.01
        metrics = obs.registry()
        self._depth_gauge = metrics.gauge("serve.write_queue_depth")
        self._applied = metrics.counter("serve.writes_applied")
        self._rejected = metrics.counter("serve.writes_rejected")

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._drain())

    async def stop(self) -> None:
        """Drain queued writes, then stop the consumer task."""
        if self._task is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def retry_after(self) -> float:
        backlog = self._queue.qsize() + 1
        return round(max(0.05, backlog * self._write_latency_ema_s), 3)

    # ------------------------------------------------------------------
    async def submit(self, spec: Any) -> Any:
        """Enqueue one mutating spec; await its (possibly failed) outcome.

        Raises :class:`OverloadedError` immediately when the write queue
        is at capacity — the caller turns that into a structured
        ``overloaded`` response, it never blocks the event loop.
        """
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((spec, future))
        except asyncio.QueueFull:
            self._rejected.inc()
            raise OverloadedError(
                f"write queue for dataset {self.name!r} is full "
                f"({self._queue.maxsize} pending)",
                retry_after_s=self.retry_after(),
            ) from None
        self._depth_gauge.set(self._queue.qsize())
        return await future

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            self._depth_gauge.set(self._queue.qsize())
            if item is _STOP:
                return
            spec, future = item  # type: Tuple[Any, asyncio.Future]
            started = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    self._pool, self._apply, spec
                )
            except Exception as exc:  # apply() already captures data errors
                if not future.cancelled():
                    future.set_exception(exc)
                continue
            self._write_latency_ema_s = (
                0.8 * self._write_latency_ema_s
                + 0.2 * (time.perf_counter() - started)
            )
            self._applied.inc()
            if not future.cancelled():
                future.set_result(outcome)
