"""Admission control: bounded concurrency with explicit load shedding.

The server runs queries on a small thread pool; letting every arriving
request dive straight into the pool queue would hide overload until
latency already blew up.  The :class:`AdmissionController` makes the
bound explicit and *observable*: at most ``max_inflight`` requests
execute at once, at most ``max_queue`` wait behind them in FIFO order,
and everything beyond that is rejected **immediately** with
:class:`~repro.exceptions.OverloadedError` — a structured 429-style
response with a ``retry_after_s`` hint, never a dropped connection.

The hint is ``backlog * ema_latency / max_inflight``: an estimate of how
long the current backlog needs to drain at the recent per-request service
rate (an exponential moving average fed by :meth:`release`).

Everything here runs on the event loop thread, so plain attributes are
safe without locks; the only subtlety is waiter cancellation (a client
disconnecting mid-queue), handled by skipping dead futures at hand-off
and returning an already-granted slot in ``acquire``'s cancellation path.

Gauges ``serve.inflight`` / ``serve.queue_depth`` and counters
``serve.admitted`` / ``serve.rejected`` land in the process-global
:func:`repro.obs.registry`, next to the engine's own query metrics.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from contextlib import asynccontextmanager
from typing import Any, Deque, Dict, Optional

from repro import obs
from repro.exceptions import DeadlineExceededError, OverloadedError


class AdmissionController:
    """Bounded in-flight slots plus a bounded FIFO wait queue."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 64,
        *,
        seed_latency_s: float = 0.05,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._inflight = 0
        self._waiters: Deque[asyncio.Future] = deque()
        self._latency_ema_s = seed_latency_s
        # per-controller totals (the stats payload); the registry mirrors
        # are process-global and may aggregate several controllers
        self.admitted = 0
        self.rejected = 0
        metrics = obs.registry()
        self._inflight_gauge = metrics.gauge("serve.inflight")
        self._queue_gauge = metrics.gauge("serve.queue_depth")
        self._admitted_counter = metrics.counter("serve.admitted")
        self._rejected_counter = metrics.counter("serve.rejected")

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def retry_after(self) -> float:
        """Seconds until a retry plausibly gets admitted (>= 50 ms)."""
        backlog = self._inflight + len(self._waiters)
        estimate = backlog * self._latency_ema_s / self.max_inflight
        return round(max(0.05, estimate), 3)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queue_depth": len(self._waiters),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "latency_ema_s": round(self._latency_ema_s, 6),
        }

    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        self._inflight_gauge.set(self._inflight)
        self._queue_gauge.set(len(self._waiters))

    async def acquire(self, deadline: Optional[float] = None) -> None:
        """Take a slot, waiting in FIFO order; raise when the queue is full.

        *deadline* is an absolute ``time.monotonic()`` instant: a request
        whose budget expires while it is still queued is answered with
        :class:`DeadlineExceededError` instead of being started late —
        dead work never reaches the thread pool.
        """
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError("deadline expired before admission")
        if self._inflight < self.max_inflight and not self._waiters:
            self._inflight += 1
            self.admitted += 1
            self._admitted_counter.inc()
            self._publish_gauges()
            return
        if len(self._waiters) >= self.max_queue:
            self.rejected += 1
            self._rejected_counter.inc()
            raise OverloadedError(
                f"admission queue full "
                f"({self._inflight} in flight, {len(self._waiters)} queued)",
                retry_after_s=self.retry_after(),
            )
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._waiters.append(future)
        self._publish_gauges()
        # An expiry callback instead of asyncio.wait_for: set_exception
        # and the grant's set_result race atomically on one future, so a
        # slot handed over in the same tick the deadline fires is either
        # kept (grant won) or passed on below (expiry won) — never lost.
        handle = None
        if deadline is not None:
            def _expire() -> None:
                if not future.done():
                    future.set_exception(DeadlineExceededError(
                        "deadline expired while queued for admission"
                    ))
            handle = loop.call_later(
                max(0.0, deadline - time.monotonic()), _expire
            )
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was handed to us in the same tick we were
                # cancelled: pass it on so it is not leaked.
                self._release_slot()
            else:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            self._publish_gauges()
            raise
        except DeadlineExceededError:
            try:
                self._waiters.remove(future)
            except ValueError:
                pass
            self._publish_gauges()
            raise
        finally:
            if handle is not None:
                handle.cancel()
        self.admitted += 1
        self._admitted_counter.inc()
        self._publish_gauges()

    def release(self, elapsed_s: float = None) -> None:
        """Return a slot; feed *elapsed_s* into the latency EMA."""
        if elapsed_s is not None:
            self._latency_ema_s = (
                0.8 * self._latency_ema_s + 0.2 * float(elapsed_s)
            )
        self._release_slot()
        self._publish_gauges()

    def _release_slot(self) -> None:
        # Hand the slot to the oldest still-waiting future (skipping any
        # cancelled ones); only if none is alive does inflight drop.
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)
                return  # slot transferred, inflight unchanged
        self._inflight -= 1

    @asynccontextmanager
    async def slot(self, deadline: Optional[float] = None):
        """``async with controller.slot():`` — acquire/release + EMA feed."""
        await self.acquire(deadline)
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.release(time.perf_counter() - started)
