"""DatasetService: named live sessions behind snapshot-isolated reads.

One :class:`DatasetState` per hosted dataset holds

* the **writer session** — the only object mutations ever touch, and only
  from the single-writer queue (:class:`~repro.serve.writer.SingleWriter`);
* the **published snapshot** — an immutable
  :meth:`~repro.engine.session.Session.read_snapshot` of the writer
  session, swapped atomically (one attribute store under the GIL) after
  each successful mutation.

A read admits through the shared :class:`~repro.serve.admission.
AdmissionController`, grabs whatever snapshot is published *at that
moment*, wraps it in an O(1) :meth:`~repro.engine.session.Session.reader`
view (private access counters — concurrent causality queries each see
deterministic ``node_accesses``), and executes on the shared thread pool.
Updates landing mid-query are invisible to it: the response's
``session_version`` names exactly the version it saw.

All states share one :class:`~repro.engine.cache.LRUCache`: keys are
fingerprint-prefixed, so entries stay sound across datasets and versions,
and the cache class is lock-protected (PR 7) so reader threads can share
it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.api.results import QueryResult
from repro.engine.cache import LRUCache, NullCache
from repro.engine.executor import _execute_captured
from repro.engine.session import Session
from repro.exceptions import UnknownDatasetError
from repro.serve.admission import AdmissionController
from repro.serve.protocol import ServeConfig
from repro.serve.writer import SingleWriter
from repro.uncertain.dataset import UncertainDataset

DatasetLike = Union[Session, UncertainDataset]


class DatasetState:
    """One hosted dataset: writer session, published snapshot, writer queue."""

    def __init__(
        self,
        name: str,
        session: Session,
        pool: ThreadPoolExecutor,
        *,
        write_queue: int = 128,
    ):
        self.name = name
        self.session = session  # the writer's live session
        self.published = session.read_snapshot()
        self.writer = SingleWriter(
            self._apply_write, pool, max_queue=write_queue, name=name
        )

    def _apply_write(self, spec: Any) -> Any:
        """Blocking: run one mutating spec, publish on success.

        Runs only on the writer queue's pool slot, so the live session is
        never touched concurrently.  The publish is a plain attribute
        store — atomic under the GIL — and failed outcomes leave the old
        snapshot in place.  Returns ``(outcome, snapshot)`` where the
        snapshot is the one *this* write published (or left in place), so
        the response echoes this write's version even if a queued write
        publishes again before the response is built.
        """
        outcome = _execute_captured(self.session, spec)
        if outcome.error is None:
            self.published = self.session.read_snapshot()
        return outcome, self.published

    def info(self) -> Dict[str, Any]:
        published = self.published
        payload = {
            "version": published.version,
            "objects": len(published.dataset),
            "dims": published.dataset.dims,
            "fingerprint": published.fingerprint,
            "kind": type(published.dataset).__name__,
            "write_queue_depth": self.writer.depth,
            "shards": published.shard_count,
        }
        layout = published.dataset.layout_digest()
        if layout is not None:
            payload["layout_digest"] = layout
            payload["shard_sizes"] = [
                len(shard) for shard in published.dataset.shards()
            ]
        return payload


class DatasetService:
    """The server's core: route specs to named datasets, bounded + observed.

    ``datasets`` maps names to either prepared :class:`Session` objects
    (the caller controls cache/index choices) or raw datasets (a session
    is built per the config).  Use as an async context manager, or call
    :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        datasets: Mapping[str, DatasetLike],
        config: Optional[ServeConfig] = None,
    ):
        if not datasets:
            raise ValueError("DatasetService needs at least one dataset")
        self.config = config or ServeConfig()
        self.cache = (
            LRUCache(self.config.cache_size)
            if self.config.cache_size > 0
            else NullCache()
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.threads,
            thread_name_prefix="repro-serve",
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self._states: Dict[str, DatasetState] = {}
        for name, item in datasets.items():
            session = (
                item
                if isinstance(item, Session)
                else Session(
                    item,
                    cache=self.cache,
                    use_numpy=self.config.use_numpy,
                    shards=self.config.shards,
                )
            )
            self._states[name] = DatasetState(
                name, session, self._pool,
                write_queue=self.config.write_queue,
            )
        self._started = time.monotonic()
        metrics = obs.registry()
        self._requests = metrics.counter("serve.requests")
        self._failures = metrics.counter("serve.request_failures")
        self._latency = metrics.histogram("serve.request_latency_s")

    # ------------------------------------------------------------------
    async def start(self) -> None:
        for name in sorted(self._states):
            self._states[name].writer.start()

    async def stop(self) -> None:
        for name in sorted(self._states):
            await self._states[name].writer.stop()
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "DatasetService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    def dataset_names(self) -> List[str]:
        return sorted(self._states)

    def state(self, name: str) -> DatasetState:
        try:
            return self._states[name]
        except KeyError:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; hosting {self.dataset_names()}"
            ) from None

    def retry_after(self) -> float:
        return self.admission.retry_after()

    # ------------------------------------------------------------------
    async def execute(
        self, spec: Any, dataset: str = "default"
    ) -> Tuple[QueryResult, int]:
        """Run one spec; return ``(envelope, session_version)``.

        Mutating specs go through the dataset's single-writer queue
        (never the admission path — a full read queue must not be able to
        starve writes, and vice versa); reads admit, snapshot, and run on
        the pool.  Raises :class:`~repro.exceptions.OverloadedError` on
        rejection; data errors come back *inside* the envelope.
        """
        state = self.state(dataset)
        started = time.perf_counter()
        self._requests.inc()
        try:
            if getattr(spec, "mutates", False):
                outcome, published = await state.writer.submit(spec)
                envelope = QueryResult.from_outcome(
                    outcome, fingerprint=published.fingerprint
                )
                version = published.version
            else:
                async with self.admission.slot():
                    published = state.published
                    reader = published.reader()
                    outcome = await asyncio.get_running_loop().run_in_executor(
                        self._pool, _execute_captured, reader, spec
                    )
                    envelope = QueryResult.from_outcome(
                        outcome, fingerprint=published.fingerprint
                    )
                    version = published.version
        except Exception:
            self._failures.inc()
            raise
        finally:
            self._latency.observe(time.perf_counter() - started)
        if not envelope.ok:
            self._failures.inc()
        return envelope, version

    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` op body: service info, SLO quantiles, metrics."""
        snapshot = obs.registry().snapshot()
        slo: Dict[str, Dict[str, Any]] = {}
        for name, hist in snapshot.get("histograms", {}).items():
            if not (
                name == "serve.request_latency_s"
                or (name.startswith("query.") and name.endswith(".latency_s"))
            ):
                continue
            p50 = obs.quantile_from_snapshot(hist, 0.50)
            p99 = obs.quantile_from_snapshot(hist, 0.99)
            slo[name] = {
                "count": hist["count"],
                "p50_ms": None if p50 is None else round(p50 * 1e3, 3),
                "p99_ms": None if p99 is None else round(p99 * 1e3, 3),
            }
        return {
            "service": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "threads": self.config.threads,
                "cache": self.cache.stats.as_dict(),
                "admission": self.admission.snapshot(),
            },
            "datasets": {
                name: state.info() for name, state in self._states.items()
            },
            "slo": slo,
            "metrics": snapshot,
        }
