"""DatasetService: named live sessions behind snapshot-isolated reads.

One :class:`DatasetState` per hosted dataset holds

* the **writer session** — the only object mutations ever touch, and only
  from the single-writer queue (:class:`~repro.serve.writer.SingleWriter`);
* the **published snapshot** — an immutable
  :meth:`~repro.engine.session.Session.read_snapshot` of the writer
  session, swapped atomically (one attribute store under the GIL) after
  each successful mutation.

A read admits through the shared :class:`~repro.serve.admission.
AdmissionController`, grabs whatever snapshot is published *at that
moment*, wraps it in an O(1) :meth:`~repro.engine.session.Session.reader`
view (private access counters — concurrent causality queries each see
deterministic ``node_accesses``), and executes on the shared thread pool.
Updates landing mid-query are invisible to it: the response's
``session_version`` names exactly the version it saw.

All states share one :class:`~repro.engine.cache.LRUCache`: keys are
fingerprint-prefixed, so entries stay sound across datasets and versions,
and the cache class is lock-protected (PR 7) so reader threads can share
it.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import faults, obs
from repro.api.results import QueryResult
from repro.engine.cache import LRUCache, NullCache
from repro.engine.executor import _execute_captured
from repro.engine.session import Session
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectionError,
    UnknownDatasetError,
)
from repro.serve.admission import AdmissionController
from repro.serve.protocol import ServeConfig
from repro.serve.writer import SingleWriter
from repro.uncertain.dataset import UncertainDataset

DatasetLike = Union[Session, UncertainDataset]


def _execute_with_deadline(
    reader: Session, spec: Any, deadline: Optional[float]
) -> Any:
    """The pool-side entry for reads: last deadline checkpoint, then run.

    Runs on a worker thread — a request that spent its whole budget
    waiting for a pool slot is answered ``deadline_exceeded`` here
    instead of executing dead work.
    """
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceededError(
            f"deadline expired before execution of {spec.kind!r} began"
        )
    return _execute_captured(reader, spec)


class DatasetState:
    """One hosted dataset: writer session, published snapshot, writer queue."""

    def __init__(
        self,
        name: str,
        session: Session,
        pool: ThreadPoolExecutor,
        *,
        write_queue: int = 128,
        idem_window: int = 1024,
    ):
        self.name = name
        self.session = session  # the writer's live session
        self.published = session.read_snapshot()
        self.writer = SingleWriter(
            self._apply_write, pool, max_queue=write_queue, name=name,
            idem_window=idem_window,
        )

    def _apply_write(self, spec: Any) -> Any:
        """Blocking: run one mutating spec, publish on success.

        Runs only on the writer queue's pool slot, so the live session is
        never touched concurrently.  The publish is a plain attribute
        store — atomic under the GIL — and failed outcomes leave the old
        snapshot in place.  Returns ``(outcome, snapshot)`` where the
        snapshot is the one *this* write published (or left in place), so
        the response echoes this write's version even if a queued write
        publishes again before the response is built.
        """
        rule = faults.check("writer.apply", dataset=self.name, kind=spec.kind)
        if rule is not None and rule.action == "error":
            # Raised *before* the apply touches the session: the escaping
            # exception is what flips the writer dead, exercising the
            # degraded-mode path without actually corrupting anything.
            raise FaultInjectionError(
                rule.message or "injected writer.apply failure"
            )
        outcome = _execute_captured(self.session, spec)
        if outcome.error is None:
            self.published = self.session.read_snapshot()
        return outcome, self.published

    @property
    def status(self) -> str:
        return "degraded" if self.writer.dead else "ok"

    def info(self) -> Dict[str, Any]:
        published = self.published
        payload = {
            "version": published.version,
            "objects": len(published.dataset),
            "dims": published.dataset.dims,
            "fingerprint": published.fingerprint,
            "kind": type(published.dataset).__name__,
            "write_queue_depth": self.writer.depth,
            "shards": published.shard_count,
            "status": self.status,
        }
        if self.writer.dead and self.writer.death_reason:
            payload["degraded_reason"] = self.writer.death_reason
        layout = published.dataset.layout_digest()
        if layout is not None:
            payload["layout_digest"] = layout
            payload["shard_sizes"] = [
                len(shard) for shard in published.dataset.shards()
            ]
        return payload


class DatasetService:
    """The server's core: route specs to named datasets, bounded + observed.

    ``datasets`` maps names to either prepared :class:`Session` objects
    (the caller controls cache/index choices) or raw datasets (a session
    is built per the config).  Use as an async context manager, or call
    :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        datasets: Mapping[str, DatasetLike],
        config: Optional[ServeConfig] = None,
    ):
        if not datasets:
            raise ValueError("DatasetService needs at least one dataset")
        self.config = config or ServeConfig()
        self.cache = (
            LRUCache(self.config.cache_size)
            if self.config.cache_size > 0
            else NullCache()
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.threads,
            thread_name_prefix="repro-serve",
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self._states: Dict[str, DatasetState] = {}
        for name, item in datasets.items():
            session = (
                item
                if isinstance(item, Session)
                else Session(
                    item,
                    cache=self.cache,
                    use_numpy=self.config.use_numpy,
                    shards=self.config.shards,
                )
            )
            self._states[name] = DatasetState(
                name, session, self._pool,
                write_queue=self.config.write_queue,
                idem_window=self.config.idem_window,
            )
        self._started = time.monotonic()
        metrics = obs.registry()
        self._requests = metrics.counter("serve.requests")
        self._failures = metrics.counter("serve.request_failures")
        self._latency = metrics.histogram("serve.request_latency_s")
        self._deadlines = metrics.counter("serve.deadline_exceeded")

    # ------------------------------------------------------------------
    async def start(self) -> None:
        for name in sorted(self._states):
            self._states[name].writer.start()

    async def stop(self) -> None:
        for name in sorted(self._states):
            await self._states[name].writer.stop()
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "DatasetService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    def dataset_names(self) -> List[str]:
        return sorted(self._states)

    def state(self, name: str) -> DatasetState:
        try:
            return self._states[name]
        except KeyError:
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; hosting {self.dataset_names()}"
            ) from None

    def retry_after(self) -> float:
        return self.admission.retry_after()

    def degraded_datasets(self) -> List[str]:
        """Names of hosted datasets whose writer has died (read-only)."""
        return sorted(
            name for name, state in self._states.items()
            if state.writer.dead
        )

    # ------------------------------------------------------------------
    async def execute(
        self,
        spec: Any,
        dataset: str = "default",
        *,
        deadline: Optional[float] = None,
        idem: Optional[str] = None,
    ) -> Tuple[QueryResult, int]:
        """Run one spec; return ``(envelope, session_version)``.

        Mutating specs go through the dataset's single-writer queue
        (never the admission path — a full read queue must not be able to
        starve writes, and vice versa); reads admit, snapshot, and run on
        the pool.  Raises :class:`~repro.exceptions.OverloadedError` on
        rejection; data errors come back *inside* the envelope.

        *deadline* is an absolute ``time.monotonic()`` instant checked at
        every checkpoint (admission wait, pool dispatch, write queue);
        past it the request is answered with a ``deadline_exceeded``
        error instead of executing dead work.  *idem* keys mutations for
        exactly-once retries (see :meth:`SingleWriter.submit`).
        """
        state = self.state(dataset)
        started = time.perf_counter()
        self._requests.inc()
        try:
            if getattr(spec, "mutates", False):
                outcome, published = await state.writer.submit(
                    spec, idem=idem, deadline=deadline
                )
                envelope = QueryResult.from_outcome(
                    outcome, fingerprint=published.fingerprint
                )
                version = published.version
            else:
                async with self.admission.slot(deadline):
                    published = state.published
                    reader = published.reader()
                    outcome = await asyncio.get_running_loop().run_in_executor(
                        self._pool, _execute_with_deadline,
                        reader, spec, deadline,
                    )
                    envelope = QueryResult.from_outcome(
                        outcome, fingerprint=published.fingerprint
                    )
                    version = published.version
        except DeadlineExceededError:
            self._deadlines.inc()
            self._failures.inc()
            raise
        except Exception:
            self._failures.inc()
            raise
        finally:
            self._latency.observe(time.perf_counter() - started)
        if not envelope.ok:
            self._failures.inc()
        return envelope, version

    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` op body: service info, SLO quantiles, metrics."""
        snapshot = obs.registry().snapshot()
        slo: Dict[str, Dict[str, Any]] = {}
        for name, hist in snapshot.get("histograms", {}).items():
            if not (
                name == "serve.request_latency_s"
                or (name.startswith("query.") and name.endswith(".latency_s"))
            ):
                continue
            p50 = obs.quantile_from_snapshot(hist, 0.50)
            p99 = obs.quantile_from_snapshot(hist, 0.99)
            slo[name] = {
                "count": hist["count"],
                "p50_ms": None if p50 is None else round(p50 * 1e3, 3),
                "p99_ms": None if p99 is None else round(p99 * 1e3, 3),
            }
        return {
            "service": {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "threads": self.config.threads,
                "cache": self.cache.stats.as_dict(),
                "admission": self.admission.snapshot(),
                "degraded": self.degraded_datasets(),
            },
            "datasets": {
                name: state.info() for name, state in self._states.items()
            },
            "slo": slo,
            "metrics": snapshot,
        }
