"""repro.serve — a stdlib-only asyncio query server for live datasets.

The paper's engine answers one query at a time against one in-process
session; this package turns that into a long-lived service without
adding a single dependency:

* :mod:`~repro.serve.service` — named live sessions, copy-on-write
  published snapshots (readers are snapshot-isolated; every response
  echoes the ``session_version`` it was served at), one shared
  lock-protected LRU result cache and thread pool;
* :mod:`~repro.serve.writer` — all mutations to a dataset serialized
  through a single bounded writer queue;
* :mod:`~repro.serve.admission` — bounded in-flight + wait queue,
  overload answered with structured 429-style ``overloaded`` envelopes
  carrying ``retry_after_s``, never dropped connections;
* :mod:`~repro.serve.protocol` — NDJSON framing carrying the existing
  v2 :class:`~repro.api.results.QueryResult` envelopes verbatim;
* :mod:`~repro.serve.http` — a minimal HTTP/1.1 POST front end over the
  same handler (``curl``-able), sharing the port via first-line sniffing.

Start one with ``python -m repro serve --data objects.csv`` or
in-process via :class:`ReproServer`; talk to it with
:class:`repro.api.remote.RemoteClient`.
"""

from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    DEFAULT_DATASET,
    DEFAULT_PORT,
    RequestHandler,
    ServeConfig,
    encode_frame,
    error_response,
)
from repro.serve.server import ReproServer, run
from repro.serve.service import DatasetService, DatasetState
from repro.serve.writer import SingleWriter

__all__ = [
    "AdmissionController",
    "DEFAULT_DATASET",
    "DEFAULT_PORT",
    "DatasetService",
    "DatasetState",
    "ReproServer",
    "RequestHandler",
    "ServeConfig",
    "SingleWriter",
    "encode_frame",
    "error_response",
    "run",
]
