"""Minimal HTTP/1.1 front end over the same :class:`RequestHandler`.

``curl`` ergonomics without a web framework: a tiny hand-rolled HTTP/1.1
parser (request line, headers, ``Content-Length`` body, keep-alive) that
translates routes onto the exact protocol frames the NDJSON transport
uses — both transports share one handler, so semantics cannot drift.

Routes::

    GET  /healthz   -> {"ok": true}
    GET  /stats     -> the stats payload (SLO quantiles + metrics)
    POST /query     -> body {"spec": {...}, "dataset": "..."} or a bare
                       spec object (anything with a "kind"); response is
                       the single NDJSON response frame as JSON
    POST /batch     -> body {"specs": [...]} or a bare JSON array;
                       response body is NDJSON (one frame per spec plus
                       the done summary), Content-Type x-ndjson

POST routes accept ``?dataset=NAME`` in the target as well; a
``"dataset"`` key in the body wins when both are present.

Status codes map off the response frame: envelope-carrying responses are
``200`` even when the envelope reports a data error (the error lives in
the envelope, exactly like the NDJSON transport and the local client);
request-level failures map their taxonomy code — ``overloaded`` becomes
``429`` with a ``Retry-After`` header, malformed requests ``400``,
unknown datasets ``404``, everything else ``500``.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import unquote

from repro.exceptions import InvalidRequestError
from repro.serve.protocol import (
    DEFAULT_DATASET,
    RequestHandler,
    ServeConfig,
    error_response,
)

_MAX_HEADERS = 100
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
#: Request-level taxonomy codes -> HTTP status (fallback 500).
_CODE_STATUS = {
    "overloaded": 429,
    "invalid_request": 400,
    "invalid_spec": 400,
    "unknown_query_kind": 400,
    "invalid_value": 400,
    "type_error": 400,
    "unknown_key": 400,
    "unknown_dataset": 404,
    "deadline_exceeded": 504,
    "degraded": 503,
}


def _status_for(frame: Dict[str, Any]) -> int:
    if frame.get("ok") or "result" in frame:
        return 200  # envelope errors are payload, not transport failures
    code = (frame.get("error") or {}).get("code", "internal_error")
    return _CODE_STATUS.get(code, 500)


def _render(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[List[Tuple[str, str]]] = None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers or ():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _frame_to_http(frame: Dict[str, Any], *, keep_alive: bool) -> bytes:
    status = _status_for(frame)
    extra = []
    if status == 429:
        retry = frame.get("retry_after_s", 0.1)
        extra.append(("Retry-After", str(max(1, math.ceil(retry)))))
    body = json.dumps(frame, separators=(",", ":")).encode() + b"\n"
    return _render(status, body, keep_alive=keep_alive, extra_headers=extra)


async def _read_request(
    reader: asyncio.StreamReader,
    config: ServeConfig,
    request_line: Optional[bytes],
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF; raises on malformed."""
    if request_line is None:
        request_line = await reader.readline()
    if not request_line or not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise InvalidRequestError(
            f"malformed HTTP request line: {request_line[:80]!r}"
        ) from None
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise InvalidRequestError(f"more than {_MAX_HEADERS} headers")
    length = int(headers.get("content-length", "0") or "0")
    if length > config.max_line_bytes:
        raise InvalidRequestError(
            f"body of {length} bytes exceeds max_line_bytes="
            f"{config.max_line_bytes}"
        )
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _parse_body(body: bytes) -> Any:
    try:
        return json.loads(body) if body else {}
    except json.JSONDecodeError as exc:
        raise InvalidRequestError(f"invalid JSON body: {exc}") from None


def _query_params(target: str) -> Dict[str, str]:
    _, _, query = target.partition("?")
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if pair:
            name, _, value = pair.partition("=")
            params[unquote(name)] = unquote(value)
    return params


def _to_frame(method: str, target: str, body: bytes) -> Dict[str, Any]:
    """Translate an HTTP request onto one protocol request frame."""
    path = target.split("?", 1)[0]
    if method == "GET" and path == "/healthz":
        return {"op": "ping"}
    if method == "GET" and path == "/stats":
        return {"op": "stats"}
    # body "dataset" wins over the ?dataset= query parameter
    dataset = _query_params(target).get("dataset", DEFAULT_DATASET)
    if method == "POST" and path == "/query":
        payload = _parse_body(body)
        if not isinstance(payload, dict):
            raise InvalidRequestError("POST /query body must be an object")
        if "spec" not in payload and "kind" in payload:
            payload = {"spec": payload}  # bare-spec convenience
        frame = {
            "op": "query",
            "spec": payload.get("spec"),
            "dataset": payload.get("dataset", dataset),
        }
        for field in ("deadline_ms", "idem"):
            if field in payload:
                frame[field] = payload[field]
        return frame
    if method == "POST" and path == "/batch":
        payload = _parse_body(body)
        if isinstance(payload, list):
            payload = {"specs": payload}
        if not isinstance(payload, dict):
            raise InvalidRequestError(
                "POST /batch body must be an object or a spec array"
            )
        frame = {
            "op": "batch",
            "specs": payload.get("specs"),
            "dataset": payload.get("dataset", dataset),
        }
        if "deadline_ms" in payload:
            frame["deadline_ms"] = payload["deadline_ms"]
        return frame
    if path in ("/healthz", "/stats", "/query", "/batch"):
        raise InvalidRequestError(f"method {method} not allowed on {path}")
    raise InvalidRequestError(
        f"no route for {method} {path}; have GET /healthz, GET /stats, "
        f"POST /query, POST /batch"
    )


async def serve_http(
    handler: RequestHandler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    config: ServeConfig,
    request_line: Optional[bytes] = None,
) -> None:
    """Drive one HTTP/1.1 connection (keep-alive) until EOF or error."""
    try:
        while True:
            try:
                parsed = await _read_request(reader, config, request_line)
            except (InvalidRequestError, ValueError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError) as exc:
                frame = error_response(None, exc if isinstance(
                    exc, InvalidRequestError
                ) else InvalidRequestError(f"bad HTTP request: {exc}"))
                writer.write(_frame_to_http(frame, keep_alive=False))
                await writer.drain()
                break
            request_line = None
            if parsed is None:
                break
            method, target, headers, body = parsed
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            try:
                frame_in = _to_frame(method, target, body)
            except InvalidRequestError as exc:
                writer.write(_frame_to_http(
                    error_response(None, exc), keep_alive=keep_alive
                ))
                await writer.drain()
                if not keep_alive:
                    break
                continue
            frames = [f async for f in handler.handle(frame_in)]
            if frame_in["op"] == "batch" and len(frames) != 1:
                # Streamed per-spec frames + summary, as an NDJSON body.
                body_out = b"".join(
                    json.dumps(f, separators=(",", ":")).encode() + b"\n"
                    for f in frames
                )
                writer.write(_render(
                    200, body_out,
                    content_type="application/x-ndjson",
                    keep_alive=keep_alive,
                ))
            else:
                writer.write(_frame_to_http(frames[0], keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
