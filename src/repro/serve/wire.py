"""Wire-level constants and framing shared by server and client.

Deliberately imports nothing from the rest of :mod:`repro`: both
:mod:`repro.serve.protocol` (server side) and :mod:`repro.api.remote`
(client side) need these, and each of those sits on the opposite bank of
the ``repro.api`` <-> ``repro.serve`` import graph — a shared leaf is
what keeps that graph acyclic.
"""

from __future__ import annotations

import json
from typing import Any, Dict

DEFAULT_PORT = 7733
DEFAULT_DATASET = "default"


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One request/response dict as a compact NDJSON frame."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"
