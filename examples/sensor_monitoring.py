"""Sensor-network monitoring with the continuous pdf model (Sec. 3.2).

Sensors report noisy (temperature, humidity) readings, modeled as
continuous uncertain regions: a uniform box for quantized sensors and a
truncated Gaussian for analog ones.  An operator sets a reference
condition q and watches the probabilistic reverse skyline as the set of
sensors for which q is a "relevant" condition.  When a sensor drops off
the watch list, the pdf-model CP explains which neighbouring sensors cause
it.

Run:  python examples/sensor_monitoring.py
"""

import numpy as np

from repro import TruncatedGaussianObject, UniformBoxObject, compute_causality_pdf
from repro.geometry.rectangle import Rect


def build_sensor_field(rng):
    """A small field of sensors around a monitored zone."""
    sensors = []
    # The sensor under scrutiny: reads near (21 C, 48 %RH).
    sensors.append(
        UniformBoxObject("S-07", Rect([20.5, 47.0], [21.5, 49.0]))
    )
    # Nearby sensors between S-07 and the reference condition.
    sensors.append(
        TruncatedGaussianObject("S-12", Rect([21.5, 49.5], [22.5, 51.5]))
    )
    sensors.append(
        UniformBoxObject("S-19", Rect([22.0, 50.0], [23.0, 52.0]))
    )
    # Background sensors far from the zone.
    for i, (x, y) in enumerate(rng.uniform([5, 20], [15, 35], size=(12, 2))):
        sensors.append(
            UniformBoxObject(f"BG-{i:02d}", Rect([x, y], [x + 1.0, y + 1.5]))
        )
    return sensors


def main() -> None:
    rng = np.random.default_rng(2024)
    sensors = build_sensor_field(rng)
    q = [24.0, 55.0]  # reference condition (temperature, humidity)
    alpha = 0.5

    print(f"reference condition q = {q}, alpha = {alpha}")
    print(f"{len(sensors)} sensors; explaining why S-07 left the watch list...\n")

    result, discretized = compute_causality_pdf(
        sensors, "S-07", q, alpha=alpha, samples_per_object=48, rng=rng
    )

    print(f"{len(result)} causes (pdf-model CP, Monte-Carlo resolution 48):")
    for oid, resp in result.ranked():
        cause = result.causes[oid]
        print(
            f"  {str(oid):6s}  responsibility {resp:.3f}  ({cause.kind.value})"
        )
    print(
        f"\n[verification ran on the discretized dataset: "
        f"{len(discretized)} objects x "
        f"{discretized.max_samples()} samples each; "
        f"filter used the exact region geometry of Sec. 3.2]"
    )


if __name__ == "__main__":
    main()
