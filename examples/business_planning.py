"""Business planning: potential-buyer identification with what-if analysis.

The paper's introduction motivates PRSQ with business planning: buyer
profiles are uncertain objects, a product spec is the query object, and
the probability of a buyer having the product in its dynamic skyline is
the buyer's interest score.  This example scores a synthetic market,
explains a lost buyer, and then runs a *what-if*: removing the strongest
cause (e.g., a competitor product being discontinued) and watching the
buyer come back.

Run:  python examples/business_planning.py
"""

from repro import compute_causality, prsq_probabilities, reverse_skyline_probability
from repro.bench.workloads import random_query, select_prsq_non_answers
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset


def main() -> None:
    alpha = 0.5
    market = generate_uncertain_dataset(
        2_000, 3, radius_range=(0, 90), samples_range=(2, 4), seed=99
    )
    product = random_query(3, seed=99)
    print(
        f"market: {len(market)} uncertain buyer profiles (3 criteria); "
        f"product spec q = {[round(v) for v in product]}\n"
    )

    lost_buyers = select_prsq_non_answers(
        market, product, alpha=alpha, count=3, max_candidates=12, seed=99
    )
    print(f"analyzing {len(lost_buyers)} lost buyers at alpha = {alpha}:\n")

    for buyer in lost_buyers:
        pr = reverse_skyline_probability(market, buyer, product)
        result = compute_causality(market, buyer, product, alpha)
        top_cause, top_resp = result.ranked()[0]
        print(
            f"buyer {buyer}: interest score {pr:.3f} < {alpha}; "
            f"{len(result)} causes, strongest is {top_cause} "
            f"(responsibility {top_resp:.3f})"
        )

        # What-if: the strongest cause leaves the market.
        what_if = market.without([top_cause])
        new_pr = reverse_skyline_probability(what_if, buyer, product)
        verdict = "recovered" if new_pr >= alpha else "still lost"
        print(
            f"  what-if: drop {top_cause} -> interest score {new_pr:.3f} "
            f"({verdict})\n"
        )

    scores = prsq_probabilities(market, product)
    winners = sum(1 for pr in scores.values() if pr >= alpha)
    print(f"market summary: {winners}/{len(market)} potential buyers at alpha={alpha}")


if __name__ == "__main__":
    main()
