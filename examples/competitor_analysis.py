"""Competitor analysis with reverse top-k causality (paper future work).

A manufacturer launches product q into a catalog and runs a reverse top-k
query over a population of user preference vectors: which users would see
q in their personal top-k?  For users who would *not*, the CRP machinery
explains which competitor products are responsible and how strongly —
the paper's Section-7 future-work direction, implemented in
:mod:`repro.rtopk`.

Run:  python examples/competitor_analysis.py
"""

import numpy as np

from repro import CertainDataset, WeightSet, compute_causality_rtopk, reverse_top_k
from repro.rtopk.query import rank_profile


def main() -> None:
    rng = np.random.default_rng(17)
    # Product catalog: (price-like, weight-like) attributes, lower = better.
    catalog = CertainDataset(
        rng.uniform(1, 10, size=(40, 2)),
        ids=[f"prod-{i:02d}" for i in range(40)],
    )
    users = WeightSet(rng.dirichlet([2.0, 2.0], size=25))
    q = [3.0, 3.5]
    k = 5

    winners = reverse_top_k(catalog, users, q, k)
    print(
        f"catalog: {len(catalog)} products; {len(users)} users; "
        f"new product q = {q}, k = {k}"
    )
    print(f"{len(winners)} users already rank q in their top-{k}\n")

    ranks = rank_profile(catalog, users, q)
    lost = sorted(
        (user for user in users.ids if user not in winners),
        key=lambda user: ranks[user],
    )
    for user in lost[:4]:
        result = compute_causality_rtopk(catalog, users, user, q, k)
        top = result.ranked()[0]
        print(
            f"user {user}: q ranks {ranks[user]} (> {k}); "
            f"{len(result)} competitor products are causes, each with "
            f"responsibility 1/{int(round(1 / top[1]))}"
        )
        blockers = ", ".join(str(oid) for oid, _r in result.ranked()[:5])
        print(f"  strongest competitors: {blockers}\n")

    print(
        "interpretation: a responsibility of 1/m means q enters the user's "
        "top-k only after m of the competing products leave the market."
    )


if __name__ == "__main__":
    main()
