"""Quickstart: causality & responsibility for a PRSQ non-answer.

Builds a tiny uncertain dataset by hand, runs the probabilistic reverse
skyline query, picks a non-answer, and explains it with algorithm CP.

Run:  python examples/quickstart.py
"""

from repro import (
    UncertainDataset,
    UncertainObject,
    compute_causality,
    prsq_probabilities,
)
from repro.core.explain import narrative


def main() -> None:
    # Five uncertain objects in 2-D; samples share equal probabilities.
    dataset = UncertainDataset(
        [
            UncertainObject("alice", [[4.9, 5.1], [5.1, 4.9]]),
            UncertainObject("bob", [[4.0, 4.0], [4.3, 4.3]]),
            UncertainObject("carol", [[4.5, 4.4], [4.6, 4.6], [9.0, 1.0]]),
            UncertainObject("dave", [[4.4, 4.7], [4.6, 4.8]]),
            UncertainObject("erin", [[1.0, 9.0], [1.2, 8.8]]),
        ]
    )
    q = [5.0, 5.0]
    alpha = 0.5

    print(f"query object q = {q}, threshold alpha = {alpha}\n")
    probabilities = prsq_probabilities(dataset, q)
    for oid, pr in sorted(probabilities.items()):
        status = "answer" if pr >= alpha else "NON-ANSWER"
        print(f"  Pr({oid:5s}) = {pr:.3f}  -> {status}")

    non_answers = [oid for oid, pr in probabilities.items() if pr < alpha]
    print()
    for an in non_answers:
        result = compute_causality(dataset, an, q, alpha)
        print(f"why is {an!r} not in the probabilistic reverse skyline?")
        for oid, resp in result.ranked():
            cause = result.causes[oid]
            witness = sorted(map(str, cause.contingency_set)) or ["(none)"]
            print(
                f"  cause {oid:5s}  responsibility {resp:.3f}  "
                f"({cause.kind.value}; contingency set: {', '.join(witness)})"
            )
        print(
            f"  [filter touched {result.stats.node_accesses} R-tree nodes, "
            f"verified {result.stats.candidates} candidates]\n"
        )

    # The narrative helper renders the last result as prose, including the
    # minimal repair set (smallest deletion that flips the answer).
    print("--- narrative for the last non-answer ---")
    print(narrative(result, dataset))


if __name__ == "__main__":
    main()
