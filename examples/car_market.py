"""Used-car market analysis (the paper's Table-4 scenario).

A dealer lists a car an = (price 7510, mileage 10180) and advertises
against a reference offer q = (11580, 49000).  The reverse skyline of q
contains the listings for which q is a dynamically non-dominated
competitor; the dealer's car is *not* among them and the dealer asks which
rival listings cause that.  Certain data, so algorithm CR answers with a
single window query (Lemma 7).

Run:  python examples/car_market.py
"""

from repro import compute_causality_certain
from repro.datasets.cardb import (
    DEFAULT_QUERY,
    NON_ANSWER_CAR,
    NON_ANSWER_ID,
    generate_cardb,
)
from repro.skyline import is_reverse_skyline


def main() -> None:
    print("synthesizing the CarDB-like dataset (price x mileage)...")
    market = generate_cardb(n=6000)
    q = DEFAULT_QUERY

    member = is_reverse_skyline(market, NON_ANSWER_ID, q)
    print(
        f"\nreference offer q = {tuple(int(v) for v in q)}"
        f"\ndealer's car an = {tuple(int(v) for v in NON_ANSWER_CAR)}"
        f"\nan in reverse skyline of q? {member}"
    )
    assert not member

    result = compute_causality_certain(market, NON_ANSWER_ID, q)
    print(f"\n{len(result)} rival listings cause the exclusion "
          f"(each with responsibility 1/{len(result)}):\n")
    print(f"  {'cause id':12s}  {'price':>7s}  {'mileage':>8s}")
    print(f"  {'-' * 12}  {'-' * 7}  {'-' * 8}")
    for oid in result.cause_ids():
        price, mileage = market.point_of(oid)
        print(f"  {str(oid):12s}  {price:7.0f}  {mileage:8.0f}")

    print(
        "\nevery cause is closer to the dealer's car than the reference "
        "offer is, in both price and mileage - the paper's Table-4 sanity "
        "check."
    )
    print(
        f"[cost: {result.stats.node_accesses} node accesses, "
        f"{result.stats.cpu_time_s * 1e3:.1f} ms CPU - no verification step]"
    )


if __name__ == "__main__":
    main()
