"""Engine tour: one session, the whole query zoo, batched and cached.

Builds a small uncertain catalogue and a certain product table, then runs
mixed batches through :mod:`repro.engine` sessions:

* PRSQ at several thresholds (the probability map is computed once per
  query point and shared across alphas);
* causality (algorithm CP) for every discovered non-answer;
* reverse skyline / reverse k-skyband / reverse top-k on the certain
  table, plus CR causality for a reverse-skyline non-answer;
* the same batch again, to show cache hits, and through the parallel
  executor, to show order-preserving fan-out.

Run:  python examples/engine_batch.py
"""

from repro.datasets.synthetic_certain import generate_certain_dataset
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine import (
    CausalityCertainSpec,
    CausalitySpec,
    KSkybandCausalitySpec,
    ParallelExecutor,
    PRSQSpec,
    ReverseKSkybandSpec,
    ReverseSkylineSpec,
    ReverseTopKSpec,
    Session,
)
from repro.exceptions import NotANonAnswerError


def uncertain_tour() -> None:
    dataset = generate_uncertain_dataset(120, 2, seed=11)
    session = Session(dataset)
    q = (5000.0, 5000.0)

    print("== uncertain session:", session)
    batch = [PRSQSpec(q=q, alpha=alpha, want="answers") for alpha in (0.3, 0.5, 0.7)]
    for outcome in session.execute_batch(batch):
        print(
            f"  PRSQ alpha={outcome.spec.alpha}: {len(outcome.value)} answers "
            f"({'cache hit' if outcome.cached else 'computed'}, "
            f"{outcome.elapsed_s * 1e3:.1f} ms)"
        )

    non_answers = session.execute(
        PRSQSpec(q=q, alpha=0.5, want="non_answers")
    ).value
    explain = [CausalitySpec(an=an, q=q, alpha=0.5) for an in non_answers[:4]]
    for outcome in session.execute_batch(explain):
        result = outcome.value
        top = result.ranked()[:2]
        print(
            f"  why not {result.an_oid!r}? top causes: "
            + ", ".join(f"{oid} ({resp:.2f})" for oid, resp in top)
        )

    # Second pass: everything above is now a cache hit.
    again = session.execute_batch(batch + explain)
    print(f"  re-run of {len(again)} queries: "
          f"{sum(outcome.cached for outcome in again)} served from cache")

    parallel = session.execute_batch(
        batch + explain, executor=ParallelExecutor(workers=2)
    )
    for serial_outcome, parallel_outcome in zip(again, parallel):
        if isinstance(serial_outcome.spec, CausalitySpec):
            # CausalityResult equality covers cost counters too; compare the
            # semantic output (causes + responsibilities).
            assert parallel_outcome.value.same_causality(serial_outcome.value)
        else:
            assert parallel_outcome.value == serial_outcome.value
    print("  parallel executor: identical results, deterministic order")
    print("  cache stats:", session.cache_stats())


def certain_tour() -> None:
    dataset = generate_certain_dataset(400, 2, seed=7)
    session = Session(dataset)
    q = (5000.0, 5000.0)

    print("\n== certain session:", session)
    skyline = session.execute(ReverseSkylineSpec(q=q)).value
    skyband = session.execute(ReverseKSkybandSpec(q=q, k=3)).value
    print(f"  reverse skyline: {len(skyline)} objects; "
          f"reverse 3-skyband: {len(skyband)} objects")

    launch = (900.0, 1100.0)  # a competitively priced launch product
    users = ReverseTopKSpec(
        q=launch,
        k=10,
        weights=((1.0, 0.2), (0.5, 0.5), (0.1, 1.0)),
        user_ids=("perf-first", "balanced", "econ-first"),
    )
    print(f"  reverse top-10 users of launch product {launch}: "
          f"{session.execute(users).value}")

    explained = 0
    for oid in dataset.ids():
        if oid in skyline or explained >= 2:
            continue
        try:
            causality = session.execute(CausalityCertainSpec(an=oid, q=q)).value
            skyband_c = session.execute(
                KSkybandCausalitySpec(an=oid, q=q, k=2)
            ).value
        except NotANonAnswerError:
            continue
        print(
            f"  CR: {len(causality)} causes for {oid!r} "
            f"(responsibility {causality.ranked()[0][1]:.2f} each); "
            f"k=2 skyband causes: {len(skyband_c)}"
        )
        explained += 1


def main() -> None:
    uncertain_tour()
    certain_tour()


if __name__ == "__main__":
    main()
