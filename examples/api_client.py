"""Tour of the v2 public API: ``repro.api.connect`` and typed envelopes.

Covers the three pillars of the API redesign:

* the fluent :class:`~repro.api.Client` — one method per query family,
  every call returning a schema-versioned
  :class:`~repro.api.QueryResult` envelope (value + run stats + dataset
  fingerprint + spec echo);
* the batch builder with incremental ``.stream()`` delivery — the same
  path the CLI's NDJSON ``batch --stream`` uses;
* the :data:`~repro.api.REGISTRY` extension point — a new query family
  registered at runtime, planned and executed by the stock engine, and
  serialized through the same envelope, with zero engine edits.

Run:  python examples/api_client.py
"""

import json
from dataclasses import dataclass
from typing import ClassVar, Tuple

from repro.api import REGISTRY, QueryResult, connect
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.engine.plan import QueryPlan
from repro.engine.spec import QuerySpec

Q = (5000.0, 5000.0)


def typed_queries() -> None:
    dataset = generate_uncertain_dataset(150, 2, seed=21)
    client = connect(dataset)
    print("== client:", client)

    answer = client.prsq(Q, alpha=0.5, want="non_answers")
    print(
        f"PRSQ non-answers: {len(answer.value.ids)} "
        f"(cached={answer.run.cached}, {answer.run.elapsed_s * 1e3:.1f} ms, "
        f"fingerprint={answer.fingerprint[:10]}...)"
    )

    blame = client.causality(an=answer.value.ids[0], q=Q, alpha=0.5)
    top = blame.value.ranked()[:3]
    print(
        f"why not {blame.value.an!r}? "
        + ", ".join(f"{oid} ({resp:.2f})" for oid, resp in top)
        + f"  [node accesses: {blame.run.node_accesses}]"
    )

    # Envelopes are wire-stable: to_dict/from_dict round-trip exactly,
    # including through real JSON.
    wire = json.dumps(blame.to_dict())
    assert QueryResult.from_dict(json.loads(wire)) == blame
    print(f"envelope JSON: {len(wire)} bytes, schema v{blame.schema_version}")


def streaming_batch() -> None:
    dataset = generate_uncertain_dataset(150, 2, seed=21)
    client = connect(dataset)

    batch = client.batch()
    for alpha in (0.3, 0.5, 0.7):
        batch.prsq(Q, alpha=alpha)
    batch.causality(an="no-such-id", q=Q, alpha=0.5)  # captured, not fatal

    print("== streaming batch (NDJSON-style, incremental):")
    for envelope in batch.stream():
        if envelope.ok:
            print(
                f"  [ok]   {envelope.kind} alpha={envelope.spec.alpha}: "
                f"{len(envelope.value.ids)} answers"
            )
        else:
            print(
                f"  [fail] {envelope.kind}: "
                f"{envelope.error.code} ({envelope.error.message})"
            )


@dataclass(frozen=True)
class NearestCountSpec(QuerySpec):
    """A runtime-registered toy family: objects within a window of q."""

    q: Tuple[float, ...] = ()
    radius: float = 500.0

    kind: ClassVar[str] = "nearest_count"
    dataset_kind: ClassVar[str] = "uncertain"
    cacheable: ClassVar[bool] = True
    mutates: ClassVar[bool] = False

    def __post_init__(self):
        object.__setattr__(self, "q", tuple(float(v) for v in self.q))


@dataclass(frozen=True)
class NearestCountResult:
    count: int

    @classmethod
    def from_raw(cls, value, spec=None):
        return cls(count=int(value))

    def to_raw(self):
        return self.count

    def to_dict(self):
        return {"count": self.count}

    @classmethod
    def from_dict(cls, payload):
        return cls(count=payload["count"])


def plan_nearest_count(spec: NearestCountSpec) -> QueryPlan:
    def run(session):
        return sum(
            1
            for obj in session.dataset
            if all(
                abs(c - qd) <= spec.radius
                for c, qd in zip(obj.samples.mean(axis=0), spec.q)
            )
        )

    return QueryPlan(
        spec=spec, steps=(f"window-count r={spec.radius}",), runner=run
    )


def registry_extension() -> None:
    print("== registry extension (zero engine edits):")
    REGISTRY.register(
        NearestCountSpec, planner=plan_nearest_count, result_cls=NearestCountResult
    )
    try:
        dataset = generate_uncertain_dataset(150, 2, seed=21)
        client = connect(dataset)
        envelope = client.query(NearestCountSpec(q=Q, radius=1500.0))
        print(
            f"  nearest_count: {envelope.value.count} objects "
            f"within 1500 of {Q}"
        )
        print(f"  serialized: {json.dumps(envelope.to_dict())[:100]}...")
    finally:
        REGISTRY.unregister("nearest_count")


if __name__ == "__main__":
    typed_queries()
    streaming_batch()
    registry_extension()
