"""NBA scouting (the paper's Table-3 scenario).

A coach posts a new position profile q = (PTS, FG, REB, AST).  Players are
uncertain objects whose samples are their season records; the probabilistic
reverse skyline at alpha = 0.5 is the candidate shortlist.  "Steve John"
finds himself off the list and asks *what causes me to be unqualified, and
how strongly?* — exactly the CR2PRSQ question.

Run:  python examples/nba_scouting.py
"""

from fractions import Fraction

from repro import compute_causality, reverse_skyline_probability
from repro.datasets.nba import DEFAULT_QUERY, STEVE_JOHN, generate_nba


def main() -> None:
    print("synthesizing the NBA-like dataset (career records, 4 attributes)...")
    league = generate_nba(n_players=1200)
    q = DEFAULT_QUERY
    alpha = 0.5

    pr = reverse_skyline_probability(league, STEVE_JOHN, q)
    print(
        f"\nposition profile q = {tuple(int(v) for v in q)}  (PTS, FG, REB, AST)"
        f"\nPr({STEVE_JOHN} makes the shortlist) = {pr:.3f} < alpha = {alpha}"
        f"\n=> {STEVE_JOHN} is a non-answer; computing his competitors...\n"
    )

    result = compute_causality(league, STEVE_JOHN, q, alpha)
    print(f"{len(result)} causes found (algorithm CP):\n")
    print(f"  {'causality':24s}  responsibility")
    print(f"  {'-' * 24}  {'-' * 14}")
    for oid, resp in result.ranked():
        fraction = Fraction(1, int(round(1.0 / resp)))
        print(f"  {str(oid):24s}  {str(fraction)}")

    strongest = result.ranked()[0]
    print(
        f"\nreading the answer: removing {strongest[0]!r} plus his minimal "
        f"contingency set of {result.causes[strongest[0]].min_contingency_size} "
        f"other players would put {STEVE_JOHN} on the shortlist."
    )
    print(
        f"[cost: {result.stats.node_accesses} node accesses, "
        f"{result.stats.cpu_time_s * 1e3:.1f} ms CPU, "
        f"{result.stats.candidates} candidate causes verified]"
    )


if __name__ == "__main__":
    main()
