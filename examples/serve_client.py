"""Serving tour: in-process server, concurrent clients, one live update.

Starts a :class:`repro.serve.ReproServer` inside this process (real
sockets on a free loopback port — exactly what ``python -m repro serve``
runs), then drives it the way a small fleet of services would:

* six :class:`~repro.api.remote.RemoteClient` coroutines firing PRSQ and
  causality queries concurrently, all multiplexed over the shared
  session, LRU cache and thread pool;
* one writer inserting a new uncertain object mid-flight through the
  single-writer queue — readers before the publish keep the old
  snapshot, readers after it see the new object, and every response
  echoes the ``session_version`` it was served at;
* a batch streamed over a single connection;
* the ``stats`` op, from which we print an SLO summary (server-side
  latency quantiles + admission counters).

Run:  python examples/serve_client.py
"""

import asyncio
import time

from repro.api.remote import RemoteClient
from repro.datasets.synthetic_uncertain import generate_uncertain_dataset
from repro.serve import ReproServer, ServeConfig
from repro.uncertain import UncertainObject

Q = (5000.0, 5000.0)
ALPHA = 0.5


async def reader(port: int, name: str, latencies: list) -> dict:
    """A client mixing cheap and expensive reads; returns its last result."""
    async with await RemoteClient.connect(port=port) as client:
        seen = {}
        for i in range(4):
            started = time.perf_counter()
            envelope = await client.prsq(
                (Q[0] + 120 * i, Q[1] - 80 * i), alpha=ALPHA,
                want="probabilities",
            )
            latencies.append(time.perf_counter() - started)
            assert envelope.ok, envelope.error
            seen = {
                "client": name,
                "version": client.session_version,
                "objects_scored": len(envelope.value.probabilities),
            }
        return seen


async def writer(port: int) -> int:
    """Insert one object mid-flight; return the version it landed at."""
    async with await RemoteClient.connect(port=port) as client:
        await asyncio.sleep(0.02)  # let some reads go first
        envelope = await client.insert(
            UncertainObject(
                "hot-new-object",
                [[4980.0, 5020.0], [5010.0, 4990.0]],
            )
        )
        assert envelope.ok, envelope.error
        return client.session_version


async def main() -> None:
    dataset = generate_uncertain_dataset(400, 2, seed=3)
    config = ServeConfig(port=0, threads=3, max_inflight=6)

    async with ReproServer({"default": dataset}, config) as server:
        print(f"== server up on 127.0.0.1:{server.port} (in-process)")

        latencies: list = []
        results = await asyncio.gather(
            *[reader(server.port, f"r{i}", latencies) for i in range(6)],
            writer(server.port),
        )
        *reads, write_version = results
        versions = sorted({r["version"] for r in reads})
        print(
            f"6 concurrent readers finished; observed versions {versions} "
            f"(insert published at version {write_version})"
        )

        # one connection, one batch frame, streamed responses
        async with await RemoteClient.connect(port=server.port) as client:
            count = 0
            async for envelope in client.batch().prsq(
                Q, alpha=ALPHA
            ).prsq(Q, alpha=0.3, want="non_answers").causality(
                an=next(iter(dataset.ids())), q=Q, alpha=ALPHA
            ).stream():
                count += 1
                status = "ok" if envelope.ok else envelope.error.code
                print(f"  batch item {count}: {envelope.kind} -> {status}")

            stats = await client.stats()

        ordered = sorted(latencies)
        p50 = ordered[len(ordered) // 2] * 1e3
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] * 1e3
        admission = stats["service"]["admission"]
        slo = stats.get("slo", {})
        print("\n== SLO summary ==")
        print(f"client-observed reads: p50 {p50:.1f} ms, p99 {p99:.1f} ms")
        for metric, quantiles in sorted(slo.items()):
            print(
                f"server {metric}: p50 {quantiles['p50_ms']:.1f} ms, "
                f"p99 {quantiles['p99_ms']:.1f} ms"
            )
        print(
            f"admission: {admission['admitted']} admitted, "
            f"{admission['rejected']} rejected "
            f"(max_inflight={admission['max_inflight']})"
        )
        dataset_info = stats["datasets"]["default"]
        print(
            f"dataset: version {dataset_info['version']}, "
            f"{dataset_info['objects']} objects"
        )

    print("== server drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
