"""Edge-case tests: degenerate geometry, ties, boundary thresholds, 1-D data."""

import numpy as np
import pytest

from repro.core.cp import compute_causality
from repro.core.naive import brute_force_causality
from repro.exceptions import NotANonAnswerError
from repro.geometry.dominance import dominance_rectangle, dynamically_dominates
from repro.prsq.oracle import MembershipOracle
from repro.prsq.probability import reverse_skyline_probability
from repro.skyline.reverse import reverse_skyline
from repro.uncertain.dataset import CertainDataset, UncertainDataset
from repro.uncertain.object import UncertainObject


class TestDegenerateGeometry:
    def test_sample_at_query_position(self):
        """A non-answer sample exactly at q has a degenerate (point)
        dominance rectangle; nothing can dominate q w.r.t. it."""
        rect = dominance_rectangle([5.0, 5.0], [5.0, 5.0])
        assert rect.area() == 0.0
        assert not dynamically_dominates([5.0, 5.0], [5.0, 5.0], [5.0, 5.0])

    def test_object_colocated_with_q_is_answer(self):
        ds = UncertainDataset(
            [
                UncertainObject("at-q", [[5.0, 5.0]]),
                UncertainObject("other", [[4.0, 4.0]]),
            ]
        )
        assert reverse_skyline_probability(ds, "at-q", [5.0, 5.0]) == 1.0

    def test_duplicate_objects_block_each_other(self):
        """Two objects at the same location: the twin sits at distance 0
        from the center, strictly closer than q in every dimension, so each
        dominates q w.r.t. the other — both are non-answers and each is the
        counterfactual cause of the other's exclusion."""
        ds = UncertainDataset(
            [
                UncertainObject("t1", [[4.0, 4.0]]),
                UncertainObject("t2", [[4.0, 4.0]]),
            ]
        )
        q = [5.0, 5.0]
        assert reverse_skyline_probability(ds, "t1", q) == 0.0
        assert reverse_skyline_probability(ds, "t2", q) == 0.0
        result = compute_causality(ds, "t1", q, alpha=0.5)
        assert result.responsibility("t2") == 1.0

    def test_dominator_on_rectangle_boundary_tie(self):
        """A point mirroring q exactly (equal distance in every dim) lies on
        the rectangle boundary but does not dominate."""
        an = np.array([4.0, 4.0])
        q = np.array([5.0, 5.0])
        mirrored = np.array([3.0, 3.0])  # |p-an| == |q-an| per dim
        rect = dominance_rectangle(an, q)
        assert rect.contains_point(mirrored)
        assert not dynamically_dominates(mirrored, q, an)
        ds = CertainDataset([an, mirrored], ids=["an", "mirror"])
        assert "an" in reverse_skyline(ds, q)

    def test_partial_tie_still_dominates(self):
        an = np.array([4.0, 4.0])
        q = np.array([5.0, 5.0])
        p = np.array([3.0, 4.5])  # tie in dim 0, strictly closer in dim 1
        assert dynamically_dominates(p, q, an)


class TestOneDimensional:
    def test_rsq_in_1d(self):
        ds = CertainDataset([[1.0], [2.0], [4.0], [9.0]])
        q = [3.0]
        members = set(reverse_skyline(ds, q))
        # object 2 (value 4): nothing within |3-4|=1 strictly closer -> member
        assert 2 in members
        # object 0 (value 1): 2 is closer to 1 than 3 is -> blocked
        assert 0 not in members

    def test_cp_in_1d_matches_brute_force(self):
        rng = np.random.default_rng(5)
        objs = [
            UncertainObject(i, rng.uniform(0, 10, size=(2, 1))) for i in range(6)
        ]
        ds = UncertainDataset(objs)
        q = rng.uniform(0, 10, size=1)
        for oid in ds.ids():
            pr = reverse_skyline_probability(ds, oid, q, use_index=False)
            if pr >= 0.5:
                continue
            cp = compute_causality(ds, oid, q, 0.5)
            bf = brute_force_causality(ds, oid, q, 0.5)
            assert cp.same_causality(bf)


class TestThresholdBoundaries:
    def test_alpha_exactly_at_probability_is_answer(self):
        """Definition 4 uses >=: Pr == alpha makes the object an answer."""
        ds = UncertainDataset(
            [
                UncertainObject("an", [[4.0, 4.0]]),
                UncertainObject("half", [[4.5, 4.5], [9.0, 9.0]]),
            ]
        )
        q = [5.0, 5.0]
        assert reverse_skyline_probability(ds, "an", q) == pytest.approx(0.5)
        with pytest.raises(NotANonAnswerError):
            compute_causality(ds, "an", q, alpha=0.5)
        result = compute_causality(ds, "an", q, alpha=0.51)
        assert result.cause_ids() == ["half"]

    def test_tiny_alpha_non_answer_requires_blocker(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[4.0, 4.0]]),
                UncertainObject("blocker", [[4.5, 4.5]]),
            ]
        )
        result = compute_causality(ds, "an", [5.0, 5.0], alpha=0.01)
        assert result.responsibility("blocker") == 1.0

    def test_oracle_threshold_semantics(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[4.0, 4.0]]),
                UncertainObject("half", [[4.5, 4.5], [9.0, 9.0]]),
            ]
        )
        oracle = MembershipOracle(ds, "an", [5.0, 5.0], alpha=0.5)
        assert oracle.is_answer()        # 0.5 >= 0.5
        oracle_strict = MembershipOracle(ds, "an", [5.0, 5.0], alpha=0.500001)
        assert oracle_strict.is_non_answer()


class TestManySamples:
    def test_objects_with_many_samples(self):
        rng = np.random.default_rng(9)
        objs = [
            UncertainObject("an", rng.uniform(4.0, 4.4, size=(17, 2))),
            UncertainObject("blocker", rng.uniform(4.5, 4.7, size=(17, 2))),
            UncertainObject("far", rng.uniform(0.0, 1.0, size=(17, 2))),
        ]
        ds = UncertainDataset(objs)
        result = compute_causality(ds, "an", [5.0, 5.0], alpha=0.5)
        assert result.cause_ids() == ["blocker"]

    def test_theorem_claim_instance_count_independence(self):
        """Sec. 3.2: 'algorithm CP is not relevant to the number of the
        instances per uncertain object' — same geometry, different sample
        counts, same causality."""
        coarse = UncertainDataset(
            [
                UncertainObject("an", [[4.0, 4.0]]),
                UncertainObject("c", [[4.5, 4.5]]),
            ]
        )
        fine = UncertainDataset(
            [
                UncertainObject("an", [[4.0, 4.0]] * 5),
                UncertainObject("c", [[4.5, 4.5]] * 7),
            ]
        )
        a = compute_causality(coarse, "an", [5.0, 5.0], 0.5)
        b = compute_causality(fine, "an", [5.0, 5.0], 0.5)
        assert a.same_causality(b)
