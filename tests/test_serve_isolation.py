"""Snapshot-isolation soundness: concurrent serving == serial replay.

Hypothesis drives a random schedule of live mutations against a running
:class:`~repro.serve.server.ReproServer` while several
:class:`~repro.api.remote.RemoteClient` readers fire queries *during*
the churn.  Every response echoes the ``session_version`` it was served
at; the test then rebuilds, for each observed version, a **fresh**
session over the initial objects plus exactly the deltas acknowledged at
or before that version, re-runs the same spec, and demands the semantic
payload be **bit-identical** (probabilities compared by ``float.hex``,
ids and cause rankings exactly) — including failed envelopes, which must
fail with the same taxonomy code.

That one property subsumes the scary races: a reader observing a
half-applied delta, a shared access-stats counter corrupted by a
concurrent query, a cache entry leaking across versions, or a publish
that tears mid-read would all produce a payload no serial replay can.
"""

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.remote import RemoteClient
from repro.engine import Session
from repro.engine.executor import _execute_captured
from repro.engine.spec import CausalitySpec, PRSQSpec
from repro.serve import ReproServer, ServeConfig
from repro.uncertain import UncertainDataset, UncertainObject
from repro.uncertain.delta import DatasetDelta

Q = (5.0, 5.0)
ALPHA = 0.5
N_INITIAL = 6
MIN_OBJECTS = 3

OPS = st.lists(
    st.sampled_from(["insert", "delete", "update"]), min_size=1, max_size=6
)


def _make_object(oid, rng):
    return UncertainObject(
        oid, rng.uniform(0.0, 10.0, size=(int(rng.integers(1, 4)), 2))
    )


def _initial_objects(rng):
    return [_make_object(f"o{i}", rng) for i in range(N_INITIAL)]


def _fresh_copy(obj):
    return UncertainObject(
        obj.oid,
        np.asarray(obj.samples).copy(),
        np.asarray(obj.probabilities).copy(),
        name=obj.name,
    )


def _plan_deltas(op_kinds, rng):
    """The concrete delta sequence for a drawn op schedule.

    Computed against a local mirror of the id set, so the writer can
    submit them as-is and the replay can re-derive dataset contents at
    any version without talking to the server.
    """
    ids = [f"o{i}" for i in range(N_INITIAL)]
    deltas = []
    next_id = 1000
    for kind in op_kinds:
        if kind == "insert":
            obj = _make_object(f"n{next_id}", rng)
            next_id += 1
            ids.append(obj.oid)
            deltas.append(DatasetDelta.insertion(obj))
        elif kind == "delete":
            if len(ids) <= MIN_OBJECTS:
                continue
            oid = ids.pop(int(rng.integers(len(ids))))
            deltas.append(DatasetDelta.deletion(oid))
        else:  # update
            oid = ids[int(rng.integers(len(ids)))]
            deltas.append(DatasetDelta.replacement(_make_object(oid, rng)))
    return deltas


def _semantic(envelope):
    """The bit-comparable part of an envelope: everything but timing."""
    if not envelope.ok:
        return ("error", envelope.error.code)
    value = envelope.value
    if hasattr(value, "probabilities") and value.probabilities is not None:
        return (
            "prsq",
            tuple(sorted(
                (repr(oid), p.hex()) for oid, p in value.probabilities.items()
            )),
        )
    if hasattr(value, "causes"):
        return (
            "causality",
            repr(value.an),
            tuple(
                (repr(r.id), r.kind, r.responsibility.hex())
                for r in value.causes
            ),
        )
    raise AssertionError(f"unhandled payload {type(value).__name__}")


def _replay(initial, deltas_by_version, version, spec):
    """A fresh session over initial contents + deltas <= version."""
    dataset = UncertainDataset([_fresh_copy(o) for o in initial])
    session = Session(dataset)
    for delta_version in sorted(deltas_by_version):
        if delta_version > version:
            break
        session.apply(deltas_by_version[delta_version])
    outcome = _execute_captured(session, spec)
    from repro.api.results import QueryResult

    return QueryResult.from_outcome(outcome, fingerprint=session.fingerprint)


def _read_specs(rng, known_ids):
    """A deterministic little mix of read specs per reader."""
    specs = [
        PRSQSpec(q=Q, alpha=ALPHA, want="probabilities"),
        PRSQSpec(q=(float(rng.uniform(2, 8)), 5.0), alpha=0.3,
                 want="probabilities"),
        CausalitySpec(
            an=known_ids[int(rng.integers(len(known_ids)))],
            q=Q, alpha=ALPHA,
        ),
    ]
    rng.shuffle(specs)
    return specs


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(op_kinds=OPS, seed=st.integers(min_value=0, max_value=2**16))
def test_concurrent_reads_bit_identical_to_replay_at_their_version(
    op_kinds, seed
):
    rng = np.random.default_rng(seed)
    initial = _initial_objects(rng)
    deltas = _plan_deltas(op_kinds, rng)
    reader_rngs = [np.random.default_rng(seed + 17 + i) for i in range(3)]
    known_ids = [o.oid for o in initial]

    observations = []  # (spec, session_version, semantic payload)
    deltas_by_version = {}

    async def main():
        config = ServeConfig(port=0, threads=3, max_inflight=6)
        dataset = UncertainDataset([_fresh_copy(o) for o in initial])
        async with ReproServer({"default": dataset}, config) as server:

            async def writer():
                async with await RemoteClient.connect(
                    port=server.port
                ) as client:
                    for delta in deltas:
                        envelope = await client.apply(delta)
                        assert envelope.ok, envelope.error
                        # serial writer: the echoed version names this
                        # delta exactly
                        deltas_by_version[client.session_version] = delta
                        await asyncio.sleep(0)  # let readers interleave

            async def reader(reader_rng):
                async with await RemoteClient.connect(
                    port=server.port
                ) as client:
                    for spec in _read_specs(reader_rng, known_ids):
                        envelope, version = await client.query_envelope(spec)
                        observations.append(
                            (spec, version, _semantic(envelope))
                        )

            await asyncio.gather(
                writer(), *[reader(r) for r in reader_rngs]
            )

    asyncio.run(main())

    assert len(deltas_by_version) == len(deltas)
    assert observations
    for spec, version, semantic in observations:
        expected = _semantic(
            _replay(initial, deltas_by_version, version, spec)
        )
        assert semantic == expected, (
            f"divergence at version {version} for {spec!r}"
        )


def test_reads_during_one_write_see_exactly_old_or_new_state():
    """Deterministic pincer: many concurrent reads race one insert; every
    response must be exactly the version-0 or the version-1 payload."""

    rng = np.random.default_rng(5)
    initial = _initial_objects(rng)
    new_object = _make_object("racer", rng)
    spec = PRSQSpec(q=Q, alpha=0.01, want="probabilities")

    async def main():
        config = ServeConfig(port=0, threads=3, max_inflight=6)
        dataset = UncertainDataset([_fresh_copy(o) for o in initial])
        results = []
        async with ReproServer({"default": dataset}, config) as server:
            async with await RemoteClient.connect(port=server.port) as client:

                async def one_read(i):
                    if i == 10:  # fire the write mid-volley
                        envelope = await client.apply(
                            DatasetDelta.insertion(_fresh_copy(new_object))
                        )
                        assert envelope.ok
                        return None
                    envelope, version = await client.query_envelope(spec)
                    return version, _semantic(envelope)

                results = [
                    r for r in await asyncio.gather(
                        *[one_read(i) for i in range(21)]
                    ) if r is not None
                ]
        return results

    results = asyncio.run(main())
    by_version = {}
    for version, semantic in results:
        assert version in (0, 1)
        by_version.setdefault(version, set()).add(semantic)
    # within a version, every concurrent read is bit-identical
    for version, seen in by_version.items():
        assert len(seen) == 1, f"torn reads at version {version}"
    deltas = {1: DatasetDelta.insertion(_fresh_copy(new_object))}
    for version, seen in by_version.items():
        expected = _semantic(_replay(initial, deltas, version, spec))
        assert seen == {expected}
