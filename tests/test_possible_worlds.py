"""Unit tests for possible-world semantics and their use as ground truth."""

import numpy as np
import pytest

from repro.prsq.probability import reverse_skyline_probability
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from repro.uncertain.possible_worlds import (
    is_reverse_skyline_in_world,
    iter_worlds,
    reverse_skyline_probability_bruteforce,
    world_count,
    world_points,
)
from tests.conftest import make_uncertain_dataset


class TestWorldEnumeration:
    def test_world_count(self):
        ds = UncertainDataset(
            [
                UncertainObject("a", [[0, 0], [1, 1]]),
                UncertainObject("b", [[2, 2], [3, 3], [4, 4]]),
            ]
        )
        assert world_count(ds) == 6
        assert len(list(iter_worlds(ds))) == 6

    def test_world_probabilities_sum_to_one(self, tiny_uncertain):
        total = sum(prob for _w, prob in iter_worlds(tiny_uncertain))
        assert total == pytest.approx(1.0)

    def test_world_probability_is_product(self):
        ds = UncertainDataset(
            [
                UncertainObject("a", [[0, 0], [1, 1]], [0.3, 0.7]),
                UncertainObject("b", [[2, 2], [3, 3]], [0.6, 0.4]),
            ]
        )
        probs = {world: p for world, p in iter_worlds(ds)}
        assert probs[(0, 0)] == pytest.approx(0.18)
        assert probs[(1, 1)] == pytest.approx(0.28)

    def test_world_points_instantiation(self):
        ds = UncertainDataset(
            [
                UncertainObject("a", [[0, 0], [1, 1]]),
                UncertainObject("b", [[2, 2]]),
            ]
        )
        pts = world_points(ds, (1, 0))
        assert pts["a"].tolist() == [1.0, 1.0]
        assert pts["b"].tolist() == [2.0, 2.0]

    def test_enumeration_cap(self):
        objs = [
            UncertainObject(i, [[float(i), 0.0], [float(i), 1.0]])
            for i in range(25)
        ]
        ds = UncertainDataset(objs)
        with pytest.raises(ValueError):
            list(iter_worlds(ds))


class TestWorldMembership:
    def test_certain_world_reverse_skyline(self):
        # b sits between a and q: a's view of q is blocked by b.
        ds = UncertainDataset(
            [
                UncertainObject("a", [[0.0, 0.0]]),
                UncertainObject("b", [[1.0, 1.0]]),
            ]
        )
        q = [2.0, 2.0]
        assert not is_reverse_skyline_in_world(ds, (0, 0), "a", q)
        assert is_reverse_skyline_in_world(ds, (0, 0), "b", q)


class TestEquationTwoAgainstWorlds:
    """Eq. (2) (analytic) must equal exhaustive possible-world summation."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_datasets(self, seed):
        rng = np.random.default_rng(seed)
        ds = make_uncertain_dataset(rng, n=5, dims=2, max_samples=3)
        q = rng.uniform(0, 10, size=2)
        for obj in ds:
            analytic = reverse_skyline_probability(ds, obj.oid, q, use_index=False)
            brute = reverse_skyline_probability_bruteforce(ds, obj.oid, q)
            assert analytic == pytest.approx(brute, abs=1e-12)

    def test_indexed_equals_unindexed(self, rng):
        ds = make_uncertain_dataset(rng, n=12, dims=2)
        q = rng.uniform(0, 10, size=2)
        for obj in ds:
            a = reverse_skyline_probability(ds, obj.oid, q, use_index=True)
            b = reverse_skyline_probability(ds, obj.oid, q, use_index=False)
            assert a == pytest.approx(b, abs=1e-12)

    def test_unequal_sample_probabilities(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5], [9.0, 9.0]], [0.9, 0.1]),
            ]
        )
        q = [3.0, 3.0]
        analytic = reverse_skyline_probability(ds, "u", q, use_index=False)
        brute = reverse_skyline_probability_bruteforce(ds, "u", q)
        assert analytic == pytest.approx(brute)
        # v dominates q w.r.t. u only from its first sample (p = 0.9).
        assert analytic == pytest.approx(0.1)
