"""Unit tests for PRSQ probabilities, queries, and the membership oracle."""

import numpy as np
import pytest

from repro.exceptions import NotANonAnswerError
from repro.prsq.oracle import MembershipOracle
from repro.prsq.probability import (
    dominance_probability_matrix,
    dominance_probability_vector,
    probability_from_matrix,
    reverse_skyline_probability,
    sample_dominance_probability,
)
from repro.prsq.query import (
    is_prsq_answer,
    probabilistic_reverse_skyline,
    prsq_non_answers,
    prsq_probabilities,
)
from repro.uncertain.dataset import UncertainDataset
from repro.uncertain.object import UncertainObject
from tests.conftest import make_uncertain_dataset


@pytest.fixture
def two_object_dataset():
    """u at (2,2); v dominates q w.r.t. u from one of two samples."""
    return UncertainDataset(
        [
            UncertainObject("u", [[2.0, 2.0]]),
            UncertainObject("v", [[2.5, 2.5], [9.0, 9.0]], [0.4, 0.6]),
        ]
    )


class TestEquationThree:
    def test_sample_dominance_probability(self, two_object_dataset):
        v = two_object_dataset.get("v")
        p = sample_dominance_probability(v, [2.0, 2.0], [3.0, 3.0])
        assert p == pytest.approx(0.4)

    def test_no_domination_zero(self, two_object_dataset):
        u = two_object_dataset.get("u")
        assert sample_dominance_probability(u, [9.0, 9.0], [9.1, 9.1]) == 0.0

    def test_vector_per_center_sample(self):
        center = UncertainObject("c", [[2.0, 2.0], [8.0, 8.0]])
        other = UncertainObject("o", [[2.5, 2.5]])
        vec = dominance_probability_vector(other, center, [3.0, 3.0])
        assert vec.shape == (2,)
        assert vec[0] == pytest.approx(1.0)  # dominates w.r.t. (2,2)
        assert vec[1] == pytest.approx(0.0)  # not w.r.t. (8,8)

    def test_matrix_drops_zero_rows(self, two_object_dataset):
        u = two_object_dataset.get("u")
        far = UncertainObject("far", [[0.0, 9.9]])
        matrix = dominance_probability_matrix(
            u, [two_object_dataset.get("v"), far], [3.0, 3.0]
        )
        assert "v" in matrix
        assert "far" not in matrix


class TestEquationTwo:
    def test_hand_computed(self, two_object_dataset):
        pr = reverse_skyline_probability(two_object_dataset, "u", [3.0, 3.0])
        assert pr == pytest.approx(0.6)

    def test_exclude_restores_certainty(self, two_object_dataset):
        pr = reverse_skyline_probability(
            two_object_dataset, "u", [3.0, 3.0], exclude={"v"}
        )
        assert pr == pytest.approx(1.0)

    def test_probability_from_matrix_keep_subset(self):
        center = UncertainObject("c", [[0.0, 0.0]])
        matrix = {"x": np.array([0.5]), "y": np.array([0.2])}
        assert probability_from_matrix(center, matrix) == pytest.approx(0.4)
        assert probability_from_matrix(center, matrix, keep=["x"]) == pytest.approx(0.5)
        assert probability_from_matrix(center, matrix, keep=[]) == pytest.approx(1.0)

    def test_removal_monotonicity(self, rng):
        """Pr(an) never decreases when objects are removed (Lemma 1's core)."""
        ds = make_uncertain_dataset(rng, n=7, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        others = [oid for oid in ds.ids() if oid != target]
        base = reverse_skyline_probability(ds, target, q, use_index=False)
        removed = set()
        previous = base
        for oid in others:
            removed.add(oid)
            current = reverse_skyline_probability(
                ds, target, q, use_index=False, exclude=removed
            )
            assert current >= previous - 1e-12
            previous = current
        assert previous == pytest.approx(1.0)


class TestQuery:
    def test_threshold_partitions_dataset(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        q = rng.uniform(0, 10, size=2)
        answers = set(probabilistic_reverse_skyline(ds, q, alpha=0.5))
        non_answers = set(prsq_non_answers(ds, q, alpha=0.5))
        assert answers | non_answers == set(ds.ids())
        assert not answers & non_answers

    def test_probabilities_in_unit_interval(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=3)
        q = rng.uniform(0, 10, size=3)
        for pr in prsq_probabilities(ds, q).values():
            assert 0.0 <= pr <= 1.0 + 1e-12

    def test_alpha_one_only_certain_members(self, rng):
        ds = make_uncertain_dataset(rng, n=10, dims=2)
        q = rng.uniform(0, 10, size=2)
        probs = prsq_probabilities(ds, q)
        members = set(probabilistic_reverse_skyline(ds, q, alpha=1.0))
        assert members == {oid for oid, pr in probs.items() if pr >= 1.0}

    def test_alpha_monotone_in_answers(self, rng):
        ds = make_uncertain_dataset(rng, n=12, dims=2)
        q = rng.uniform(0, 10, size=2)
        small = set(probabilistic_reverse_skyline(ds, q, alpha=0.2))
        large = set(probabilistic_reverse_skyline(ds, q, alpha=0.8))
        assert large <= small

    def test_invalid_alpha_rejected(self, rng):
        ds = make_uncertain_dataset(rng, n=3, dims=2)
        with pytest.raises(ValueError):
            probabilistic_reverse_skyline(ds, [1.0, 1.0], alpha=0.0)
        with pytest.raises(ValueError):
            probabilistic_reverse_skyline(ds, [1.0, 1.0], alpha=1.2)

    def test_is_prsq_answer_returns_probability(self, two_object_dataset):
        member, pr = is_prsq_answer(two_object_dataset, "u", [3.0, 3.0], alpha=0.5)
        assert member
        assert pr == pytest.approx(0.6)


class TestMembershipOracle:
    def test_matches_direct_probability(self, rng):
        ds = make_uncertain_dataset(rng, n=8, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        oracle = MembershipOracle(ds, target, q, alpha=0.5)
        assert oracle.probability() == pytest.approx(
            reverse_skyline_probability(ds, target, q, use_index=False)
        )

    def test_restricted_probability_matches(self, rng):
        ds = make_uncertain_dataset(rng, n=8, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        oracle = MembershipOracle(ds, target, q, alpha=0.5)
        others = [oid for oid in ds.ids() if oid != target]
        for k in range(len(others)):
            removed = set(others[: k + 1])
            assert oracle.probability(removed) == pytest.approx(
                reverse_skyline_probability(
                    ds, target, q, use_index=False, exclude=removed
                )
            )

    def test_caching_avoids_reevaluation(self, rng):
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        oracle = MembershipOracle(ds, ds.ids()[0], q, alpha=0.5)
        oracle.probability({ds.ids()[1]})
        evals = oracle.evaluations
        oracle.probability({ds.ids()[1]})
        assert oracle.evaluations == evals

    def test_non_influencers_ignored_in_cache_key(self, rng):
        ds = make_uncertain_dataset(rng, n=6, dims=2)
        q = rng.uniform(0, 10, size=2)
        target = ds.ids()[0]
        oracle = MembershipOracle(ds, target, q, alpha=0.5)
        non_influencer = next(
            (oid for oid in ds.ids() if oid != target and not oracle.influences(oid)),
            None,
        )
        if non_influencer is not None:
            assert oracle.probability({non_influencer}) == pytest.approx(
                oracle.probability()
            )

    def test_is_contingency_set_rejects_cause_inside_gamma(self, rng):
        ds = make_uncertain_dataset(rng, n=5, dims=2)
        q = rng.uniform(0, 10, size=2)
        target, other = ds.ids()[0], ds.ids()[1]
        oracle = MembershipOracle(ds, target, q, alpha=0.5)
        with pytest.raises(ValueError):
            oracle.is_contingency_set({other}, other)

    def test_validate_non_answer(self):
        ds = UncertainDataset(
            [
                UncertainObject("u", [[2.0, 2.0]]),
                UncertainObject("v", [[2.5, 2.5]]),
            ]
        )
        q = [3.0, 3.0]
        # u is blocked by v -> non-answer; v is unblocked -> answer.
        MembershipOracle(ds, "u", q, alpha=0.5).validate_non_answer()
        with pytest.raises(NotANonAnswerError):
            MembershipOracle(ds, "v", q, alpha=0.5).validate_non_answer()

    def test_certain_blockers_detected(self):
        ds = UncertainDataset(
            [
                UncertainObject("an", [[2.0, 2.0], [2.2, 2.2]]),
                UncertainObject("blocker", [[2.4, 2.4], [2.5, 2.5]]),
                UncertainObject("partial", [[2.6, 2.6], [9.0, 9.0]]),
            ]
        )
        oracle = MembershipOracle(ds, "an", [3.0, 3.0], alpha=0.5)
        assert oracle.certain_blockers() == ["blocker"]

    def test_survival_row_and_max(self, two_object_dataset):
        oracle = MembershipOracle(two_object_dataset, "u", [3.0, 3.0], alpha=0.5)
        assert oracle.survival_row("v").tolist() == pytest.approx([0.6])
        assert oracle.max_survival("v") == pytest.approx(0.6)
        assert oracle.max_survival("unknown") == 1.0

    def test_invalid_alpha(self, two_object_dataset):
        with pytest.raises(ValueError):
            MembershipOracle(two_object_dataset, "u", [3.0, 3.0], alpha=0.0)
